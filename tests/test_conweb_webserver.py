"""Unit tests for the ConWeb Web server substrate."""

import pytest

from repro.apps.conweb.webserver import ConWebServer


@pytest.fixture
def web(world, network):
    return ConWebServer(world, network)


class TestPageAdaptation:
    def test_default_page_is_plain(self, web):
        page = web.render("u", "site/home")
        assert page.layout == "full"
        assert page.contrast == "normal"
        assert page.suggestions == []
        assert page.url == "site/home"

    def test_walking_gets_compact_high_contrast(self, web):
        web.update_context("u", "physical_activity", "walking")
        page = web.render("u", "site")
        assert page.layout == "compact"
        assert page.contrast == "high"

    def test_noisy_scene_raises_contrast_only(self, web):
        web.update_context("u", "audio_environment", "not_silent")
        page = web.render("u", "site")
        assert page.contrast == "high"
        assert page.layout == "full"

    def test_place_in_headline(self, web):
        web.update_context("u", "place", "Lyon")
        assert "Lyon" in web.render("u", "site").headline

    def test_post_topic_drives_suggestions(self, web):
        web.update_context("u", "last_post", "great football derby")
        page = web.render("u", "site")
        assert "more football for you" in page.suggestions

    def test_negative_mood_gets_cheering_content(self, web):
        web.update_context("u", "last_post", "so sad about the awful rain")
        assert "something to cheer you up" in web.render("u", "site").suggestions

    def test_positive_mood_gets_sharing_prompt(self, web):
        web.update_context("u", "last_post", "absolutely loving this")
        assert "share the good mood" in web.render("u", "site").suggestions

    def test_context_is_per_user(self, web):
        web.update_context("u1", "place", "Paris")
        assert "Paris" not in web.render("u2", "site").headline

    def test_requests_counted(self, web):
        web.render("u", "a")
        web.render("u", "b")
        assert web.requests_served == 2

    def test_context_snapshot_copied(self, web):
        web.update_context("u", "place", "Paris")
        snapshot = web.context_of("u")
        snapshot["place"] = "Mars"
        assert web.context_of("u")["place"] == "Paris"

    def test_page_dict_round_trip(self, web):
        web.update_context("u", "place", "Paris")
        page = web.render("u", "site")
        document = page.to_dict()
        assert document["headline"] == page.headline
        assert document["context_used"]["place"] == "Paris"


class TestHttpTransport:
    def test_request_response_over_network(self, world, network, web):
        responses = []

        def client(message):
            if message.headers.get("protocol") == "web-response":
                responses.append(message.payload)

        network.register("client", client)
        network.send("client", web.address,
                     {"user_id": "u", "url": "site/x"},
                     headers={"protocol": "web-request"})
        world.run_for(1.0)
        assert len(responses) == 1
        assert responses[0]["url"] == "site/x"

    def test_non_web_protocol_ignored(self, world, network, web):
        network.register("client", lambda message: None)
        network.send("client", web.address, {"x": 1},
                     headers={"protocol": "something-else"})
        world.run_for(1.0)
        assert web.requests_served == 0
