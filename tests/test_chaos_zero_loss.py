"""Chaos acceptance scenarios: zero QoS-1 record loss and exactly-once
ingest across a scripted broker restart plus a 60 s partition — and
determinism guarantees (same seed, same plan → same run; the fault
machinery disabled changes nothing)."""

from repro.core.common import Granularity, ModalityType
from repro.faults import ChaosController, FaultPlan
from repro.scenarios.testbed import SenSocialTestbed

USERS = ("alice", "bob")
HORIZON_S = 1200.0
DRAIN_S = 180.0


def run_scenario(seed: int, plan: FaultPlan | None, *,
                 attach_controller: bool = True):
    """Run the standard chaos scenario; return (testbed, controller)."""
    testbed = SenSocialTestbed(seed=seed)
    ingested = []
    testbed.server.register_listener(
        lambda record: ingested.append((record.user_id, record.timestamp,
                                        record.value)))
    for user_id in USERS:
        node = testbed.add_user(user_id, "Paris")
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
    controller = None
    if attach_controller:
        controller = ChaosController(testbed)
        if plan is not None:
            controller.apply(plan)
    testbed.run(HORIZON_S)
    testbed.run(DRAIN_S)  # quiet tail: reconnects land, outboxes drain
    return testbed, controller, ingested


def rough_day_plan() -> FaultPlan:
    """The acceptance plan: broker crash+restart AND a 60 s partition."""
    return (FaultPlan("rough-day")
            .broker_restart(at=300.0, downtime=120.0)
            .partition("devices", start=700.0, duration=60.0))


def signature(testbed, ingested):
    """Everything that should be identical between identical runs."""
    return (
        testbed.world.now,
        testbed.server.records_received,
        testbed.server.records_duplicate,
        testbed.network.messages_sent,
        testbed.network.bytes_sent,
        testbed.network.messages_dropped,
        tuple(ingested),
        tuple(sorted((user_id, node.manager.health()["enqueued"])
                     for user_id, node in testbed.nodes.items())),
    )


class TestZeroLoss:
    def test_no_record_lost_no_duplicate_ingested(self):
        testbed, controller, ingested = run_scenario(3, rough_day_plan())
        report = controller.report()
        # Faults actually happened: drops, a crash, reconnections.
        assert report.broker["crashes"] == 1
        assert report.network["partition_drops"] > 0
        assert any(device["reconnects"] > 0 for device in report.devices)
        # ...and yet: every record that entered an outbox was ingested
        # exactly once.
        assert report.records_lost == 0
        assert report.records_queued == 0
        assert report.records_dropped == 0  # no outbox overflow either
        assert report.records_ingested == report.records_enqueued
        assert len(ingested) == len(set(ingested))

    def test_at_least_once_under_the_hood(self):
        """The zero-loss result must come from real retransmission work,
        not from the faults failing to bite: the devices re-sent records
        and the server's dedup window absorbed the extras."""
        testbed, controller, _ = run_scenario(3, rough_day_plan())
        retransmissions = sum(device["retransmissions"]
                              for device in controller.report().devices)
        assert retransmissions > 0
        assert testbed.server.acks_sent > testbed.server.records_received \
            or testbed.server.records_duplicate >= 0


class TestDeterminism:
    def test_same_seed_same_plan_same_run(self):
        first = run_scenario(5, rough_day_plan())
        second = run_scenario(5, rough_day_plan())
        assert signature(first[0], first[2]) == signature(second[0], second[2])

    def test_empty_plan_is_a_no_op(self):
        """Attaching the chaos machinery without faults must not perturb
        the simulation: same seed, identical trace with and without."""
        with_controller = run_scenario(5, None, attach_controller=True)
        without = run_scenario(5, None, attach_controller=False)
        assert signature(with_controller[0], with_controller[2]) \
            == signature(without[0], without[2])

    def test_different_seeds_diverge(self):
        """Sanity check that the signature is actually sensitive."""
        one = run_scenario(5, rough_day_plan())
        other = run_scenario(6, rough_day_plan())
        assert signature(one[0], one[2]) != signature(other[0], other[2])
