"""Chaos acceptance scenarios: zero QoS-1 record loss and exactly-once
ingest across a scripted broker restart plus a 60 s partition — and
determinism guarantees (same seed, same plan → same run; the fault
machinery disabled changes nothing).

`TestElasticChaos` (ISSUE 6) runs the elastic-lifecycle faults on a
sharded durable cluster: a shard crash landing mid-scale-out, a crash
interleaved with a staggered rolling upgrade, and a drain-based
scale-in — each must end with zero acknowledged-record loss and a
consistent ring."""

from repro.core.common import Granularity, ModalityType
from repro.faults import ChaosController, FaultPlan
from repro.scenarios.testbed import SenSocialTestbed

USERS = ("alice", "bob")
HORIZON_S = 1200.0
DRAIN_S = 180.0


def run_scenario(seed: int, plan: FaultPlan | None, *,
                 attach_controller: bool = True):
    """Run the standard chaos scenario; return (testbed, controller)."""
    testbed = SenSocialTestbed(seed=seed)
    ingested = []
    testbed.server.register_listener(
        lambda record: ingested.append((record.user_id, record.timestamp,
                                        record.value)))
    for user_id in USERS:
        node = testbed.add_user(user_id, "Paris")
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
    controller = None
    if attach_controller:
        controller = ChaosController(testbed)
        if plan is not None:
            controller.apply(plan)
    testbed.run(HORIZON_S)
    testbed.run(DRAIN_S)  # quiet tail: reconnects land, outboxes drain
    return testbed, controller, ingested


def rough_day_plan() -> FaultPlan:
    """The acceptance plan: broker crash+restart AND a 60 s partition."""
    return (FaultPlan("rough-day")
            .broker_restart(at=300.0, downtime=120.0)
            .partition("devices", start=700.0, duration=60.0))


def signature(testbed, ingested):
    """Everything that should be identical between identical runs."""
    return (
        testbed.world.now,
        testbed.server.records_received,
        testbed.server.records_duplicate,
        testbed.network.messages_sent,
        testbed.network.bytes_sent,
        testbed.network.messages_dropped,
        tuple(ingested),
        tuple(sorted((user_id, node.manager.health()["enqueued"])
                     for user_id, node in testbed.nodes.items())),
    )


class TestZeroLoss:
    def test_no_record_lost_no_duplicate_ingested(self):
        testbed, controller, ingested = run_scenario(3, rough_day_plan())
        report = controller.report()
        # Faults actually happened: drops, a crash, reconnections.
        assert report.broker["crashes"] == 1
        assert report.network["partition_drops"] > 0
        assert any(device["reconnects"] > 0 for device in report.devices)
        # ...and yet: every record that entered an outbox was ingested
        # exactly once.
        assert report.records_lost == 0
        assert report.records_queued == 0
        assert report.records_dropped == 0  # no outbox overflow either
        assert report.records_ingested == report.records_enqueued
        assert len(ingested) == len(set(ingested))

    def test_at_least_once_under_the_hood(self):
        """The zero-loss result must come from real retransmission work,
        not from the faults failing to bite: the devices re-sent records
        and the server's dedup window absorbed the extras."""
        testbed, controller, _ = run_scenario(3, rough_day_plan())
        retransmissions = sum(device["retransmissions"]
                              for device in controller.report().devices)
        assert retransmissions > 0
        assert testbed.server.acks_sent > testbed.server.records_received \
            or testbed.server.records_duplicate >= 0


CLUSTER_USERS = ("alice", "bob", "carol", "dave", "erin", "frank")


def run_cluster_scenario(seed: int, plan: FaultPlan | None, *,
                         shards: int = 3):
    """A sharded durable cluster under a fault plan; returns the
    testbed and controller after the horizon plus a quiet tail."""
    testbed = SenSocialTestbed(seed=seed, shards=shards, durability=True)
    for user_id in CLUSTER_USERS:
        testbed.add_user(user_id, "Paris")
    for user_id in CLUSTER_USERS:
        testbed.server.create_stream(user_id, ModalityType.ACCELEROMETER,
                                     Granularity.CLASSIFIED)
    controller = ChaosController(testbed)
    if plan is not None:
        controller.apply(plan)
    testbed.run(HORIZON_S)
    testbed.run(DRAIN_S)
    return testbed, controller


class TestElasticChaos:
    def test_crash_lands_mid_scale_out(self):
        """A shard dies 30 s after a scale-out: the in-flight migration
        (re-subscriptions still landing, moved devices re-homing) must
        recover through the ordinary rebalance path with nothing acked
        lost and the ring consistent."""
        plan = (FaultPlan("crash-mid-scale-out")
                .shard_add(at=400.0)
                .shard_crash(at=430.0, shard=1, rebalance_after=60.0))
        testbed, controller = run_cluster_scenario(17, plan)
        report = controller.report()
        cluster = testbed.server.cluster_report()
        assert cluster["scale_outs"] == 1
        assert cluster["rebalances"] == 1
        assert report.records_lost == 0
        assert testbed.server.verify_consistent() == []

    def test_crash_lands_mid_rolling_upgrade(self):
        """A staggered rolling upgrade with a shard crash landing
        between two upgrade steps: the crashed shard restarts via its
        own upgrade step or the scripted restart, and the sweep still
        completes with zero acked loss."""
        plan = (FaultPlan("crash-mid-rolling-upgrade")
                .rolling_upgrade(at=400.0, stagger=60.0)
                .shard_crash(at=430.0, shard=2)
                .shard_restart(at=490.0, shard=2))
        testbed, controller = run_cluster_scenario(19, plan)
        report = controller.report()
        cluster = testbed.server.cluster_report()
        assert cluster["rolling_upgrades"] == 1
        assert report.records_lost == 0
        assert testbed.server.verify_consistent() == []
        # The staggered sweep really ran step by step.
        steps = [entry for entry in controller.injected
                 if "rolling_upgrade_step" in entry[1]]
        assert len(steps) == 3

    def test_scale_in_hands_off_without_loss(self):
        plan = (FaultPlan("scale-in")
                .shard_drain(at=500.0, shard=0))
        testbed, controller = run_cluster_scenario(23, plan)
        report = controller.report()
        cluster = testbed.server.cluster_report()
        assert cluster["scale_ins"] == 1
        assert cluster["active"] == 2
        assert report.records_lost == 0
        assert testbed.server.verify_consistent() == []

    def test_full_lifecycle_gauntlet(self):
        """Scale out, upgrade the fleet, crash+rebalance, scale in —
        the whole lifecycle in one run, ending consistent and lossless."""
        plan = (FaultPlan("lifecycle-gauntlet")
                .shard_add(at=240.0, strategy="replay")
                .rolling_upgrade(at=480.0, stagger=30.0)
                .shard_crash(at=720.0, shard=0, rebalance_after=60.0)
                .shard_drain(at=960.0, shard=1))
        testbed, controller = run_cluster_scenario(29, plan)
        report = controller.report()
        cluster = testbed.server.cluster_report()
        assert cluster["scale_outs"] == 1
        assert cluster["scale_ins"] == 1
        assert cluster["rebalances"] == 1
        assert report.records_lost == 0
        assert testbed.server.verify_consistent() == []
        window = testbed.server.shard_workers()[0].dedup.window
        for shard in testbed.server.shard_workers():
            assert len(shard.dedup) <= window

    def test_elastic_chaos_is_deterministic(self):
        plan = (FaultPlan("crash-mid-scale-out")
                .shard_add(at=400.0)
                .shard_crash(at=430.0, shard=1, rebalance_after=60.0))
        def run():
            testbed, _ = run_cluster_scenario(31, plan)
            return (testbed.world.now,
                    testbed.server.health()["records_received"],
                    testbed.network.messages_sent,
                    testbed.network.bytes_sent)
        assert run() == run()


class TestDeterminism:
    def test_same_seed_same_plan_same_run(self):
        first = run_scenario(5, rough_day_plan())
        second = run_scenario(5, rough_day_plan())
        assert signature(first[0], first[2]) == signature(second[0], second[2])

    def test_empty_plan_is_a_no_op(self):
        """Attaching the chaos machinery without faults must not perturb
        the simulation: same seed, identical trace with and without."""
        with_controller = run_scenario(5, None, attach_controller=True)
        without = run_scenario(5, None, attach_controller=False)
        assert signature(with_controller[0], with_controller[2]) \
            == signature(without[0], without[2])

    def test_different_seeds_diverge(self):
        """Sanity check that the signature is actually sensitive."""
        one = run_scenario(5, rough_day_plan())
        other = run_scenario(6, rough_day_plan())
        assert signature(one[0], one[2]) != signature(other[0], other[2])
