"""Unit tests for the baseline sensor-map plumbing (MQTT handler,
server dedup/acks, sensor bundle timeouts, uploader retries)."""

import pytest

from repro.apps.sensor_map_baseline.mobile.app_config import RetryPolicy
from repro.apps.sensor_map_baseline.mobile.mqtt_handler import (
    BaselineMqttHandler,
    baseline_trigger_topic,
)
from repro.apps.sensor_map_baseline.mobile.sensor_controller import (
    BaselineSensorController,
)
from repro.apps.sensor_map_baseline.mobile.uploader import (
    UPLOAD_PROTOCOL,
    BaselineUploader,
)
from repro.apps.sensor_map_baseline.server.app import BaselineSensorMapServer
from repro.mqtt import MqttBroker, MqttClient
from repro.sensing import ESSensorManager


@pytest.fixture
def broker(world, network):
    return MqttBroker(world, network)


class TestBaselineMqttHandler:
    def test_connect_subscribes_and_announces(self, world, network, phone,
                                              broker):
        server_client = MqttClient(world, network, client_id="srv",
                                   address="srv-host")
        server_client.connect()
        world.run_for(0.5)
        registrations = []
        server_client.subscribe("bsm/register/+",
                                lambda topic, payload: registrations.append(payload))
        world.run_for(0.5)
        handler = BaselineMqttHandler(world, network, phone)
        handler.connect()
        world.run_for(1.0)
        assert handler.connected
        assert len(registrations) == 1
        assert phone.device_id in registrations[0]

    def test_trigger_dispatch(self, world, network, phone, broker):
        handler = BaselineMqttHandler(world, network, phone)
        received = []
        handler.on_trigger(received.append)
        handler.connect()
        world.run_for(0.5)
        publisher = MqttClient(world, network, client_id="p", address="p-host")
        publisher.connect()
        world.run_for(0.5)
        publisher.publish(baseline_trigger_topic(phone.device_id), "payload",
                          qos=1)
        world.run_for(1.0)
        assert received == ["payload"]
        assert handler.triggers_received == 1

    def test_disconnect_is_idempotent(self, world, network, phone, broker):
        handler = BaselineMqttHandler(world, network, phone)
        handler.connect()
        world.run_for(0.5)
        handler.disconnect()
        handler.disconnect()
        assert not handler.connected


class TestSensorBundles:
    def test_bundle_completes_with_all_modalities(self, world, phone):
        controller = BaselineSensorController(
            world, ESSensorManager.get_for(world, phone),
            ["wifi", "bluetooth"])
        bundles = []
        controller.collect_for_trigger(1, bundles.append)
        world.run_for(10.0)
        assert len(bundles) == 1
        assert bundles[0].complete
        assert set(bundles[0].readings) == {"wifi", "bluetooth"}

    def test_duplicate_trigger_collection_ignored(self, world, phone):
        controller = BaselineSensorController(
            world, ESSensorManager.get_for(world, phone), ["wifi"])
        bundles = []
        controller.collect_for_trigger(1, bundles.append)
        controller.collect_for_trigger(1, bundles.append)
        world.run_for(10.0)
        assert len(bundles) == 1
        assert controller.bundles_started == 1

    def test_independent_triggers_collect_independently(self, world, phone):
        controller = BaselineSensorController(
            world, ESSensorManager.get_for(world, phone), ["wifi"])
        bundles = []
        controller.collect_for_trigger(1, bundles.append)
        controller.collect_for_trigger(2, bundles.append)
        world.run_for(10.0)
        assert sorted(bundle.trigger_action_id for bundle in bundles) == [1, 2]


class TestBaselineServerDedup:
    def test_duplicate_upload_acked_but_not_rejoined(self, world, network,
                                                     phone, broker):
        server = BaselineSensorMapServer(world, network).start()
        uploader = BaselineUploader(
            world, phone, "bsm-server",
            RetryPolicy(ack_timeout_s=2.0, max_retries=3))
        fragment = {"action_id": 1, "user_id": "u", "action_type": "post",
                    "content": "", "modality": "wifi", "granularity": "raw",
                    "value": [], "details": {}, "timestamp": 0.0}
        # Drop acks so the uploader retransmits the same fragment.
        network.set_down("bsm-server")
        uploader.upload(fragment, 50)
        world.run_for(3.0)
        network.set_down("bsm-server", False)
        world.run_for(30.0)
        assert uploader.uploads_acked == 1
        assert server.uploads_received == 1
        assert server.joiner.fragments_received == 1

    def test_malformed_upload_counted(self, world, network, broker):
        server = BaselineSensorMapServer(world, network).start()
        network.register("anon", lambda message: None)
        network.send("anon", "bsm-server", {"nonsense": True},
                     headers={"protocol": UPLOAD_PROTOCOL})
        world.run_for(1.0)
        assert server.malformed_uploads == 1
        assert server.uploads_received == 0

    def test_acks_reach_the_device(self, world, network, phone, broker):
        server = BaselineSensorMapServer(world, network).start()
        uploader = BaselineUploader(world, phone, "bsm-server")
        fragment = {"action_id": 2, "user_id": "u", "action_type": "like",
                    "content": "", "modality": "wifi", "granularity": "raw",
                    "value": [], "details": {}, "timestamp": 0.0}
        uploader.upload(fragment, 50)
        world.run_for(5.0)
        assert server.acks_sent == 1
        assert uploader.pending_count() == 0
