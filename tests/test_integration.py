"""End-to-end integration tests: the Figure 2 scenario, determinism,
and failure injection."""

import pytest

from repro.core.common import Granularity, ModalityType
from repro.core.server import MulticastQuery
from repro.scenarios import build_paris_scenario
from repro.scenarios.testbed import SenSocialTestbed


class TestFigure2Scenario:
    """Geo-aware social notifications: A is told when a friend
    (C) arrives in Paris."""

    def build_app(self, testbed):
        """The notification app from Figure 2, on the public API."""
        notifications = []
        multicast = testbed.server.create_multicast_stream(
            ModalityType.LOCATION, Granularity.CLASSIFIED,
            MulticastQuery(friends_of="A"), name="friends-of-A")

        def on_location(record):
            home = "Paris"
            if record.value == home and record.user_id != "A":
                notifications.append(
                    f"{record.user_id} arrived in {home}")

        multicast.add_listener(on_location)
        return notifications

    def test_friend_arrival_notifies_a(self):
        testbed = build_paris_scenario(seed=2)
        testbed.run(400.0)
        notifications = self.build_app(testbed)
        testbed.run(600.0)
        assert notifications == []  # C and D still in Bordeaux
        testbed.node("C").mobility.travel_to("Paris", duration_s=1800.0)
        testbed.run(3600.0)
        assert any(note.startswith("C arrived in Paris")
                   for note in notifications)
        # D never travelled; E and B are not A's friends.
        assert all(note.startswith("C ") for note in notifications)

    def test_non_friend_arrival_is_silent(self):
        testbed = build_paris_scenario(seed=3)
        testbed.run(400.0)
        notifications = self.build_app(testbed)
        testbed.node("E").mobility.travel_to("Paris", duration_s=1800.0)
        testbed.run(3600.0)
        assert notifications == []


class TestDeterminism:
    def run_once(self, seed):
        testbed = SenSocialTestbed(seed=seed)
        node = testbed.add_user("alice", "Paris")
        stream = node.manager.create_stream(
            ModalityType.ACCELEROMETER, Granularity.CLASSIFIED)
        values = []
        stream.register_listener(lambda record: values.append(
            (record.timestamp, record.value)))
        testbed.facebook.perform_action("alice", "post", content="x")
        testbed.run(600.0)
        return values, testbed.server.action_latencies()

    def test_same_seed_same_trace(self):
        assert self.run_once(5) == self.run_once(5)

    def test_different_seed_different_trace(self):
        assert self.run_once(5) != self.run_once(6)


class TestFailureInjection:
    def test_trigger_survives_phone_partition(self, testbed):
        """QoS-1 redelivery: a trigger sent while the phone is offline
        arrives after reconnection."""
        from repro.core.common import StreamMode
        node = testbed.add_user("alice", "Paris")
        stream = node.manager.create_stream(
            ModalityType.WIFI, Granularity.RAW, mode=StreamMode.SOCIAL_EVENT)
        records = []
        stream.register_listener(records.append)
        mqtt_address = node.manager.mqtt.client.address
        testbed.network.set_down(mqtt_address)
        testbed.facebook.perform_action("alice", "post", content="offline")
        testbed.run(70.0)  # trigger published while phone unreachable
        assert records == []
        testbed.network.set_down(mqtt_address, False)
        testbed.run(60.0)  # broker retries within its retry budget
        assert len(records) == 1

    def test_stream_data_lost_during_partition_is_not_fabricated(self, testbed):
        node = testbed.add_user("alice", "Paris")
        stream = testbed.server.create_stream(
            "alice", ModalityType.MICROPHONE, Granularity.CLASSIFIED)
        records = []
        stream.add_listener(records.append)
        testbed.run(130.0)
        baseline = len(records)
        assert baseline >= 1
        testbed.network.set_down(node.phone.address)
        testbed.run(300.0)
        assert len(records) == baseline  # uploads dropped, not duplicated
        testbed.network.set_down(node.phone.address, False)
        testbed.run(130.0)
        assert len(records) > baseline

    def test_registration_survives_server_restart_via_retained(self, testbed):
        """A server that (re)subscribes later still sees every device,
        because registrations are retained at the broker."""
        testbed.add_user("alice", "Paris")
        testbed.run(5.0)
        from repro.core.server import ServerSenSocialManager
        second = ServerSenSocialManager(testbed.world, testbed.network,
                                        address="sensocial-server-2")
        second.start()
        testbed.run(5.0)
        assert second.database.is_registered("alice")


class TestEmotionPropagationPipeline:
    """The introduction's social-science example: sentiment of posts
    coupled with physical context, mapped onto the social graph."""

    def test_sentiment_context_join(self, testbed):
        from repro.osn import SentimentAnalyzer
        alice = testbed.add_user("alice", "Paris")
        bob = testbed.add_user("bob", "Paris")
        testbed.befriend("alice", "bob")
        analyzer = SentimentAnalyzer()
        observations = []

        def on_action(action):
            if action.content:
                observations.append({
                    "user": action.user_id,
                    "sentiment": analyzer.label(action.content).value,
                    "friends": testbed.server.database.friends_of(
                        action.user_id),
                })

        testbed.server.add_action_listener(on_action)
        testbed.facebook.perform_action("alice", "post",
                                        content="absolutely loving this")
        testbed.facebook.perform_action("bob", "post",
                                        content="fed up with the terrible rain")
        testbed.run(120.0)
        assert len(observations) == 2
        by_user = {obs["user"]: obs for obs in observations}
        assert by_user["alice"]["sentiment"] == "positive"
        assert by_user["bob"]["sentiment"] == "negative"
        assert by_user["alice"]["friends"] == ["bob"]
