"""Tests for client auto-reconnect: the watchdog, exponential backoff,
resubscription after session loss, QoS-1 replay, and the races between
broker-side expiry and client-side recovery."""

import pytest

from repro.mqtt import MqttBroker, MqttClient
from repro.net import FixedLatency, Network
from repro.simkit import World


@pytest.fixture
def stack():
    world = World(seed=29)
    network = Network(world, default_latency=FixedLatency(0.01))
    broker = MqttBroker(world, network)
    return world, network, broker


def make_client(world, network, name, **kwargs):
    kwargs.setdefault("keepalive", 20.0)
    return MqttClient(world, network, client_id=name,
                      address=f"host/{name}", **kwargs)


class TestWatchdog:
    def test_silence_declares_connection_lost(self, stack):
        world, network, broker = stack
        client = make_client(world, network, "c")
        client.connect()
        world.run_for(1.0)
        network.set_down("host/c")
        world.run_for(45.0)  # > keepalive * 1.5 + one watchdog period
        assert not client.connected
        assert client.connection_losses == 1

    def test_healthy_connection_never_trips(self, stack):
        world, network, broker = stack
        client = make_client(world, network, "c")
        client.connect()
        world.run_for(600.0)
        assert client.connected
        assert client.connection_losses == 0

    def test_auto_reconnect_off_stays_down(self, stack):
        world, network, broker = stack
        client = make_client(world, network, "c", auto_reconnect=False)
        client.connect()
        world.run_for(1.0)
        network.set_down("host/c")
        world.run_for(60.0)
        network.set_down("host/c", False)
        world.run_for(300.0)
        # No watchdog, no reconnect loop: the model behaves like the
        # pre-hardening client and only the broker notices.
        assert client.reconnects == 0


class TestReconnect:
    def test_reconnects_after_partition(self, stack):
        world, network, broker = stack
        client = make_client(world, network, "c")
        client.connect(clean_session=False)
        world.run_for(1.0)
        network.set_down("host/c")
        world.run_for(60.0)
        assert not client.connected
        network.set_down("host/c", False)
        world.run_for(60.0)
        assert client.connected
        assert client.reconnects == 1
        assert client.last_reconnected_at is not None

    def test_backoff_grows_and_caps(self, stack):
        world, network, broker = stack
        client = make_client(world, network, "c")
        client.connect()
        world.run_for(1.0)
        network.set_down("host/c")
        world.run_for(600.0)  # a long outage: many failed attempts
        assert client._reconnect_backoff == client.RECONNECT_MAX_S
        network.set_down("host/c", False)
        world.run_for(60.0)  # worst gap is the 30 s cap (+25 % jitter)
        assert client.connected
        assert client._reconnect_backoff == client.RECONNECT_BASE_S

    def test_reconnect_delay_uses_dedicated_rng(self, stack):
        world, network, broker = stack
        client = make_client(world, network, "c")
        client.connect()
        # Jitter draws come from a per-client stream, so two clients
        # (or a client plus unrelated code) never contend for draws.
        before = world.rng("network").getstate()
        client._schedule_reconnect()
        assert world.rng("network").getstate() == before

    def test_pending_qos1_replayed_on_reconnect(self, stack):
        world, network, broker = stack
        subscriber = make_client(world, network, "sub")
        subscriber.connect(clean_session=False)
        inbox = []
        publisher = make_client(world, network, "pub")
        publisher.connect(clean_session=False)
        world.run_for(1.0)
        subscriber.subscribe("q/x", lambda topic, payload: inbox.append(payload),
                             qos=1)
        world.run_for(1.0)
        network.set_down("host/pub")
        publisher.publish("q/x", "stranded", qos=1)
        # The publish and every retry die against the partition; the
        # watchdog gives up on the link, then connectivity returns.
        world.run_for(120.0)
        assert inbox == []
        network.set_down("host/pub", False)
        world.run_for(60.0)
        assert publisher.connected
        assert inbox == ["stranded"]
        assert publisher._pending == {}

    def test_resubscribes_when_broker_lost_session(self, stack):
        world, network, broker = stack
        client = make_client(world, network, "c")
        client.connect(clean_session=False)
        inbox = []
        world.run_for(0.5)
        client.subscribe("news/#", lambda topic, payload: inbox.append(payload),
                         qos=1)
        other = make_client(world, network, "other")
        other.connect()
        world.run_for(1.0)
        network.set_down("host/c")
        broker.crash(preserve_persistent_sessions=False)  # amnesiac restart
        broker.restart()
        world.run_for(60.0)
        network.set_down("host/c", False)
        world.run_for(90.0)
        assert client.connected
        other.publish("news/today", "resubscribed", qos=1)
        world.run_for(5.0)
        assert inbox == ["resubscribed"]


class TestExpiryRaces:
    def test_keepalive_expiry_racing_reconnect(self, stack):
        """Satellite: the broker expires the session at ~1.5 keep-alives
        of silence while the client's watchdog fires on the same grace —
        whichever wins, the reconnect must restore a working session."""
        world, network, broker = stack
        client = make_client(world, network, "c")
        client.connect(clean_session=False)
        inbox = []
        world.run_for(0.5)
        client.subscribe("q/x", lambda topic, payload: inbox.append(payload),
                         qos=1)
        publisher = make_client(world, network, "pub", keepalive=60.0)
        publisher.connect()
        world.run_for(1.0)
        network.set_down("host/c")
        # Long enough for BOTH broker expiry and client watchdog to fire.
        world.run_for(120.0)
        assert broker.sessions_expired >= 0  # persistent: kept, not wiped
        assert not client.connected
        network.set_down("host/c", False)
        world.run_for(60.0)
        assert client.connected
        publisher.publish("q/x", "after-the-race", qos=1)
        world.run_for(5.0)
        assert inbox == ["after-the-race"]

    def test_qos1_retransmission_across_partition_window(self, stack):
        """Satellite: a QoS-1 publish sent into a short partition is
        retransmitted (same packet id, duplicate flag) and delivered
        exactly once when the window closes."""
        world, network, broker = stack
        subscriber = make_client(world, network, "sub")
        subscriber.connect(clean_session=False)
        inbox = []
        publisher = make_client(world, network, "pub")
        publisher.connect()
        world.run_for(1.0)
        subscriber.subscribe("q/x", lambda topic, payload: inbox.append(payload),
                             qos=1)
        world.run_for(1.0)
        # A window short enough that the watchdog never trips: pure
        # QoS-1 retransmission carries the message across.
        network.schedule_partition("host/pub", start=world.now, duration=12.0)
        world.run_for(0.5)
        publisher.publish("q/x", "through-the-window", qos=1)
        world.run_for(30.0)
        assert inbox == ["through-the-window"]
        assert publisher._pending == {}
        assert publisher.connection_losses == 0
