"""Hash-stability regression tests (ISSUE 5 satellite).

Python salts builtin ``hash(str)`` per interpreter run
(``PYTHONHASHSEED``), so anything that routes, places or orders by it
silently changes behaviour between runs.  Two surfaces must be immune:

- consistent-hash ring placement (devices would migrate between shards
  from one run to the next, breaking reproducibility *and* splitting a
  user's history across shards);
- docstore hash-index bucket iteration (candidate evaluation order
  feeds ``find_one``/``update_one`` semantics).

The tests run the same computation in subprocesses pinned to different
``PYTHONHASHSEED`` values and require identical output.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")

RING_SCRIPT = """
import json, sys
from repro.cluster.ring import ConsistentHashRing, stable_hash
ring = ConsistentHashRing([f"shard-{i}" for i in range(5)], vnodes=64)
keys = [f"d{i:04d}" for i in range(200)] + ["user:alice", "user:bob"]
print(json.dumps({
    "owners": {key: ring.owner(key) for key in keys},
    "hashes": [stable_hash(key) for key in keys[:20]],
    "spec": ring.to_spec(),
}, sort_keys=True))
"""

ELASTIC_RING_SCRIPT = """
import json
from repro.cluster.ring import ConsistentHashRing
keys = [f"d{i:04d}" for i in range(200)]
# Grow 1 -> 4, then shrink back down to a 2-member ring...
grown = ConsistentHashRing(["shard-0"], vnodes=64)
for i in range(1, 4):
    grown.add(f"shard-{i}")
grown.remove("shard-1")
grown.remove("shard-0")
# ...and build the same 2-member ring from scratch.
fresh = ConsistentHashRing(["shard-2", "shard-3"], vnodes=64)
print(json.dumps({
    "grown": {key: grown.owner(key) for key in keys},
    "fresh": {key: fresh.owner(key) for key in keys},
    "grown_members": grown.members(),
    "grown_version": grown.version,
}, sort_keys=True))
"""

INDEX_SCRIPT = """
import json
from repro.docstore import DocumentStore
collection = DocumentStore()["records"]
collection.create_index("user_id")
collection.create_index("modality")
modalities = ["accelerometer", "location", "activity", "place"]
for i in range(300):
    collection.insert_one({"user_id": f"user-{i % 17}",
                           "modality": modalities[i % 4], "seq": i})
out = {
    "conjunctive": [d["seq"] for d in collection.find(
        {"user_id": "user-7", "modality": "place"})],
    "in_union": [d["seq"] for d in collection.find(
        {"user_id": {"$in": ["user-3", "user-7", "user-11"]}})],
    "first": collection.find_one({"modality": "activity"})["seq"],
}
print(json.dumps(out, sort_keys=True))
"""


def run_with_hashseed(script: str, seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = SRC
    result = subprocess.run([sys.executable, "-c", script], env=env,
                            capture_output=True, text=True, check=True)
    return json.loads(result.stdout)


class TestRingPlacementStability:
    def test_placement_identical_across_interpreter_runs(self):
        baseline = run_with_hashseed(RING_SCRIPT, "0")
        for seed in ("1", "12345", "random"):
            assert run_with_hashseed(RING_SCRIPT, seed) == baseline

    def test_stable_hash_pinned_values(self):
        # Golden values: a change here means every existing deployment
        # would re-place every device on upgrade.
        from repro.cluster.ring import stable_hash
        assert stable_hash("d0001") == 0x5FC9AD130B7DE9D8
        assert stable_hash("sensocial") == 0xF194688AE01414A1
        assert stable_hash("shard-0#0") == 0x3A138B1616E0D2C1
        # Vnodes of shards that only ever exist mid-lifecycle (joined by
        # add_shard) hash identically everywhere too — elastic clusters
        # re-place devices from the member set alone.
        assert stable_hash("shard-3#0") == 0x14B15B395D011C03
        assert stable_hash("shard-1#63") == 0xB636A3687EC95280
        assert stable_hash("a") != stable_hash("b")

    def test_broker_and_coordinator_agree_on_ownership(self):
        """The broker rebuilds the ring from the SUBSCRIBE spec; both
        sides must place every key identically."""
        from repro.cluster.ring import ConsistentHashRing
        ring = ConsistentHashRing([f"shard-{i}" for i in range(4)])
        spec = ring.to_spec()
        broker_side = ConsistentHashRing.from_spec(spec)
        for i in range(100):
            key = f"d{i:04d}"
            assert ring.owner(key) == broker_side.owner(key)


class TestElasticRingStability:
    """A ring grown shard by shard and then shrunk must place exactly
    like a fresh ring over the surviving member set (placement is a
    pure function of membership, never of join order) — and must do so
    identically across interpreter hash seeds."""

    def test_grown_then_shrunk_equals_fresh(self):
        baseline = run_with_hashseed(ELASTIC_RING_SCRIPT, "0")
        assert baseline["grown"] == baseline["fresh"]
        assert baseline["grown_members"] == ["shard-2", "shard-3"]
        # 1 initial build + 3 adds + 2 removes.
        assert baseline["grown_version"] == 6

    def test_elastic_placement_identical_across_interpreter_runs(self):
        baseline = run_with_hashseed(ELASTIC_RING_SCRIPT, "0")
        for seed in ("1", "31337", "random"):
            assert run_with_hashseed(ELASTIC_RING_SCRIPT, seed) == baseline


class TestDocstoreIterationStability:
    def test_index_bucket_iteration_identical_across_runs(self):
        baseline = run_with_hashseed(INDEX_SCRIPT, "0")
        for seed in ("1", "98765", "random"):
            assert run_with_hashseed(INDEX_SCRIPT, seed) == baseline
