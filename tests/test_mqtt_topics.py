"""Unit tests for MQTT topic validation and matching."""

import pytest

from repro.mqtt import MqttTopicError, topic_matches, validate_filter, validate_topic


class TestTopicValidation:
    def test_plain_topic_is_valid(self):
        assert validate_topic("a/b/c") == ["a", "b", "c"]

    def test_empty_topic_rejected(self):
        with pytest.raises(MqttTopicError):
            validate_topic("")

    def test_wildcards_rejected_in_topic_names(self):
        with pytest.raises(MqttTopicError):
            validate_topic("a/+/c")
        with pytest.raises(MqttTopicError):
            validate_topic("a/#")

    def test_nul_rejected(self):
        with pytest.raises(MqttTopicError):
            validate_topic("a\x00b")


class TestFilterValidation:
    def test_plus_must_fill_whole_level(self):
        with pytest.raises(MqttTopicError):
            validate_filter("a/b+/c")

    def test_hash_must_be_last(self):
        with pytest.raises(MqttTopicError):
            validate_filter("a/#/c")

    def test_hash_must_fill_whole_level(self):
        with pytest.raises(MqttTopicError):
            validate_filter("a/b#")

    def test_valid_wildcards_accepted(self):
        assert validate_filter("a/+/c") == ["a", "+", "c"]
        assert validate_filter("a/#") == ["a", "#"]
        assert validate_filter("#") == ["#"]


class TestMatching:
    @pytest.mark.parametrize("topic_filter,topic,expected", [
        ("a/b/c", "a/b/c", True),
        ("a/b/c", "a/b/d", False),
        ("a/+/c", "a/b/c", True),
        ("a/+/c", "a/x/c", True),
        ("a/+/c", "a/b/c/d", False),
        ("a/#", "a/b/c", True),
        ("a/#", "a", True),          # '#' also matches the parent level
        ("#", "anything/at/all", True),
        ("+", "one", True),
        ("+", "one/two", False),
        ("a/b", "a", False),
        ("a", "a/b", False),
        ("sensocial/device/+/trigger", "sensocial/device/d1/trigger", True),
        ("sensocial/device/+/trigger", "sensocial/device/d1/config", False),
        ("a/+/+", "a/b/c", True),
    ])
    def test_matching_table(self, topic_filter, topic, expected):
        assert topic_matches(topic_filter, topic) is expected

    def test_empty_level_matches_plus(self):
        assert topic_matches("a/+/b", "a//b")
