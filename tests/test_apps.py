"""Tests for the prototype applications and their baselines."""

import pytest

from repro.apps.conweb import ConWebBrowser, ConWebServer, ConWebServerApp
from repro.apps.conweb_baseline import (
    BaselineConWebBrowser,
    BaselineContextReceiver,
)
from repro.apps.gar import GoogleActivityRecognitionApp
from repro.apps.sensor_map import FacebookSensorMapServer, FacebookSensorMapService
from repro.apps.sensor_map_baseline import (
    BaselineSensorMapServer,
    BaselineSensorMapService,
)
from repro.apps.sensor_map_baseline.mobile.trigger_parser import (
    TriggerParseError,
    compile_trigger,
    parse_trigger,
)
from repro.device import ActivityState, AudioState, calibration


class TestGarBaseline:
    def test_gar_streams_activity_labels(self, testbed):
        node = testbed.add_user("g", "Paris")
        app = GoogleActivityRecognitionApp(
            testbed.world, testbed.network, node.phone).start()
        labels = []
        app.add_listener(labels.append)
        testbed.run(200.0)
        assert len(labels) == 3
        assert set(labels) <= {"still", "walking", "running"}

    def test_gar_energy_per_cycle_is_calibrated(self, testbed):
        node = testbed.add_user("g", "Paris")
        app = GoogleActivityRecognitionApp(
            testbed.world, testbed.network, node.phone).start()
        before = node.phone.battery.consumed_by("gar")
        testbed.run(10 * 60.0)
        per_cycle = (node.phone.battery.consumed_by("gar") - before) / 10
        assert per_cycle == pytest.approx(calibration.GAR_CYCLE_MAH)

    def test_gar_heap_footprint(self, testbed):
        node = testbed.add_user("g", "Paris")
        before = node.phone.heap.object_count
        GoogleActivityRecognitionApp(testbed.world, testbed.network, node.phone)
        assert node.phone.heap.object_count - before == \
            calibration.HEAP_GAR_LIBRARY_OBJECTS

    def test_gar_stop_clears_cpu(self, testbed):
        node = testbed.add_user("g", "Paris")
        app = GoogleActivityRecognitionApp(
            testbed.world, testbed.network, node.phone).start()
        app.stop()
        assert "gar-library" not in node.phone.cpu.load_names()


@pytest.fixture
def map_rig(testbed):
    node = testbed.add_user("alice", "Paris")
    server_app = FacebookSensorMapServer(testbed.server)
    mobile_app = FacebookSensorMapService(node.manager)
    return testbed, node, server_app, mobile_app


class TestFacebookSensorMap:
    def test_no_markers_without_actions(self, map_rig):
        testbed, _, server_app, mobile_app = map_rig
        testbed.run(300.0)
        assert mobile_app.marker_count() == 0
        assert server_app.markers() == []

    def test_action_produces_complete_marker(self, map_rig):
        testbed, node, server_app, mobile_app = map_rig
        node.mobility.stop()
        node.phone.environment.activity = ActivityState.WALKING
        node.phone.environment.audio = AudioState.NOISY
        testbed.facebook.perform_action("alice", "post",
                                        content="what a fantastic day")
        testbed.run(180.0)
        assert mobile_app.marker_count() == 3  # one per modality
        markers = server_app.markers("alice")
        assert len(markers) == 1
        marker = markers[0]
        assert marker.is_complete()
        assert marker.activity == "walking"
        assert marker.audio == "not_silent"
        assert abs(marker.lon - 2.3522) < 0.1
        assert marker.content == "what a fantastic day"

    def test_markers_of_circle_includes_friends(self, map_rig):
        testbed, _, server_app, _ = map_rig
        bob = testbed.add_user("bob", "Bordeaux")
        FacebookSensorMapService(bob.manager)
        testbed.befriend("alice", "bob")
        testbed.facebook.perform_action("bob", "like", target="page")
        testbed.run(180.0)
        circle = server_app.markers_of_circle("alice")
        assert [marker.user_id for marker in circle] == ["bob"]

    def test_works_when_action_made_from_another_device(self, map_rig):
        """Actions captured by the OSN plug-in, not on the phone (§6.1):
        a post made from a laptop still triggers mobile sensing."""
        testbed, _, server_app, mobile_app = map_rig
        # perform_action goes straight to the platform, device-agnostic.
        testbed.facebook.perform_action("alice", "comment", content="desk")
        testbed.run(180.0)
        assert mobile_app.marker_count() == 3


@pytest.fixture
def conweb_rig(testbed):
    node = testbed.add_user("alice", "Paris")
    web = ConWebServer(testbed.world, testbed.network)
    app = ConWebServerApp(testbed.server, web)
    browser = ConWebBrowser(node.manager).start()
    return testbed, node, web, app, browser


class TestConWeb:
    def test_page_loads_and_refreshes(self, conweb_rig):
        testbed, _, _, _, browser = conweb_rig
        browser.open("example.org/index")
        testbed.run(185.0)
        assert browser.pages_loaded == 4  # initial + 3 refreshes
        assert browser.current_page.url == "example.org/index"

    def test_page_adapts_to_place(self, conweb_rig):
        testbed, _, _, _, browser = conweb_rig
        browser.open("example.org")
        testbed.run(185.0)
        assert "Paris" in browser.current_page.headline

    def test_page_adapts_to_activity(self, conweb_rig):
        testbed, node, _, _, browser = conweb_rig
        node.mobility.stop()
        node.phone.environment.activity = ActivityState.RUNNING
        browser.open("example.org")
        testbed.run(185.0)
        assert browser.current_page.layout == "compact"
        assert browser.current_page.contrast == "high"

    def test_page_adapts_to_osn_post(self, conweb_rig):
        testbed, _, _, _, browser = conweb_rig
        browser.open("example.org")
        testbed.facebook.perform_action(
            "alice", "post", content="so disappointed by the food dinner")
        testbed.run(240.0)
        suggestions = browser.current_page.suggestions
        assert "more food for you" in suggestions
        assert "something to cheer you up" in suggestions

    def test_stop_tears_down_streams(self, conweb_rig):
        testbed, node, _, _, browser = conweb_rig
        browser.open("example.org")
        count_before = len(node.manager.streams)
        browser.stop()
        assert len(node.manager.streams) == count_before - 3

    def test_open_requires_running_browser(self, conweb_rig):
        _, _, _, _, browser = conweb_rig
        browser.stop()
        with pytest.raises(RuntimeError):
            browser.open("x")


class TestBaselineSensorMap:
    @pytest.fixture
    def rig(self, testbed):
        node = testbed.add_user("alice", "Paris")
        server = BaselineSensorMapServer(testbed.world, testbed.network).start()
        server.attach_plugin(testbed.facebook_plugin)
        mobile = BaselineSensorMapService(
            testbed.world, testbed.network, node.phone).start()
        testbed.run(2.0)
        return testbed, node, server, mobile

    def test_functionally_equivalent_to_middleware_version(self, rig):
        testbed, node, server, mobile = rig
        node.mobility.stop()
        node.phone.environment.activity = ActivityState.STILL
        testbed.facebook.perform_action("alice", "post", content="hello")
        testbed.run(180.0)
        assert mobile.marker_count() == 3
        markers = server.markers("alice")
        assert len(markers) == 1
        assert markers[0].is_complete()
        assert markers[0].activity == "still"
        assert markers[0].position is not None

    def test_trigger_parser_rejects_garbage(self):
        with pytest.raises(TriggerParseError):
            parse_trigger("not json at all {{{")
        with pytest.raises(TriggerParseError):
            parse_trigger('{"version": 99, "action": {}}')
        with pytest.raises(TriggerParseError):
            parse_trigger('{"version": 1, "action": {"user_id": "x"}}')

    def test_trigger_round_trip(self):
        payload = compile_trigger({
            "action_id": 4, "user_id": "u", "type": "post",
            "created_at": 1.5, "content": "c"})
        trigger = parse_trigger(payload)
        assert trigger.action_id == 4
        assert trigger.content == "c"

    def test_foreign_user_triggers_ignored(self, rig):
        testbed, node, server, mobile = rig
        other = testbed.add_user("bob", "Paris")
        BaselineSensorMapService(
            testbed.world, testbed.network, other.phone).start()
        testbed.run(2.0)
        testbed.facebook.perform_action("bob", "post", content="bob's")
        testbed.run(180.0)
        assert mobile.marker_count() == 0


class TestBaselineConWeb:
    def test_functionally_equivalent_pages(self, testbed):
        node = testbed.add_user("alice", "Paris")
        web = ConWebServer(testbed.world, testbed.network)
        BaselineContextReceiver(testbed.world, testbed.network, web,
                                address="bcw-server")
        browser = BaselineConWebBrowser(
            testbed.world, node.phone, cities=testbed.cities).start()
        browser.open("example.org")
        testbed.run(185.0)
        assert browser.pages_loaded >= 3
        assert "Paris" in browser.current_page.headline
        browser.stop()
        assert not browser.context_service.running
