"""Lifecycle tests: clean shutdown of managers, services and testbeds."""

import pytest

from repro.core.common import Granularity, ModalityType
from repro.core.mobile import StreamState


class TestMobileManagerLifecycle:
    def test_stop_destroys_streams_and_disconnects(self, testbed):
        node = testbed.add_user("a", "Paris")
        streams = [node.manager.create_stream(ModalityType.WIFI,
                                              Granularity.RAW)
                   for _ in range(3)]
        node.manager.stop()
        assert node.manager.streams == {}
        assert all(stream.state is StreamState.DESTROYED for stream in streams)
        assert not node.manager.mqtt.client.connected

    def test_no_sampling_after_stop(self, testbed):
        node = testbed.add_user("a", "Paris")
        stream = node.manager.create_stream(ModalityType.WIFI, Granularity.RAW)
        records = []
        stream.register_listener(records.append)
        node.manager.stop()
        testbed.run(300.0)
        assert records == []

    def test_location_reporting_stops(self, testbed):
        node = testbed.add_user("a", "Paris")
        testbed.run(400.0)
        assert testbed.server.database.location_of("a") is not None
        node.manager.stop()
        last = testbed.server.database.location_of("a")["timestamp"]
        testbed.run(900.0)
        assert testbed.server.database.location_of("a")["timestamp"] == last

    def test_manager_is_singleton_per_device(self, testbed):
        from repro.core.mobile.manager import MobileSenSocialManager
        node = testbed.add_user("a", "Paris")
        again = MobileSenSocialManager.get_sensocial_manager(
            testbed.world, node.phone, testbed.network)
        assert again is node.manager


class TestServerLifecycle:
    def test_destroy_stream_is_idempotent(self, testbed):
        testbed.add_user("a", "Paris")
        stream = testbed.server.create_stream("a", ModalityType.WIFI,
                                              Granularity.RAW)
        stream.destroy()
        stream.destroy()
        assert stream.destroyed

    def test_destroyed_server_stream_delivers_nothing(self, testbed):
        testbed.add_user("a", "Paris")
        stream = testbed.server.create_stream("a", ModalityType.MICROPHONE,
                                              Granularity.CLASSIFIED)
        records = []
        stream.add_listener(records.append)
        testbed.run(3.0)
        stream.destroy()
        testbed.run(300.0)
        assert records == []

    def test_server_stream_remove_listener(self, testbed):
        testbed.add_user("a", "Paris")
        stream = testbed.server.create_stream("a", ModalityType.MICROPHONE,
                                              Granularity.CLASSIFIED)
        records = []
        listener = records.append
        stream.add_listener(listener)
        stream.remove_listener(listener)
        testbed.run(130.0)
        assert records == []
        assert stream.records_received > 0  # arrived, no listener left


class TestTestbedSemantics:
    def test_twitter_platform_user(self, testbed):
        node = testbed.add_user("tweeter", "Paris", platforms=("twitter",))
        assert testbed.twitter.is_authorized("tweeter")
        assert not testbed.facebook.graph.has_user("tweeter") or \
            not testbed.facebook.is_authorized("tweeter")

    def test_befriend_on_twitter_graph(self, testbed):
        testbed.add_user("a", "Paris", platforms=("twitter",))
        testbed.add_user("b", "Paris", platforms=("twitter",))
        testbed.befriend("a", "b", platform="twitter")
        assert testbed.twitter.graph.are_friends("a", "b")
        assert testbed.server.database.friends_of("a") == ["b"]

    def test_node_lookup(self, testbed):
        node = testbed.add_user("x", "Paris")
        assert testbed.node("x") is node
        with pytest.raises(KeyError):
            testbed.node("missing")
