"""Unit tests for the hand-rolled plumbing inside the no-middleware
baseline apps (upload queues, dedup, connectivity, duty cycling,
configuration)."""

import pytest

from repro.apps.conweb_baseline.mobile.config import (
    ConfigError,
    ConWebConfig,
    UploadPolicy,
)
from repro.apps.conweb_baseline.mobile.connectivity import ConnectivityMonitor
from repro.apps.conweb_baseline.mobile.diagnostics import Diagnostics
from repro.apps.conweb_baseline.mobile.duty_cycler import DutyCycler
from repro.apps.conweb_baseline.mobile.upload_queue import (
    ACK_PROTOCOL,
    UploadQueue,
)
from repro.apps.sensor_map_baseline.mobile.app_config import (
    SensorMapConfig,
    SensorMapConfigError,
)
from repro.apps.sensor_map_baseline.mobile.trigger_dedup import (
    TriggerDeduplicator,
)
from repro.sensing import ESSensorManager


class TestConWebConfig:
    def test_defaults_validate(self):
        ConWebConfig().validate()

    def test_from_dict_applies_defaults(self):
        config = ConWebConfig.from_dict({"refresh_period_s": 30})
        assert config.refresh_period_s == 30.0
        assert config.modalities == ("accelerometer", "microphone", "location")

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError):
            ConWebConfig.from_dict({"frequency": 1})

    def test_unknown_modality_rejected(self):
        with pytest.raises(ConfigError):
            ConWebConfig(modalities=("thermometer",)).validate()

    def test_invalid_period_rejected(self):
        with pytest.raises(ConfigError):
            ConWebConfig(periods_s={"accelerometer": 0,
                                    "microphone": 60,
                                    "location": 60}).validate()

    def test_upload_policy_validation(self):
        with pytest.raises(ConfigError):
            UploadPolicy(ack_timeout_s=0).validate()
        with pytest.raises(ConfigError):
            UploadPolicy(backoff_factor=0.5).validate()


class TestSensorMapConfig:
    def test_defaults_validate(self):
        SensorMapConfig().validate()

    def test_duplicate_modalities_rejected(self):
        with pytest.raises(SensorMapConfigError):
            SensorMapConfig(modalities=("wifi", "wifi")).validate()

    def test_from_dict_round_trip(self):
        config = SensorMapConfig.from_dict({
            "modalities": ["location"],
            "retry": {"max_retries": 7},
        })
        assert config.modalities == ("location",)
        assert config.retry.max_retries == 7

    def test_unknown_keys_rejected(self):
        with pytest.raises(SensorMapConfigError):
            SensorMapConfig.from_dict({"whatever": 1})


class TestUploadQueue:
    def make(self, world, network, env_registry, policy=None):
        from repro.device.phone import Smartphone
        phone = Smartphone(world, network, env_registry, "q-user")
        received = []

        def server(message):
            if message.headers.get("protocol") == "bcw-context":
                received.append(message.payload)
                network.send("ack-server", message.src,
                             {"seq": message.payload["seq"]},
                             headers={"protocol": ACK_PROTOCOL})

        network.register("ack-server", server)
        queue = UploadQueue(world, phone, "ack-server",
                            policy or UploadPolicy())
        return queue, received, phone

    def test_upload_acked_exactly_once(self, world, network, env_registry):
        queue, received, _ = self.make(world, network, env_registry)
        queue.enqueue({"k": "v"}, wire_bytes=20)
        world.run_for(5.0)
        assert len(received) == 1
        assert queue.updates_acked == 1
        assert queue.pending_count() == 0
        assert queue.retransmissions == 0

    def test_lost_upload_is_retransmitted(self, world, network, env_registry):
        queue, received, phone = self.make(world, network, env_registry)
        network.set_down("ack-server")
        queue.enqueue({"k": "v"}, wire_bytes=20)
        world.run_for(5.0)
        assert received == []
        network.set_down("ack-server", False)
        world.run_for(60.0)
        assert len(received) >= 1
        assert queue.updates_acked == 1
        assert queue.retransmissions >= 1

    def test_gives_up_after_max_retries(self, world, network, env_registry):
        queue, received, _ = self.make(
            world, network, env_registry,
            UploadPolicy(ack_timeout_s=1.0, max_retries=2))
        network.set_down("ack-server")
        queue.enqueue({"k": "v"}, wire_bytes=20)
        world.run_for(60.0)
        assert queue.updates_abandoned == 1
        assert queue.pending_count() == 0

    def test_buffer_cap_drops_excess(self, world, network, env_registry):
        queue, _, _ = self.make(world, network, env_registry,
                                UploadPolicy(max_pending=2))
        network.set_down("ack-server")
        assert queue.enqueue({"n": 1}, 10)
        assert queue.enqueue({"n": 2}, 10)
        assert not queue.enqueue({"n": 3}, 10)
        assert queue.updates_dropped == 1

    def test_shutdown_cancels_timers(self, world, network, env_registry):
        queue, _, _ = self.make(world, network, env_registry)
        network.set_down("ack-server")
        queue.enqueue({"n": 1}, 10)
        queue.shutdown()
        world.run_for(120.0)
        assert queue.retransmissions == 0


class TestTriggerDedup:
    def test_first_time_processes(self, world):
        dedup = TriggerDeduplicator(world)
        assert dedup.should_process(1, created_at=0.0)

    def test_duplicate_rejected(self, world):
        dedup = TriggerDeduplicator(world)
        dedup.should_process(1, created_at=0.0)
        assert not dedup.should_process(1, created_at=0.0)
        assert dedup.duplicates == 1

    def test_ancient_replay_rejected(self, world):
        dedup = TriggerDeduplicator(world, ttl_s=100.0)
        world.run_for(1000.0)
        assert not dedup.should_process(2, created_at=0.0)
        assert dedup.replays == 1

    def test_eviction_bounds_memory(self, world):
        dedup = TriggerDeduplicator(world, ttl_s=10_000.0, max_entries=10)
        for action_id in range(50):
            dedup.should_process(action_id, created_at=world.now)
        assert dedup.seen_count() <= 11


class TestConnectivityMonitor:
    def test_offline_after_silence(self, world):
        monitor = ConnectivityMonitor(world, offline_after_s=30.0).start()
        states = []
        monitor.on_change(states.append)
        monitor.note_ack()
        world.run_for(60.0)
        assert monitor.online is False
        assert states == [False]

    def test_ack_flips_back_online(self, world):
        monitor = ConnectivityMonitor(world, offline_after_s=30.0).start()
        monitor.note_ack()
        world.run_for(60.0)
        assert not monitor.online
        monitor.note_ack()
        assert monitor.online
        assert monitor.transitions == 2

    def test_optimistic_before_any_traffic(self, world):
        monitor = ConnectivityMonitor(world).start()
        world.run_for(300.0)
        assert monitor.online


class TestDutyCycler:
    def test_cycles_at_configured_period(self, world, phone):
        readings = []
        cycler = DutyCycler(world, ESSensorManager.get_for(world, phone),
                            readings.append)
        cycler.add_modality("wifi", 20.0)
        world.run_for(100.0)
        assert 4 <= len(readings) <= 6

    def test_pause_skips_sampling(self, world, phone):
        readings = []
        cycler = DutyCycler(world, ESSensorManager.get_for(world, phone),
                            readings.append)
        cycler.add_modality("wifi", 10.0)
        world.run_for(30.0)
        count = len(readings)
        cycler.pause()
        world.run_for(60.0)
        assert len(readings) <= count + 1  # one in-flight cycle may land
        cycler.resume()
        world.run_for(30.0)
        assert len(readings) > count + 1

    def test_remove_modality(self, world, phone):
        readings = []
        cycler = DutyCycler(world, ESSensorManager.get_for(world, phone),
                            readings.append)
        cycler.add_modality("wifi", 10.0)
        cycler.remove_modality("wifi")
        world.run_for(60.0)
        assert readings == []
        assert cycler.modalities() == []

    def test_invalid_period_rejected(self, world, phone):
        cycler = DutyCycler(world, ESSensorManager.get_for(world, phone),
                            lambda reading: None)
        with pytest.raises(ValueError):
            cycler.add_modality("wifi", 0.0)


class TestDiagnostics:
    def test_counters(self, world):
        diagnostics = Diagnostics(world)
        diagnostics.count("x")
        diagnostics.count("x", 4)
        assert diagnostics.counter("x") == 5
        assert diagnostics.counter("missing") == 0

    def test_log_levels_and_recent(self, world):
        diagnostics = Diagnostics(world)
        diagnostics.log("info", "a")
        diagnostics.log("error", "boom", "detail")
        assert [entry.event for entry in diagnostics.recent("error")] == ["boom"]
        assert len(diagnostics.recent()) == 2

    def test_unknown_level_rejected(self, world):
        with pytest.raises(ValueError):
            Diagnostics(world).log("fatal", "x")

    def test_ring_buffer_bounded(self, world):
        diagnostics = Diagnostics(world, log_capacity=5)
        for index in range(20):
            diagnostics.log("debug", f"event-{index}")
        assert len(diagnostics.recent(limit=100)) == 5

    def test_snapshot(self, world):
        diagnostics = Diagnostics(world)
        diagnostics.count("c")
        diagnostics.log("error", "bad")
        snapshot = diagnostics.snapshot()
        assert snapshot["counters"] == {"c": 1}
        assert snapshot["errors"] == ["bad"]
