"""Tests for the implemented future-work extensions: topic mining and
collocation-following multicast streams."""

import pytest

from repro.core.common import Granularity, ModalityType
from repro.core.common.errors import MiddlewareError
from repro.core.server import MulticastQuery
from repro.osn import ContentGenerator, TopicClassifier
from repro.simkit import World


class TestTopicClassifier:
    def test_topic_name_wins(self):
        classifier = TopicClassifier()
        assert classifier.classify("talking about football today") == "football"

    def test_noun_evidence_accumulates(self):
        classifier = TopicClassifier()
        assert classifier.classify("the striker scored a goal in the derby") \
            == "football"

    def test_off_vocabulary_text_is_none(self):
        classifier = TopicClassifier()
        assert classifier.classify("xyzzy plugh quux") is None

    def test_empty_text_is_none(self):
        assert TopicClassifier().classify("") is None

    def test_scores_sorted_best_first(self):
        classifier = TopicClassifier()
        scores = classifier.scores("football match after a great dinner")
        assert scores[0].topic == "football"
        assert {score.topic for score in scores} >= {"football", "food"}

    def test_generated_content_is_classifiable(self):
        classifier = TopicClassifier()
        generator = ContentGenerator(World(seed=3).rng("c"))
        correct = 0
        for _ in range(40):
            topic = "music"
            text = generator.generate(topic=topic)
            if classifier.classify(text) == topic:
                correct += 1
        assert correct >= 36  # the vocabulary covers its own generator

    def test_custom_topics_extend_vocabulary(self):
        classifier = TopicClassifier()
        classifier.add_topic("health", ["doctor", "clinic", "checkup"])
        assert classifier.classify("booked a clinic checkup") == "health"
        assert "health" in classifier.topics()

    def test_constructor_vocabulary_merges(self):
        classifier = TopicClassifier({"football": ["var"],
                                      "cinema": ["movie"]})
        assert classifier.classify("watching a movie") == "cinema"
        assert classifier.classify("the var decision") == "football"


class TestCollocationMulticast:
    def test_near_user_membership_follows_the_person(self, testbed):
        """§3.2: every time the person moves, streams are recreated on
        the devices of the users currently nearby."""
        anchor = testbed.add_user("anchor", "Paris")
        nearby = testbed.add_user("nearby", "Paris")
        far = testbed.add_user("far", "Bordeaux")
        # Pin everyone at deterministic positions.
        for node in (anchor, nearby, far):
            node.mobility.stop()
        anchor.phone.environment.move_to(2.3522, 48.8566)
        nearby.phone.environment.move_to(2.3525, 48.8567)
        far.phone.environment.move_to(-0.5792, 44.8378)
        testbed.run(400.0)  # location updates reach the server

        multicast = testbed.server.create_multicast_stream(
            ModalityType.BLUETOOTH, Granularity.CLASSIFIED,
            MulticastQuery(near_user="anchor", near_user_km=1.0))
        assert multicast.members() == ["nearby"]

        # The anchor relocates to Bordeaux; membership follows.
        anchor.phone.environment.move_to(-0.5793, 44.8379)
        testbed.run(400.0)
        assert multicast.members() == ["far"]

    def test_near_user_with_unknown_location_selects_nobody(self, testbed):
        testbed.add_user("anchor", "Paris")
        testbed.add_user("other", "Paris")
        # No location updates have flowed yet.
        multicast = testbed.server.create_multicast_stream(
            ModalityType.WIFI, Granularity.RAW,
            MulticastQuery(near_user="anchor"))
        assert multicast.members() == []

    def test_near_user_excludes_the_person_themselves(self, testbed):
        anchor = testbed.add_user("anchor", "Paris")
        anchor.mobility.stop()
        testbed.run(400.0)
        multicast = testbed.server.create_multicast_stream(
            ModalityType.WIFI, Granularity.RAW,
            MulticastQuery(near_user="anchor", near_user_km=50.0))
        assert "anchor" not in multicast.members()

    def test_invalid_radius_rejected(self):
        with pytest.raises(MiddlewareError):
            MulticastQuery(near_user="x", near_user_km=0.0)
