"""Cluster-facing SLO surfaces: the health rollup through
``cluster_report()``, the ``slo_rollup()`` shard summary, and the
missing-shard-burns rule (a crashed shard is an SLO violation, never
healthy-by-absence)."""

from repro.core.common import Granularity, ModalityType
from repro.obs import SloControlPlaneConfig
from repro.obs.control import SLO_WORK_SKEW
from repro.scenarios.testbed import SenSocialTestbed

USERS = ["alice", "bob", "carol"]


def deploy(shards=3, *, slo=False, seed=7):
    testbed = SenSocialTestbed(seed=seed, shards=shards, durability=True,
                               slo=slo)
    for user_id in USERS:
        node = testbed.add_user(user_id, "Paris")
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True,
                                   settings={"duty_cycle_s": 20.0})
    return testbed


class TestSloRollup:
    def test_healthy_cluster_reports_every_shard(self):
        testbed = deploy()
        testbed.run(60.0)
        rollup = testbed.server.slo_rollup()
        assert len(rollup["statuses"]) == 3
        assert rollup["missing"] == []
        assert rollup["skew"] >= 1.0

    def test_crashed_shard_lands_in_missing(self):
        testbed = deploy()
        testbed.run(60.0)
        dead = testbed.server.crash_shard(1)
        rollup = testbed.server.slo_rollup()
        assert rollup["missing"] == [dead.shard_id]
        assert dead.shard_id not in rollup["statuses"]
        assert len(rollup["statuses"]) == 2

    def test_missing_shard_burns_not_healthy(self):
        """The work-skew probe returns None for a cluster with a dead
        shard, and the evaluator books that as a full error — missing
        telemetry is indistinguishable from an outage."""
        # work_skew_threshold raised: three users over three shards
        # place unevenly, and this test is about the missing-shard
        # rule, not placement skew.
        testbed = deploy(slo=SloControlPlaneConfig(
            eval_period_s=5.0, fast_window_s=30.0, slow_window_s=60.0,
            for_s=10.0, work_skew_threshold=50.0))
        testbed.run(60.0)
        state = testbed.slo.evaluator.state()[SLO_WORK_SKEW]
        assert state["last_error"] == 0.0  # healthy first
        testbed.server.crash_shard(1)
        testbed.run(30.0)
        state = testbed.slo.evaluator.state()[SLO_WORK_SKEW]
        assert state["last_error"] == 1.0
        assert state["burn_fast"] > 0.0
        alert = testbed.slo.evaluator.alert(SLO_WORK_SKEW)
        assert alert.state in ("pending", "firing")

    def test_rebalance_clears_the_burn(self):
        testbed = deploy(slo=SloControlPlaneConfig(
            eval_period_s=5.0, fast_window_s=15.0, slow_window_s=30.0,
            for_s=5.0, work_skew_threshold=50.0))
        testbed.run(60.0)
        testbed.server.crash_shard(1)
        testbed.run(30.0)
        assert testbed.slo.evaluator.state()[SLO_WORK_SKEW]["last_error"] \
            == 1.0
        testbed.server.rebalance()
        testbed.run(60.0)
        state = testbed.slo.evaluator.state()[SLO_WORK_SKEW]
        assert state["last_error"] == 0.0
        assert testbed.server.slo_rollup()["missing"] == []


class TestClusterReportSurface:
    def test_cluster_report_has_no_slo_section_by_default(self):
        testbed = deploy()
        testbed.run(30.0)
        assert testbed.server.cluster_report()["slo"] is None

    def test_cluster_report_carries_the_slo_summary(self):
        testbed = deploy(slo=True)
        testbed.run(60.0)
        doc = testbed.server.cluster_report()["slo"]
        assert doc is not None
        assert SLO_WORK_SKEW in doc["slos"]
        assert doc["backoff_factor"] == 1.0
        assert isinstance(doc["firing"], list)

    def test_health_rollup_degrades_on_shard_crash(self):
        """The aggregated Healthcheck surfaced by ``cluster_report``'s
        sibling ``health()`` flips to DEGRADED, while per-shard docs
        and summed counters stay intact."""
        testbed = deploy()
        testbed.run(60.0)
        healthy = testbed.server.health()
        assert healthy["status"] == "ok"
        assert len(healthy["shards"]) == 3
        received_before = healthy["counters"]["records_received"]
        testbed.server.crash_shard(1)
        degraded = testbed.server.health()
        assert degraded["status"] == "degraded"
        # Records ingested before the crash stay counted in the rollup.
        assert degraded["counters"]["records_received"] >= received_before
        assert degraded["database"]["status"] is not None

    def test_monolith_has_no_rollup_and_registers_no_skew_slo(self):
        testbed = SenSocialTestbed(seed=7, durability=True, slo=True)
        assert not hasattr(testbed.server, "slo_rollup")
        assert SLO_WORK_SKEW not in testbed.slo.evaluator.state()
