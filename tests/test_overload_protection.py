"""Overload protection: bounded admission with watermark shedding,
the storage circuit breaker, and the dead-letter quarantine."""

import pytest

from repro.core.common import Granularity, ModalityType
from repro.core.common.records import StreamRecord
from repro.durability import (
    AdmissionController,
    CircuitBreaker,
    DeadLetterQuarantine,
    DurabilityConfig,
    IntakeItem,
)
from repro.scenarios.testbed import SenSocialTestbed


def item(record_id, priority=0, enqueued_at=0.0):
    return IntakeItem(record_id=record_id, payload={}, record=None,
                      reply_to=None, sent_at=None, trace=None,
                      priority=priority, enqueued_at=enqueued_at)


class TestAdmissionController:
    def test_bounded_by_capacity(self):
        admission = AdmissionController(4, high_watermark=1.0,
                                        low_watermark=1.0)
        victims = []
        for index in range(10):
            victims += admission.admit(item(f"r{index}"))
        assert len(admission) <= 4
        assert len(victims) == 6
        assert admission.max_depth <= 5

    def test_watermark_sheds_to_low(self):
        admission = AdmissionController(10, high_watermark=0.8,
                                        low_watermark=0.5)
        victims = []
        for index in range(8):
            victims += admission.admit(item(f"r{index}"))
        # Crossing 8 = high*10 sheds down to int(0.5*10) = 5.
        assert len(admission) == 5
        assert [victim.record_id for victim in victims] == ["r0", "r1", "r2"]

    def test_continuous_shed_before_osn(self):
        admission = AdmissionController(4, high_watermark=1.0,
                                        low_watermark=1.0)
        admission.admit(item("osn0", priority=1))
        admission.admit(item("c0", priority=0))
        admission.admit(item("osn1", priority=1))
        admission.admit(item("c1", priority=0))
        victims = admission.admit(item("c2", priority=0))
        # Hard overflow: the oldest continuous record goes, never an
        # OSN-triggered one while a continuous is available.
        assert [victim.record_id for victim in victims] == ["c0"]
        assert admission.pending("osn0") and admission.pending("osn1")

    def test_osn_shed_only_when_nothing_else(self):
        admission = AdmissionController(2, high_watermark=1.0,
                                        low_watermark=1.0)
        admission.admit(item("osn0", priority=1))
        admission.admit(item("osn1", priority=1))
        victims = admission.admit(item("osn2", priority=1))
        assert [victim.record_id for victim in victims] == ["osn0"]

    def test_pop_requeue_pending(self):
        admission = AdmissionController(4)
        admission.admit(item("r0"))
        admission.admit(item("r1"))
        popped = admission.pop()
        assert popped.record_id == "r0"
        assert not admission.pending("r0")
        admission.requeue(popped)
        assert admission.pending("r0")
        assert admission.pop().record_id == "r0"

    def test_wipe_clears_everything(self):
        admission = AdmissionController(4)
        admission.admit(item("r0"))
        admission.admit(item("r1"))
        wiped = admission.wipe()
        assert len(wiped) == 2
        assert len(admission) == 0
        assert not admission.pending("r0")


class TestCircuitBreaker:
    def test_trips_on_consecutive_failures(self):
        breaker = CircuitBreaker(trip_after=3, reset_s=10.0)
        for _ in range(2):
            breaker.record_failure(0.0)
        assert breaker.allow(0.0)
        breaker.record_failure(0.0)
        assert breaker.is_open
        assert not breaker.allow(5.0)
        assert breaker.trips == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(trip_after=3, reset_s=10.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(0.0)
        assert not breaker.is_open

    def test_half_open_then_closed_on_success(self):
        breaker = CircuitBreaker(trip_after=1, reset_s=10.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(5.0)
        assert breaker.allow(10.0)  # half-open probe
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(trip_after=5, reset_s=10.0)
        for _ in range(5):
            breaker.record_failure(0.0)
        assert breaker.allow(10.0)
        breaker.record_failure(10.0)  # the probe failed
        assert breaker.is_open
        assert not breaker.allow(15.0)
        assert breaker.trips == 2


class TestQuarantine:
    def test_bounded_with_evictions(self):
        quarantine = DeadLetterQuarantine(capacity=2)
        for index in range(3):
            quarantine.put(record_id=f"r{index}", reason="invalid",
                           at=float(index), payload={})
        assert len(quarantine) == 2
        assert quarantine.evictions == 1
        assert quarantine.total == 3
        assert quarantine.reasons() == {"invalid": 2}


def overload_testbed(seed=21, **config):
    defaults = dict(intake_capacity=8, high_watermark=0.75,
                    low_watermark=0.5, drain_interval_s=0.02)
    defaults.update(config)
    testbed = SenSocialTestbed(
        seed=seed, observability=True,
        durability=DurabilityConfig(**defaults))
    return testbed


def make_payload(testbed, index, *, osn=False, modality="accelerometer"):
    record = StreamRecord(
        stream_id="s1", user_id="alice", device_id="d1",
        modality=ModalityType.ACCELEROMETER,
        granularity=Granularity.CLASSIFIED,
        timestamp=testbed.world.now, value="walking",
        osn_action={"type": "post"} if osn else None)
    payload = record.to_dict()
    payload["modality"] = modality  # poison hook: an unknown modality
    payload["record_id"] = f"load-{index}"
    return payload


def submit(testbed, payload):
    testbed.server.durability.submit(
        payload, reply_to=None, sent_at=None, trace=None,
        record_id=payload["record_id"])


class TestOverloadIntegration:
    def test_queue_stays_bounded_and_sheds_continuous_first(self):
        testbed = overload_testbed()
        durability = testbed.server.durability
        # Storage is slow; a burst arrives faster than the drain pump.
        durability.medium.write_latency_s = 5.0
        for index in range(30):
            submit(testbed, make_payload(testbed, index,
                                         osn=(index % 3 == 0)))
        assert len(durability.admission) <= durability.config.intake_capacity
        assert durability.records_shed > 0
        # OSN-triggered records are kept preferentially: with 10 OSN
        # arrivals against capacity 8, the queue ends holding only OSN
        # records (every continuous was shed first; only hard overflow
        # among OSN-only contents ever sheds an OSN record).
        queue = list(durability.admission._queue)
        assert all(entry.priority == 1 for entry in queue)
        assert len(queue) == durability.config.intake_capacity
        # Shed drops carry (stage, reason) through the obs taxonomy.
        taxonomy = testbed.obs.tracer.drop_taxonomy()
        # (traces are None here, so check telemetry instead)
        counter = testbed.obs.telemetry.counter(
            "records_dropped", stage="admission", reason="shed")
        assert counter.value == durability.records_shed
        assert taxonomy == {}  # no traces attached in this synthetic run

    def test_backlog_drains_when_storage_recovers(self):
        testbed = overload_testbed()
        durability = testbed.server.durability
        durability.medium.write_latency_s = 5.0
        for index in range(6):
            submit(testbed, make_payload(testbed, index))
        durability.medium.write_latency_s = 0.0
        testbed.run(60.0)
        assert len(durability.admission) == 0
        assert testbed.server.database.records.count() >= 6 - \
            durability.records_shed

    def test_poison_record_is_quarantined(self):
        testbed = overload_testbed()
        durability = testbed.server.durability
        submit(testbed, make_payload(testbed, 0, modality="antigravity"))
        assert durability.records_quarantined == 1
        assert durability.quarantine.reasons() == {"invalid": 1}
        # The poison id is remembered: a retransmission dedups quietly.
        submit(testbed, make_payload(testbed, 0, modality="antigravity"))
        assert durability.records_quarantined == 1
        assert testbed.server.records_duplicate == 1

    def test_repeated_write_failures_quarantine_after_retries(self):
        testbed = overload_testbed(breaker_trip_after=100,
                                   max_apply_attempts=3)
        durability = testbed.server.durability
        durability.medium.inject_write_failures(1000)
        submit(testbed, make_payload(testbed, 0))
        testbed.run(30.0)
        assert durability.records_quarantined == 1
        assert durability.quarantine.reasons() == {
            "repeated_write_failure": 1}

    def test_breaker_trips_and_recovers(self):
        testbed = overload_testbed(breaker_trip_after=2, breaker_reset_s=5.0,
                                   max_apply_attempts=100)
        durability = testbed.server.durability
        durability.medium.inject_write_failures(2)
        submit(testbed, make_payload(testbed, 0))
        testbed.run(1.0)
        assert durability.breaker.trips >= 1
        testbed.run(30.0)  # half-open probe succeeds once faults burn off
        assert durability.breaker.state == "closed"
        assert testbed.server.database.records.count() == 1

    def test_pending_retransmission_not_acked_not_duplicated(self):
        testbed = overload_testbed()
        durability = testbed.server.durability
        durability.medium.write_latency_s = 5.0
        payload = make_payload(testbed, 0)
        submit(testbed, payload)
        acks_before = testbed.server.acks_sent
        submit(testbed, payload)  # retransmission while still queued
        assert durability.pending_duplicates == 1
        assert testbed.server.acks_sent == acks_before  # silent: no ack
        durability.medium.write_latency_s = 0.0
        testbed.run(30.0)
        assert testbed.server.database.records.count() == 1

    def test_health_degrades_under_pressure(self):
        testbed = overload_testbed()
        durability = testbed.server.durability
        assert durability.health()["status"] == "ok"
        durability.medium.write_latency_s = 5.0
        submit(testbed, make_payload(testbed, 0))
        assert durability.health()["status"] == "degraded"
        testbed.run(60.0)
        assert durability.health()["status"] == "ok"


class TestOverloadWithTraces:
    def test_shed_drops_reach_obs_report(self):
        """End-to-end: real traced records shed under load carry
        (stage=admission, reason=shed) into the ObsReport taxonomy."""
        testbed = overload_testbed(seed=5, intake_capacity=2,
                                   high_watermark=0.75, low_watermark=0.5)
        node = testbed.add_user("alice", "Paris")
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True,
                                   settings={"duty_cycle_s": 5.0})
        testbed.server.durability.medium.write_latency_s = 120.0
        testbed.run(600.0)
        durability = testbed.server.durability
        assert durability.records_shed > 0
        taxonomy = testbed.obs.tracer.drop_taxonomy()
        assert taxonomy.get(("admission", "shed"), 0) > 0
        assert testbed.obs.tracer.terminal_conflicts == 0
