"""Unit tests for the document-store query engine."""

import pytest

from repro.docstore import QueryError, matches


DOC = {
    "name": "alice",
    "age": 30,
    "home": {"city": "Paris", "zip": "75001"},
    "tags": ["friend", "colleague"],
    "scores": [1, 5, 9],
    "active": True,
}


class TestEquality:
    def test_implicit_eq(self):
        assert matches(DOC, {"name": "alice"})
        assert not matches(DOC, {"name": "bob"})

    def test_explicit_eq(self):
        assert matches(DOC, {"age": {"$eq": 30}})

    def test_dot_path(self):
        assert matches(DOC, {"home.city": "Paris"})
        assert not matches(DOC, {"home.city": "Lyon"})

    def test_missing_field_equals_none(self):
        assert matches(DOC, {"ghost": None})
        assert not matches(DOC, {"ghost": 1})

    def test_array_contains_scalar(self):
        assert matches(DOC, {"tags": "friend"})
        assert not matches(DOC, {"tags": "enemy"})

    def test_array_full_equality(self):
        assert matches(DOC, {"tags": ["friend", "colleague"]})

    def test_ne(self):
        assert matches(DOC, {"name": {"$ne": "bob"}})
        assert not matches(DOC, {"name": {"$ne": "alice"}})


class TestComparisons:
    @pytest.mark.parametrize("query,expected", [
        ({"age": {"$gt": 29}}, True),
        ({"age": {"$gt": 30}}, False),
        ({"age": {"$gte": 30}}, True),
        ({"age": {"$lt": 31}}, True),
        ({"age": {"$lte": 29}}, False),
        ({"age": {"$gt": 25, "$lt": 35}}, True),
        ({"age": {"$gt": 25, "$lt": 28}}, False),
    ])
    def test_numeric_comparisons(self, query, expected):
        assert matches(DOC, query) is expected

    def test_array_any_element_comparison(self):
        assert matches(DOC, {"scores": {"$gt": 8}})
        assert not matches(DOC, {"scores": {"$gt": 9}})

    def test_string_comparison(self):
        assert matches(DOC, {"name": {"$lt": "bob"}})

    def test_incomparable_types_never_match(self):
        assert not matches(DOC, {"name": {"$gt": 5}})

    def test_missing_field_fails_comparisons(self):
        assert not matches(DOC, {"ghost": {"$gt": 0}})


class TestSetMembership:
    def test_in(self):
        assert matches(DOC, {"name": {"$in": ["alice", "bob"]}})
        assert not matches(DOC, {"name": {"$in": ["bob"]}})

    def test_in_with_array_field(self):
        assert matches(DOC, {"tags": {"$in": ["friend", "x"]}})

    def test_nin(self):
        assert matches(DOC, {"name": {"$nin": ["bob"]}})
        assert not matches(DOC, {"name": {"$nin": ["alice"]}})

    def test_in_requires_list(self):
        with pytest.raises(QueryError):
            matches(DOC, {"name": {"$in": "alice"}})


class TestStructural:
    def test_exists(self):
        assert matches(DOC, {"age": {"$exists": True}})
        assert matches(DOC, {"ghost": {"$exists": False}})
        assert not matches(DOC, {"ghost": {"$exists": True}})

    def test_regex(self):
        assert matches(DOC, {"name": {"$regex": "^ali"}})
        assert not matches(DOC, {"name": {"$regex": "^bob"}})

    def test_regex_on_non_string_fails(self):
        assert not matches(DOC, {"age": {"$regex": "3"}})

    def test_size(self):
        assert matches(DOC, {"tags": {"$size": 2}})
        assert not matches(DOC, {"tags": {"$size": 3}})

    def test_elem_match_scalar(self):
        assert matches(DOC, {"scores": {"$elemMatch": {"$gt": 4, "$lt": 6}}})
        assert not matches(DOC, {"scores": {"$elemMatch": {"$gt": 9}}})

    def test_not(self):
        assert matches(DOC, {"age": {"$not": {"$gt": 40}}})
        assert not matches(DOC, {"age": {"$not": {"$gt": 20}}})


class TestLogical:
    def test_top_level_keys_are_anded(self):
        assert matches(DOC, {"name": "alice", "age": 30})
        assert not matches(DOC, {"name": "alice", "age": 31})

    def test_and(self):
        assert matches(DOC, {"$and": [{"name": "alice"}, {"age": {"$gte": 30}}]})

    def test_or(self):
        assert matches(DOC, {"$or": [{"name": "bob"}, {"age": 30}]})
        assert not matches(DOC, {"$or": [{"name": "bob"}, {"age": 31}]})

    def test_nor(self):
        assert matches(DOC, {"$nor": [{"name": "bob"}, {"age": 99}]})
        assert not matches(DOC, {"$nor": [{"name": "alice"}]})

    def test_nested_logical(self):
        query = {"$or": [
            {"$and": [{"home.city": "Paris"}, {"age": {"$lt": 40}}]},
            {"name": "bob"},
        ]}
        assert matches(DOC, query)

    def test_unknown_top_level_operator_rejected(self):
        with pytest.raises(QueryError):
            matches(DOC, {"$xor": []})

    def test_unknown_field_operator_rejected(self):
        with pytest.raises(QueryError):
            matches(DOC, {"age": {"$wat": 1}})

    def test_non_dict_query_rejected(self):
        with pytest.raises(QueryError):
            matches(DOC, ["not", "a", "query"])


class TestGeoQueries:
    PARIS = [2.3522, 48.8566]
    BORDEAUX = [-0.5792, 44.8378]
    USER = {"loc": [2.36, 48.86]}

    def test_near_within_distance(self):
        assert matches(self.USER, {"loc": {"$near": {
            "$point": self.PARIS, "$maxDistance": 5}}})

    def test_near_outside_distance(self):
        assert not matches(self.USER, {"loc": {"$near": {
            "$point": self.BORDEAUX, "$maxDistance": 5}}})

    def test_within_box(self):
        assert matches(self.USER, {"loc": {"$within": {
            "$box": [[2.0, 48.0], [3.0, 49.0]]}}})
        assert not matches(self.USER, {"loc": {"$within": {
            "$box": [[-1.0, 44.0], [0.0, 45.0]]}}})

    def test_within_center(self):
        assert matches(self.USER, {"loc": {"$within": {
            "$center": [self.PARIS, 10]}}})

    def test_near_on_missing_field(self):
        assert not matches({}, {"loc": {"$near": {
            "$point": self.PARIS, "$maxDistance": 5}}})

    def test_near_requires_point(self):
        with pytest.raises(QueryError):
            matches(self.USER, {"loc": {"$near": {"$maxDistance": 5}}})

    def test_within_requires_region(self):
        with pytest.raises(QueryError):
            matches(self.USER, {"loc": {"$within": {}}})
