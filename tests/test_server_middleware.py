"""Tests for the server middleware half: storage, cross-user filters,
aggregators, multicast streams and trigger routing."""

import pytest

from repro.core.common import (
    Condition,
    Filter,
    Granularity,
    ModalityType,
    ModalityValue,
    Operator,
)
from repro.core.common.errors import MiddlewareError
from repro.core.server import MulticastQuery, ServerDatabase
from repro.device import ActivityState
from repro.osn.actions import ActionType, OsnAction


class TestServerDatabase:
    @pytest.fixture
    def db(self):
        db = ServerDatabase()
        for index, user in enumerate(["a", "b", "c"]):
            db.register_device(user, f"d{index}", ["wifi"])
        return db

    def test_registration_round_trip(self, db):
        assert db.device_of("a") == "d0"
        assert db.user_ids() == ["a", "b", "c"]
        assert db.is_registered("a")
        assert not db.is_registered("ghost")

    def test_reregistration_updates_device(self, db):
        db.register_device("a", "d9", ["gps"])
        assert db.device_of("a") == "d9"
        assert db.users.count() == 3

    def test_friend_management(self, db):
        db.add_friend("a", "b")
        assert db.friends_of("a") == ["b"]
        assert db.friends_of("b") == ["a"]
        db.remove_friend("a", "b")
        assert db.friends_of("a") == []

    def test_location_queries(self, db):
        db.update_location("a", 2.35, 48.85, "Paris", 10.0)
        db.update_location("b", 2.36, 48.86, "Paris", 11.0)
        db.update_location("c", -0.58, 44.84, "Bordeaux", 12.0)
        assert db.users_in_place("Paris") == ["a", "b"]
        assert db.users_near([2.35, 48.85], 10.0) == ["a", "b"]
        assert db.users_near([-0.58, 44.84], 5.0) == ["c"]

    def test_action_history(self, db):
        action = OsnAction(user_id="a", type=ActionType.POST, created_at=5.0)
        db.store_action(action)
        assert len(db.actions_of("a")) == 1


class TestCrossUserFiltering:
    def test_stream_conditioned_on_other_users_activity(self, testbed):
        """§3.2: report a user's data only while another user walks."""
        alice = testbed.add_user("alice", "Paris")
        bob = testbed.add_user("bob", "Paris")
        alice.mobility.stop()
        bob.mobility.stop()
        bob.phone.environment.activity = ActivityState.STILL

        # Bob's activity must be observed server-side: a classified
        # accelerometer stream from bob feeds the server context.
        testbed.server.create_stream("bob", ModalityType.ACCELEROMETER,
                                     Granularity.CLASSIFIED)
        stream = testbed.server.create_stream(
            "alice", ModalityType.WIFI, Granularity.RAW,
            stream_filter=Filter([Condition(
                ModalityType.PHYSICAL_ACTIVITY, Operator.EQUALS,
                ModalityValue.WALKING, user_id="bob")]))
        records = []
        stream.add_listener(records.append)
        testbed.run(300.0)
        assert records == []
        assert stream.records_suppressed > 0
        bob.phone.environment.activity = ActivityState.WALKING
        testbed.run(300.0)
        assert len(records) > 0

    def test_cross_user_osn_condition(self, testbed):
        """Report alice's context when bob acts on Facebook."""
        alice = testbed.add_user("alice", "Paris")
        testbed.add_user("bob", "Paris")
        stream = testbed.server.create_stream(
            "alice", ModalityType.WIFI, Granularity.RAW,
            stream_filter=Filter([Condition(
                ModalityType.FACEBOOK_ACTIVITY, Operator.EQUALS,
                ModalityValue.ACTIVE, user_id="bob")]))
        records = []
        stream.add_listener(records.append)
        testbed.run(200.0)
        assert records == []
        testbed.facebook.perform_action("bob", "post", content="ping")
        testbed.run(200.0)
        assert len(records) >= 1
        assert records[0].user_id == "alice"
        assert records[0].osn_action["user_id"] == "bob"


class TestAggregators:
    def test_aggregator_multiplexes_streams(self, testbed):
        testbed.add_user("alice", "Paris")
        testbed.add_user("bob", "Bordeaux")
        streams = [
            testbed.server.create_stream("alice", ModalityType.MICROPHONE,
                                         Granularity.CLASSIFIED),
            testbed.server.create_stream("bob", ModalityType.MICROPHONE,
                                         Granularity.CLASSIFIED),
        ]
        aggregator = testbed.server.create_aggregator("join", streams)
        records = []
        aggregator.add_listener(records.append)
        testbed.run(130.0)
        users = {record.user_id for record in records}
        assert users == {"alice", "bob"}
        assert aggregator.records_out == len(records)

    def test_aggregator_value_filter(self, testbed):
        alice = testbed.add_user("alice", "Paris")
        alice.mobility.stop()
        alice.phone.environment.activity = ActivityState.STILL
        stream = testbed.server.create_stream(
            "alice", ModalityType.ACCELEROMETER, Granularity.CLASSIFIED)
        aggregator = testbed.server.create_aggregator("filtered", [stream])
        aggregator.set_filter(Filter([Condition(
            ModalityType.PHYSICAL_ACTIVITY, Operator.EQUALS, "running")]))
        records = []
        aggregator.add_listener(records.append)
        testbed.run(200.0)
        assert records == []  # alice is still, aggregate filter drops all

    def test_remove_stream_from_aggregator(self, testbed):
        testbed.add_user("alice", "Paris")
        stream = testbed.server.create_stream(
            "alice", ModalityType.MICROPHONE, Granularity.CLASSIFIED)
        aggregator = testbed.server.create_aggregator("agg", [stream])
        aggregator.remove_stream(stream)
        records = []
        aggregator.add_listener(records.append)
        testbed.run(130.0)
        assert records == []


class TestMulticast:
    def test_query_requires_a_clause(self):
        with pytest.raises(MiddlewareError):
            MulticastQuery()

    def test_osn_multicast_selects_friends(self, testbed):
        for user, city in [("a", "Paris"), ("b", "Paris"), ("c", "Bordeaux")]:
            testbed.add_user(user, city)
        testbed.befriend("a", "b")
        multicast = testbed.server.create_multicast_stream(
            ModalityType.WIFI, Granularity.RAW,
            MulticastQuery(friends_of="a"))
        assert multicast.members() == ["b"]

    def test_two_hop_friend_selection(self, testbed):
        for user in ["a", "b", "c"]:
            testbed.add_user(user, "Paris")
        testbed.befriend("a", "b")
        testbed.befriend("b", "c")
        multicast = testbed.server.create_multicast_stream(
            ModalityType.WIFI, Granularity.RAW,
            MulticastQuery(friends_of="a", hops=2))
        assert multicast.members() == ["b", "c"]

    def test_geo_multicast_follows_movement(self, testbed):
        alice = testbed.add_user("alice", "Paris")
        bob = testbed.add_user("bob", "Bordeaux")
        testbed.run(400.0)  # location updates flow (300 s period)
        multicast = testbed.server.create_multicast_stream(
            ModalityType.BLUETOOTH, Granularity.CLASSIFIED,
            MulticastQuery(place="Paris"))
        assert multicast.members() == ["alice"]
        bob.mobility.travel_to("Paris", duration_s=1800.0)
        testbed.run(3000.0)
        assert multicast.members() == ["alice", "bob"]

    def test_multicast_filter_distribution(self, testbed):
        for user in ["a", "b"]:
            testbed.add_user(user, "Paris")
        testbed.befriend("a", "b")
        multicast = testbed.server.create_multicast_stream(
            ModalityType.LOCATION, Granularity.RAW,
            MulticastQuery(friends_of="a"))
        multicast.set_filter(Filter([Condition(
            ModalityType.PHYSICAL_ACTIVITY, Operator.EQUALS, "walking")]))
        testbed.run(3.0)
        node_b = testbed.node("b")
        member_stream = multicast.member_stream("b")
        mobile_stream = node_b.manager.streams[member_stream.stream_id]
        assert any(c.modality is ModalityType.PHYSICAL_ACTIVITY
                   for c in mobile_stream.config.filter.conditions)

    def test_multicast_listener_covers_future_members(self, testbed):
        testbed.add_user("a", "Paris")
        testbed.run(400.0)
        multicast = testbed.server.create_multicast_stream(
            ModalityType.MICROPHONE, Granularity.CLASSIFIED,
            MulticastQuery(place="Paris"))
        records = []
        multicast.add_listener(records.append)
        late = testbed.add_user("late", "Paris")
        testbed.run(400.0)  # late's location arrives; refresh adds them
        assert "late" in multicast.members()
        testbed.run(130.0)
        assert any(record.user_id == "late" for record in records)

    def test_destroy_removes_member_streams(self, testbed):
        node = testbed.add_user("a", "Paris")
        testbed.run(400.0)
        multicast = testbed.server.create_multicast_stream(
            ModalityType.WIFI, Granularity.RAW, MulticastQuery(place="Paris"))
        member = multicast.member_stream("a")
        testbed.run(3.0)
        assert member.stream_id in node.manager.streams
        multicast.destroy()
        testbed.run(3.0)
        assert member.stream_id not in node.manager.streams
        assert multicast not in testbed.server.multicasts

    def test_explicit_user_list_query(self, testbed):
        for user in ["a", "b", "c"]:
            testbed.add_user(user, "Paris")
        multicast = testbed.server.create_multicast_stream(
            ModalityType.WIFI, Granularity.RAW,
            MulticastQuery(user_ids=("a", "c")))
        assert multicast.members() == ["a", "c"]


class TestTriggerRouting:
    def test_friend_action_updates_database(self, testbed):
        testbed.add_user("a", "Paris")
        testbed.add_user("b", "Paris")
        testbed.facebook.perform_action("a", ActionType.FRIEND_ADD,
                                        payload={"friend_id": "b"})
        testbed.run(120.0)
        assert testbed.server.database.friends_of("a") == ["b"]

    def test_action_listener_notified(self, testbed):
        testbed.add_user("a", "Paris")
        seen = []
        testbed.server.add_action_listener(lambda action: seen.append(action))
        testbed.facebook.perform_action("a", "post", content="x")
        testbed.run(120.0)
        assert len(seen) == 1

    def test_actions_persisted(self, testbed):
        testbed.add_user("a", "Paris")
        testbed.facebook.perform_action("a", "comment", content="y")
        testbed.run(120.0)
        assert len(testbed.server.database.actions_of("a")) == 1

    def test_twitter_plugin_path(self, testbed):
        testbed.add_user("a", "Paris", platforms=("facebook", "twitter"))
        seen = []
        testbed.server.add_action_listener(seen.append)
        testbed.twitter.perform_action("a", ActionType.TWEET, content="tw")
        testbed.run(30.0)  # poll period is 10 s — far below Facebook's delay
        assert [action.platform for action in seen] == ["twitter"]
