"""Server crash/restart recovery: a durable server loses nothing and
ingests exactly once across a mid-run crash; an amnesiac one forgets.

The crash model: both server endpoints partition (in-flight messages
drop, QoS layers retry), the volatile intake queue is wiped, OSN
actions delivered while down are lost.  On restart a durable server
rebuilds its database and dedup window from the storage medium's
snapshot + journal replay; without durability the restart wipes
registrations, friendships, locations and records — the contrast these
tests pin.
"""

from repro.core.common import Granularity, ModalityType
from repro.faults import ChaosController, FaultPlan
from repro.scenarios.testbed import SenSocialTestbed

USERS = ("alice", "bob")
HORIZON_S = 900.0
DRAIN_S = 240.0
CRASH_AT = 400.0
DOWNTIME_S = 60.0


def run_crash_scenario(seed: int, *, durability, observability=True):
    testbed = SenSocialTestbed(seed=seed, observability=observability,
                               durability=durability)
    delivered = []
    testbed.server.register_listener(
        lambda record: delivered.append((record.user_id, record.timestamp,
                                         record.value)))
    for user_id in USERS:
        node = testbed.add_user(user_id, "Paris")
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
    controller = ChaosController(testbed)
    controller.apply(FaultPlan("server-crash").server_crash(
        at=CRASH_AT, downtime=DOWNTIME_S))
    testbed.run(HORIZON_S)
    testbed.run(DRAIN_S)  # quiet tail: outboxes retransmit and drain
    return testbed, controller, delivered


class TestDurableRecovery:
    def test_zero_loss_exactly_once(self):
        testbed, controller, delivered = run_crash_scenario(3,
                                                            durability=True)
        report = controller.report()
        # The crash actually happened and cost something on the wire.
        assert testbed.server.crashes == 1
        assert testbed.server.restarts == 1
        assert report.network["partition_drops"] > 0
        # ...and yet: zero loss, exactly-once.
        assert report.records_lost == 0
        assert report.records_queued == 0
        assert report.records_ingested == report.records_enqueued
        assert len(delivered) == len(set(delivered))

    def test_recovery_replayed_the_journal(self):
        testbed, _, _ = run_crash_scenario(3, durability=True)
        durability = testbed.durability
        assert durability.recoveries == 1
        assert durability.replayed_entries > 0 or durability.medium.has_snapshot
        # finish_recovery folded the replayed tail into a checkpoint.
        assert durability.medium.checkpoints >= 1

    def test_terminal_accounting_is_clean(self):
        """Every trace ends in exactly one terminal — the retransmitted
        records around the crash never double-deliver or double-drop."""
        testbed, _, _ = run_crash_scenario(3, durability=True)
        tracer = testbed.obs.tracer
        assert tracer.terminal_conflicts == 0
        counts = tracer.terminal_counts()
        assert counts["in_flight"] == 0
        assert counts["delivered"] == testbed.server.records_received

    def test_registrations_survive(self):
        testbed, _, _ = run_crash_scenario(4, durability=True)
        assert testbed.server.registered_users() == sorted(USERS)
        for user_id in USERS:
            assert testbed.server.database.device_of(user_id) is not None

    def test_replay_spans_emitted(self):
        testbed, _, _ = run_crash_scenario(3, durability=True)
        replayed = [state for state in testbed.obs.tracer.traces()
                    if "replay" in state.stages()]
        # Records ingested before the crash and still in the journal
        # tail get a replay span on recovery.
        assert testbed.durability.replayed_entries == 0 or replayed

    def test_health_reports_crash_counters(self):
        testbed, _, _ = run_crash_scenario(3, durability=True)
        health = testbed.server.health()
        assert health["counters"]["crashes"] == 1
        assert health["counters"]["restarts"] == 1
        assert health["durability"]["counters"]["recoveries"] == 1
        assert health["database"]["counters"]["documents"] > 0


class TestAmnesiacContrast:
    def test_without_durability_registrations_are_lost(self):
        testbed, _, _ = run_crash_scenario(3, durability=False)
        assert testbed.server.crashes == 1
        # The database restarted empty; devices do not re-register
        # (their MQTT session already exists), so users are gone.
        assert testbed.server.registered_users() == []

    def test_without_durability_precrash_records_are_lost(self):
        testbed, _, _ = run_crash_scenario(3, durability=False)
        stored = testbed.server.database.records.count()
        received = testbed.server.records_received
        # Everything ingested before the crash vanished from the store;
        # only post-restart arrivals remain.
        assert stored < received

    def test_durable_store_keeps_everything(self):
        testbed, _, _ = run_crash_scenario(3, durability=True)
        assert (testbed.server.database.records.count()
                == testbed.server.records_received)


class TestCrashWhileDown:
    def test_server_down_status_and_lost_actions(self):
        testbed = SenSocialTestbed(seed=9, durability=True)
        node = testbed.add_user("alice", "Paris")
        testbed.server.crash()
        assert testbed.server.health()["status"] == "down"
        # An OSN action captured while the process is down is lost
        # (the plug-in hands it over synchronously — no retry path).
        testbed.facebook.perform_action("alice", "post", content="hello?")
        testbed.run(600.0)  # let the webhook's notification delay elapse
        assert testbed.server.actions_lost_crashed >= 1
        testbed.server.restart()
        testbed.run(120.0)  # MQTT keepalive/reconnect settles
        assert testbed.server.health()["status"] != "down"

    def test_crash_and_restart_are_idempotent(self):
        testbed = SenSocialTestbed(seed=9, durability=True)
        testbed.server.crash()
        testbed.server.crash()
        assert testbed.server.crashes == 1
        testbed.server.restart()
        testbed.server.restart()
        assert testbed.server.restarts == 1


class TestDeterminism:
    def test_same_seed_same_crash_same_run(self):
        first = run_crash_scenario(5, durability=True)
        second = run_crash_scenario(5, durability=True)

        def signature(testbed, delivered):
            return (testbed.world.now, testbed.server.records_received,
                    testbed.network.messages_sent, tuple(delivered))

        assert signature(first[0], first[2]) == signature(second[0],
                                                          second[2])
