"""Property-based tests for the scheduler, sentiment and topics."""

import string

from hypothesis import given, settings, strategies as st

from repro.osn import SentimentAnalyzer, TopicClassifier
from repro.simkit import Scheduler

delays = st.lists(st.floats(min_value=0.0, max_value=1000.0),
                  min_size=1, max_size=40)


class TestSchedulerProperties:
    @given(delays)
    def test_events_fire_in_nondecreasing_time_order(self, delay_list):
        scheduler = Scheduler()
        fired = []
        for delay in delay_list:
            scheduler.schedule(delay, lambda: fired.append(scheduler.now))
        scheduler.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delay_list)

    @given(delays)
    def test_run_until_never_overshoots(self, delay_list):
        scheduler = Scheduler()
        observed = []
        for delay in delay_list:
            scheduler.schedule(delay, lambda: observed.append(scheduler.now))
        horizon = 500.0
        scheduler.run_until(horizon)
        assert all(time <= horizon for time in observed)
        assert scheduler.now == horizon

    @given(st.floats(min_value=0.1, max_value=50.0),
           st.floats(min_value=1.0, max_value=500.0))
    def test_periodic_fire_count_matches_interval(self, interval, horizon):
        scheduler = Scheduler()
        task = scheduler.every(interval, lambda: None, delay=interval)
        scheduler.run_until(horizon)
        expected = int(horizon / interval)
        assert abs(task.fire_count - expected) <= 1

    @given(delays, st.integers(min_value=0, max_value=39))
    def test_cancelled_events_never_fire(self, delay_list, cancel_index):
        scheduler = Scheduler()
        fired = []
        handles = [scheduler.schedule(delay, fired.append, index)
                   for index, delay in enumerate(delay_list)]
        cancel_index = cancel_index % len(handles)
        handles[cancel_index].cancel()
        scheduler.run()
        assert cancel_index not in fired
        assert len(fired) == len(delay_list) - 1


words = st.text(string.ascii_lowercase + " ", min_size=0, max_size=60)


class TestSentimentProperties:
    @given(words)
    def test_score_always_bounded(self, text):
        score = SentimentAnalyzer().score(text)
        assert -1.0 <= score <= 1.0

    @given(words)
    def test_label_consistent_with_score(self, text):
        analyzer = SentimentAnalyzer()
        score = analyzer.score(text)
        label = analyzer.label(text).value
        if score > 0.1:
            assert label == "positive"
        elif score < -0.1:
            assert label == "negative"
        else:
            assert label == "neutral"

    @given(words, words)
    def test_concatenation_of_equal_texts_keeps_score(self, a, b):
        analyzer = SentimentAnalyzer()
        doubled = analyzer.score(f"{a} {a}")
        single = analyzer.score(a)
        # Averaging over hits: duplicating the text never changes the
        # average valence.
        assert abs(doubled - single) < 1e-9


class TestTopicProperties:
    @settings(max_examples=50)
    @given(words)
    def test_scores_sorted_and_positive(self, text):
        scores = TopicClassifier().scores(text)
        values = [item.score for item in scores]
        assert values == sorted(values, reverse=True)
        assert all(value > 0 for value in values)

    @settings(max_examples=50)
    @given(words)
    def test_classify_agrees_with_best_score(self, text):
        classifier = TopicClassifier()
        scores = classifier.scores(text)
        best = classifier.classify(text)
        if scores:
            assert best == scores[0].topic
        else:
            assert best is None
