"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.simkit import Scheduler, SchedulingError, World


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Scheduler().now == 0.0

    def test_clock_starts_at_custom_time(self):
        assert Scheduler(start_time=100.0).now == 100.0

    def test_event_fires_at_scheduled_time(self):
        scheduler = Scheduler()
        fired_at = []
        scheduler.schedule(5.0, lambda: fired_at.append(scheduler.now))
        scheduler.run()
        assert fired_at == [5.0]

    def test_events_fire_in_time_order(self):
        scheduler = Scheduler()
        order = []
        scheduler.schedule(3.0, order.append, "c")
        scheduler.schedule(1.0, order.append, "a")
        scheduler.schedule(2.0, order.append, "b")
        scheduler.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_scheduling_order(self):
        scheduler = Scheduler()
        order = []
        for label in ["first", "second", "third"]:
            scheduler.schedule(1.0, order.append, label)
        scheduler.run()
        assert order == ["first", "second", "third"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulingError):
            Scheduler().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        scheduler = Scheduler()
        scheduler.schedule(2.0, lambda: None)
        scheduler.run()
        with pytest.raises(SchedulingError):
            scheduler.schedule_at(1.0, lambda: None)

    def test_events_can_schedule_events(self):
        scheduler = Scheduler()
        seen = []

        def chain(depth):
            seen.append(scheduler.now)
            if depth > 0:
                scheduler.schedule(1.0, chain, depth - 1)

        scheduler.schedule(0.0, chain, 3)
        scheduler.run()
        assert seen == [0.0, 1.0, 2.0, 3.0]

    def test_run_until_advances_clock_even_when_idle(self):
        scheduler = Scheduler()
        scheduler.run_until(50.0)
        assert scheduler.now == 50.0

    def test_run_until_does_not_fire_later_events(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule(10.0, fired.append, True)
        scheduler.run_until(5.0)
        assert fired == []
        scheduler.run_until(10.0)
        assert fired == [True]

    def test_run_until_backwards_rejected(self):
        scheduler = Scheduler()
        scheduler.run_until(10.0)
        with pytest.raises(SchedulingError):
            scheduler.run_until(5.0)

    def test_run_for_is_relative(self):
        scheduler = Scheduler()
        scheduler.run_for(3.0)
        scheduler.run_for(4.0)
        assert scheduler.now == 7.0

    def test_run_caps_events(self):
        scheduler = Scheduler()
        for _ in range(10):
            scheduler.schedule(1.0, lambda: None)
        assert scheduler.run(max_events=4) == 4
        assert scheduler.pending_count() == 6

    def test_events_processed_counter(self):
        scheduler = Scheduler()
        scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(2.0, lambda: None)
        scheduler.run()
        assert scheduler.events_processed == 2


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        scheduler = Scheduler()
        fired = []
        handle = scheduler.schedule(1.0, fired.append, True)
        handle.cancel()
        scheduler.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        scheduler = Scheduler()
        handle = scheduler.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert scheduler.pending_count() == 0

    def test_pending_count_excludes_cancelled(self):
        scheduler = Scheduler()
        keep = scheduler.schedule(1.0, lambda: None)
        drop = scheduler.schedule(2.0, lambda: None)
        drop.cancel()
        assert scheduler.pending_count() == 1
        keep.cancel()
        assert scheduler.pending_count() == 0

    def test_peek_time_skips_cancelled(self):
        scheduler = Scheduler()
        early = scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(5.0, lambda: None)
        early.cancel()
        assert scheduler.peek_time() == 5.0


class TestPeriodicTasks:
    def test_periodic_fires_repeatedly(self):
        scheduler = Scheduler()
        times = []
        scheduler.every(10.0, lambda: times.append(scheduler.now))
        scheduler.run_until(35.0)
        assert times == [0.0, 10.0, 20.0, 30.0]

    def test_periodic_with_delay(self):
        scheduler = Scheduler()
        times = []
        scheduler.every(10.0, lambda: times.append(scheduler.now), delay=5.0)
        scheduler.run_until(30.0)
        assert times == [5.0, 15.0, 25.0]

    def test_periodic_cancel_stops_firing(self):
        scheduler = Scheduler()
        times = []
        task = scheduler.every(10.0, lambda: times.append(scheduler.now))
        scheduler.run_until(15.0)
        task.cancel()
        scheduler.run_until(100.0)
        assert times == [0.0, 10.0]

    def test_periodic_cancel_from_inside_callback(self):
        scheduler = Scheduler()
        count = []

        def fire():
            count.append(1)
            if len(count) == 3:
                task.cancel()

        task = scheduler.every(1.0, fire)
        scheduler.run_until(100.0)
        assert len(count) == 3

    def test_fire_count(self):
        scheduler = Scheduler()
        task = scheduler.every(1.0, lambda: None, delay=1.0)
        scheduler.run_until(5.0)
        assert task.fire_count == 5

    def test_zero_interval_rejected(self):
        import pytest
        from repro.simkit.scheduler import PeriodicTask
        with pytest.raises(SchedulingError):
            PeriodicTask(Scheduler(), 0.0, lambda: None, ())


class TestWorld:
    def test_component_registry_round_trip(self):
        world = World()
        component = object()
        world.attach("thing", component)
        assert world.component("thing") is component
        assert world.has_component("thing")

    def test_duplicate_attach_rejected(self):
        from repro.simkit import SimulationError
        world = World()
        world.attach("thing", object())
        with pytest.raises(SimulationError):
            world.attach("thing", object())

    def test_missing_component_rejected(self):
        from repro.simkit import SimulationError
        with pytest.raises(SimulationError):
            World().component("ghost")

    def test_detach_removes(self):
        world = World()
        world.attach("thing", object())
        world.detach("thing")
        assert not world.has_component("thing")

    def test_rng_streams_are_independent_of_creation_order(self):
        world_a = World(seed=9)
        first = world_a.rng("alpha").random()
        world_b = World(seed=9)
        world_b.rng("beta").random()  # extra consumer must not perturb alpha
        assert world_b.rng("alpha").random() == first

    def test_rng_streams_differ_by_name(self):
        world = World(seed=9)
        assert world.rng("a").random() != world.rng("b").random()

    def test_rng_streams_differ_by_seed(self):
        assert World(seed=1).rng("x").random() != World(seed=2).rng("x").random()

    def test_fork_produces_independent_streams(self):
        world = World(seed=5)
        forked = world.randoms.fork("child")
        assert forked.stream("x").random() != world.rng("x").random()
