"""Cross-cutting behaviours: privacy vs remote streams, compound
filters, repeated server pushes, and multi-device interplay."""

import pytest

from repro.core.common import (
    Condition,
    Filter,
    Granularity,
    ModalityType,
    ModalityValue,
    Operator,
)
from repro.core.mobile import PrivacyPolicy, StreamState
from repro.device import ActivityState, AudioState


class TestPrivacyVsRemoteStreams:
    def test_user_policy_silences_server_created_stream(self, testbed):
        """The user's privacy descriptor wins over the server: a
        server-created stream that violates it pauses, and no data
        leaves the phone."""
        node = testbed.add_user("alice", "Paris")
        node.manager.privacy.set_policy(
            PrivacyPolicy(ModalityType.MICROPHONE, allow_raw=False,
                          allow_classified=False))
        server_stream = testbed.server.create_stream(
            "alice", ModalityType.MICROPHONE, Granularity.CLASSIFIED)
        records = []
        server_stream.add_listener(records.append)
        testbed.run(300.0)
        assert records == []
        mobile_stream = node.manager.streams[server_stream.stream_id]
        assert mobile_stream.state is StreamState.PAUSED_PRIVACY

    def test_policy_relaxation_resumes_server_stream(self, testbed):
        node = testbed.add_user("alice", "Paris")
        node.manager.privacy.set_policy(
            PrivacyPolicy(ModalityType.MICROPHONE, allow_classified=False,
                          allow_raw=False))
        server_stream = testbed.server.create_stream(
            "alice", ModalityType.MICROPHONE, Granularity.CLASSIFIED)
        records = []
        server_stream.add_listener(records.append)
        testbed.run(120.0)
        node.manager.privacy.remove_policy(ModalityType.MICROPHONE)
        testbed.run(130.0)
        assert len(records) > 0


class TestCompoundFilters:
    def test_activity_and_audio_conditions_both_required(self, testbed):
        node = testbed.add_user("alice", "Paris")
        node.mobility.stop()
        stream = node.manager.create_stream(
            ModalityType.WIFI, Granularity.RAW,
            stream_filter=Filter([
                Condition(ModalityType.PHYSICAL_ACTIVITY, Operator.EQUALS,
                          ModalityValue.WALKING),
                Condition(ModalityType.AUDIO_ENVIRONMENT, Operator.EQUALS,
                          ModalityValue.NOT_SILENT),
            ]))
        records = []
        stream.register_listener(records.append)
        # Walking but silent: the audio condition blocks sampling.
        node.phone.environment.activity = ActivityState.WALKING
        node.phone.environment.audio = AudioState.SILENT
        testbed.run(300.0)
        assert records == []
        # Both satisfied: records flow.
        node.phone.environment.audio = AudioState.NOISY
        testbed.run(300.0)
        assert len(records) > 0
        # Both backing monitors are live.
        assert set(node.manager.filter_manager.active_monitors()) == {
            ModalityType.ACCELEROMETER, ModalityType.MICROPHONE}

    def test_osn_plus_context_condition(self, testbed):
        """Figure 7 extended: sample on Facebook actions, but only
        while the user is still."""
        node = testbed.add_user("alice", "Paris")
        node.mobility.stop()
        stream = node.manager.create_stream(
            ModalityType.LOCATION, Granularity.RAW,
            stream_filter=Filter([
                Condition(ModalityType.FACEBOOK_ACTIVITY, Operator.EQUALS,
                          ModalityValue.ACTIVE),
                Condition(ModalityType.PHYSICAL_ACTIVITY, Operator.EQUALS,
                          ModalityValue.STILL),
            ]))
        records = []
        stream.register_listener(records.append)
        node.phone.environment.activity = ActivityState.RUNNING
        testbed.run(120.0)  # monitor observes "running"
        testbed.facebook.perform_action("alice", "post", content="x")
        testbed.run(200.0)
        assert records == []  # wrong physical context: suppressed
        node.phone.environment.activity = ActivityState.STILL
        testbed.run(120.0)  # monitor observes "still"
        testbed.facebook.perform_action("alice", "post", content="y")
        testbed.run(200.0)
        assert len(records) == 1
        assert records[0].osn_action["content"] == "y"


class TestRepeatedServerPushes:
    def test_filter_updates_accumulate_via_merge(self, testbed):
        node = testbed.add_user("alice", "Paris")
        stream = testbed.server.create_stream(
            "alice", ModalityType.WIFI, Granularity.RAW)
        testbed.run(2.0)
        stream.set_filter(Filter([Condition(
            ModalityType.PHYSICAL_ACTIVITY, Operator.EQUALS, "walking")]))
        testbed.run(2.0)
        stream.set_filter(Filter([Condition(
            ModalityType.TIME_OF_DAY, Operator.BETWEEN, [9, 17])]))
        testbed.run(2.0)
        mobile_stream = node.manager.streams[stream.stream_id]
        modalities = {condition.modality
                      for condition in mobile_stream.config.filter.conditions}
        # FilterMerge semantics: the downloaded definition merges with
        # the existing conditions rather than replacing them.
        assert modalities == {ModalityType.PHYSICAL_ACTIVITY,
                              ModalityType.TIME_OF_DAY}

    def test_many_streams_per_device_from_server(self, testbed):
        node = testbed.add_user("alice", "Paris")
        streams = [testbed.server.create_stream(
            "alice", ModalityType.WIFI, Granularity.RAW)
            for _ in range(10)]
        testbed.run(3.0)
        assert len(node.manager.streams) == 10
        for stream in streams:
            stream.destroy()
        testbed.run(3.0)
        assert len(node.manager.streams) == 0


class TestMultiDevice:
    def test_records_attributed_to_correct_user(self, testbed):
        nodes = [testbed.add_user(f"user{index}", "Paris")
                 for index in range(4)]
        streams = [testbed.server.create_stream(
            node.user_id, ModalityType.MICROPHONE, Granularity.CLASSIFIED)
            for node in nodes]
        per_stream_users = {stream.stream_id: set() for stream in streams}
        for stream in streams:
            stream.add_listener(
                lambda record, sid=stream.stream_id:
                per_stream_users[sid].add(record.user_id))
        testbed.run(130.0)
        for stream in streams:
            assert per_stream_users[stream.stream_id] == {stream.user_id}
