"""Batched transport must be an invisible optimization (ISSUE 9).

``batching=N`` moves records phone→server as columnar wire envelopes
(one message, one journal frame, one index pass, one ack per batch)
instead of per-record singletons — but batching is a transport and
execution optimization ONLY.  These are the property tests pinning
that claim: for the same seed and workload, a batched run and a
per-record run must produce

* bit-identical docstore contents (canonical store fingerprints),
* the same stream delivery order at server applications,
* the same trace terminal accounting (delivered/dropped taxonomy),
* journal replays that re-derive the store exactly
  (``repro replay --verify``'s oracle, ``verify_replay()``),

on the monolithic server AND on a sharded cluster, through faults —
including a server crash landing mid-batch, where in-flight envelopes
die and outboxes retransmit their members after the restart.
"""

from __future__ import annotations

import pytest

from repro.core.common import Granularity, ModalityType
from repro.durability.codec import fingerprint_store
from repro.faults import ChaosController, FaultPlan
from repro.scenarios.testbed import SenSocialTestbed

USERS = ("alice", "bob")

#: Main sensing window; faults land inside it, the tail drains after.
HORIZON_S = 500.0
DRAIN_S = 120.0


def run_deployment(seed: int, *, batching, durability=True, shards=None,
                   observability=False, plan: FaultPlan | None = None):
    """One full deployment; returns ``(testbed, delivery_order)``."""
    testbed = SenSocialTestbed(seed=seed, durability=durability,
                               shards=shards, observability=observability,
                               batching=batching)
    delivered: list[tuple] = []
    testbed.server.register_listener(
        lambda record: delivered.append(
            (record.user_id, record.timestamp, record.modality.value,
             record.value)))
    for user_id in USERS:
        node = testbed.add_user(user_id, "Paris")
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
    if plan is not None:
        ChaosController(testbed).apply(plan)
    testbed.run(HORIZON_S)
    testbed.run(DRAIN_S)
    return testbed, delivered


def store_fingerprints(testbed) -> list[str]:
    """Canonical digests of every server-side store (one per shard)."""
    if testbed.shards is None:
        return [fingerprint_store(testbed.server.database.store)]
    return [fingerprint_store(worker.database.store)
            for worker in testbed.server.shard_workers()]


def replay_matches(testbed) -> list[bool]:
    """``repro replay --verify``'s oracle for every journal."""
    controllers = (testbed.durabilities if testbed.durabilities is not None
                   else [testbed.durability])
    return [controller.verify_replay()["match"]
            for controller in controllers]


def ingest_counters(testbed) -> tuple[int, int]:
    """(records ingested, duplicates dropped), mono or cluster-summed."""
    counters = testbed.server.health()["counters"]
    return (int(counters["records_received"]),
            int(counters["duplicates_dropped"]))


def assert_identical(per_record, batched) -> None:
    """The full identity contract between two ``run_deployment`` results."""
    base_testbed, base_order = per_record
    batch_testbed, batch_order = batched
    assert ingest_counters(base_testbed)[0] > 0
    assert store_fingerprints(batch_testbed) == \
        store_fingerprints(base_testbed)
    assert batch_order == base_order
    assert ingest_counters(batch_testbed) == ingest_counters(base_testbed)


class TestPlainIdentity:
    @pytest.mark.parametrize("seed", [7, 21])
    def test_durable_mono(self, seed):
        base = run_deployment(seed, batching=None)
        batched = run_deployment(seed, batching=4)
        assert_identical(base, batched)
        assert replay_matches(batched[0]) == [True]

    def test_volatile_mono(self):
        """No durability: the volatile ``_on_stream_batch`` fast path."""
        base = run_deployment(7, batching=None, durability=False)
        batched = run_deployment(7, batching=8, durability=False)
        assert_identical(base, batched)

    def test_durable_sharded(self):
        base = run_deployment(11, batching=None, shards=2)
        batched = run_deployment(11, batching=16, shards=2)
        assert_identical(base, batched)
        assert replay_matches(batched[0]) == [True, True]


class TestIdentityUnderFaults:
    def test_server_crash_mid_batch(self):
        """A crash lands while envelopes are in flight: the members die
        un-acked, outboxes retransmit them after the restart, and the
        replayed journal still re-derives the exact same store."""
        def plan():
            return FaultPlan("crash").server_crash(at=400.0, downtime=60.0)
        base = run_deployment(13, batching=None, observability=True,
                              plan=plan())
        batched = run_deployment(13, batching=8, observability=True,
                                 plan=plan())
        assert_identical(base, batched)
        assert replay_matches(batched[0]) == [True]
        # Trace terminal accounting: same journeys, same endings.
        assert batched[0].obs.tracer.terminal_counts() == \
            base[0].obs.tracer.terminal_counts()
        assert batched[0].obs.tracer.drop_taxonomy() == \
            base[0].obs.tracer.drop_taxonomy()

    def test_partition_plus_crash_flushes_real_batches(self):
        """A partition backs the outbox up, so the reconnect flush
        sends genuinely multi-record envelopes — then a crash forces
        retransmission through the durable path.  Identity must hold
        AND the run must prove batches actually flowed."""
        def plan():
            return (FaultPlan("partition-crash")
                    .partition("device:alice", start=120.0, duration=180.0)
                    .server_crash(at=500.0, downtime=60.0))
        base = run_deployment(17, batching=None, observability=True,
                              plan=plan())
        batched = run_deployment(17, batching=8, observability=True,
                                 plan=plan())
        assert_identical(base, batched)
        assert replay_matches(batched[0]) == [True]
        assert batched[0].obs.tracer.terminal_counts() == \
            base[0].obs.tracer.terminal_counts()
        # Proof of multi-record envelopes: the publish-stage batch-size
        # histogram saw at least one flush bigger than a singleton.
        histogram = batched[0].obs.telemetry.histogram(
            "batch_size", stage="publish")
        assert histogram.count > 0
        assert histogram.max is not None and histogram.max > 1

    def test_sharded_crash(self):
        """Same contract on a 2-shard cluster with a mid-run crash."""
        def plan():
            return FaultPlan("crash").server_crash(at=300.0, downtime=45.0)
        base = run_deployment(23, batching=None, shards=2, plan=plan())
        batched = run_deployment(23, batching=8, shards=2, plan=plan())
        assert_identical(base, batched)
        assert all(replay_matches(batched[0]))
