"""Unit tests for the OSN service, workload generator and sentiment."""

import pytest

from repro.net.latency import FixedLatency
from repro.osn import (
    ActionType,
    ActionWorkloadGenerator,
    ContentGenerator,
    OsnService,
    SentimentAnalyzer,
    SentimentLabel,
    UnknownUserError,
)
from repro.osn.actions import OsnAction
from repro.simkit import World


@pytest.fixture
def service():
    world = World(seed=17)
    service = OsnService(world, "facebook")
    for user in ["u1", "u2"]:
        service.register_user(user)
        service.authorize_app(user)
    return world, service


class TestActions:
    def test_action_lands_in_feed(self, service):
        world, osn = service
        osn.perform_action("u1", "post", content="hello")
        feed = osn.feed("u1")
        assert len(feed) == 1
        assert feed[0].content == "hello"

    def test_action_timestamps_use_sim_clock(self, service):
        world, osn = service
        world.run_for(100.0)
        action = osn.perform_action("u1", "like")
        assert action.created_at == 100.0

    def test_unknown_user_rejected(self, service):
        _, osn = service
        with pytest.raises(UnknownUserError):
            osn.perform_action("ghost", "post")

    def test_action_ids_unique(self, service):
        _, osn = service
        a = osn.perform_action("u1", "post")
        b = osn.perform_action("u1", "post")
        assert a.action_id != b.action_id

    def test_action_document_round_trip(self, service):
        _, osn = service
        action = osn.perform_action("u1", "comment", content="nice",
                                    target="post-9")
        restored = OsnAction.from_document(action.to_document())
        assert restored.user_id == "u1"
        assert restored.type is ActionType.COMMENT
        assert restored.target == "post-9"

    def test_friend_add_action_updates_graph(self, service):
        _, osn = service
        osn.perform_action("u1", ActionType.FRIEND_ADD,
                           payload={"friend_id": "u2"})
        assert osn.graph.are_friends("u1", "u2")

    def test_friend_remove_action_updates_graph(self, service):
        _, osn = service
        osn.graph.add_friendship("u1", "u2")
        osn.perform_action("u1", ActionType.FRIEND_REMOVE,
                           payload={"friend_id": "u2"})
        assert not osn.graph.are_friends("u1", "u2")


class TestWebhooks:
    def test_webhook_fires_after_delay(self, service):
        world, osn = service
        received = []
        osn.subscribe_webhook("app", received.append, delay=FixedLatency(10.0))
        osn.perform_action("u1", "post")
        world.run_for(9.0)
        assert received == []
        world.run_for(2.0)
        assert len(received) == 1

    def test_webhook_skips_unauthorized_users(self, service):
        world, osn = service
        osn.register_user("u3")  # never authorizes the app
        received = []
        osn.subscribe_webhook("app", received.append)
        osn.perform_action("u3", "post")
        world.run_for(1.0)
        assert received == []

    def test_webhook_user_scoping(self, service):
        world, osn = service
        received = []
        osn.subscribe_webhook("app", received.append, user_ids=["u2"])
        osn.perform_action("u1", "post")
        osn.perform_action("u2", "post")
        world.run_for(1.0)
        assert [action.user_id for action in received] == ["u2"]


class TestTimelinePolling:
    def test_timeline_since_filters_by_time(self, service):
        world, osn = service
        osn.perform_action("u1", "post", content="old")
        world.run_for(100.0)
        osn.perform_action("u1", "post", content="new")
        recent = osn.timeline_since("u1", since=50.0)
        assert [action.content for action in recent] == ["new"]

    def test_timeline_requires_authorization(self, service):
        _, osn = service
        osn.register_user("u3")
        osn.perform_action("u3", "post")
        assert osn.timeline_since("u3", -1.0) == []


class TestWorkloadGenerator:
    def test_poisson_rate_approximately_honoured(self):
        world = World(seed=23)
        osn = OsnService(world, "facebook")
        osn.register_user("u1")
        osn.authorize_app("u1")
        generator = ActionWorkloadGenerator(world, osn, actions_per_hour=6.0)
        generator.start_user("u1")
        world.run_for(10 * 3600.0)
        assert 30 <= osn.actions_performed <= 90  # ~60 expected

    def test_stop_user_halts_generation(self):
        world = World(seed=23)
        osn = OsnService(world, "facebook")
        osn.register_user("u1")
        osn.authorize_app("u1")
        generator = ActionWorkloadGenerator(world, osn, actions_per_hour=60.0)
        generator.start_user("u1")
        world.run_for(3600.0)
        count = osn.actions_performed
        generator.stop_user("u1")
        world.run_for(3600.0)
        assert osn.actions_performed == count

    def test_burst_schedules_exact_count(self):
        world = World(seed=23)
        osn = OsnService(world, "facebook")
        osn.register_user("u1")
        osn.authorize_app("u1")
        generator = ActionWorkloadGenerator(world, osn)
        generator.burst("u1", count=5, interval=60.0)
        world.run_for(400.0)
        assert osn.actions_performed == 5

    def test_invalid_rate_rejected(self):
        world = World(seed=1)
        osn = OsnService(world, "facebook")
        with pytest.raises(ValueError):
            ActionWorkloadGenerator(world, osn, actions_per_hour=0)


class TestContentAndSentiment:
    def test_generated_content_mentions_topic(self):
        generator = ContentGenerator(World(seed=2).rng("c"))
        text = generator.generate(topic="football")
        assert "football" in text

    def test_unknown_topic_rejected(self):
        generator = ContentGenerator(World(seed=2).rng("c"))
        with pytest.raises(ValueError):
            generator.generate(topic="quantum")

    def test_unknown_sentiment_rejected(self):
        generator = ContentGenerator(World(seed=2).rng("c"))
        with pytest.raises(ValueError):
            generator.generate(sentiment="ambivalent")

    def test_positive_phrases_classified_positive(self):
        analyzer = SentimentAnalyzer()
        generator = ContentGenerator(World(seed=2).rng("c"))
        for _ in range(20):
            text = generator.generate(sentiment="positive")
            assert analyzer.label(text) is SentimentLabel.POSITIVE

    def test_negative_phrases_classified_negative(self):
        analyzer = SentimentAnalyzer()
        generator = ContentGenerator(World(seed=2).rng("c"))
        for _ in range(20):
            text = generator.generate(sentiment="negative")
            assert analyzer.label(text) is SentimentLabel.NEGATIVE

    def test_neutral_text_classified_neutral(self):
        analyzer = SentimentAnalyzer()
        assert analyzer.label("heading to the office") is SentimentLabel.NEUTRAL

    def test_negation_flips_polarity(self):
        analyzer = SentimentAnalyzer()
        assert analyzer.score("not happy at all") < 0

    def test_score_bounds(self):
        analyzer = SentimentAnalyzer()
        assert -1.0 <= analyzer.score("amazing fantastic wonderful") <= 1.0

    def test_empty_text_scores_zero(self):
        assert SentimentAnalyzer().score("") == 0.0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SentimentAnalyzer(positive_threshold=-0.5, negative_threshold=0.5)
