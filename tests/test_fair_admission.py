"""Tests for the per-source fair admission controller: weighted
round-robin service, heaviest-source-first shedding, and the OSN
priority guarantee (triggered records survive watermark shedding)."""

import pytest

from repro.core.common import Granularity, ModalityType
from repro.durability import (
    DurabilityConfig,
    FairAdmissionController,
    ServerDurability,
)
from repro.durability.admission import AdmissionController, IntakeItem
from repro.scenarios.testbed import SenSocialTestbed


def item(record_id, source, priority=0):
    class _Record:
        device_id = source

    return IntakeItem(record_id=record_id, payload={}, record=_Record(),
                      reply_to=None, sent_at=None, trace=None,
                      priority=priority, enqueued_at=0.0)


def fill(controller, source, count, *, start=0, priority=0):
    for n in range(count):
        controller.admit(item(f"{source}-{start + n}", source, priority))


class TestWeightedService:
    def test_round_robin_interleaves_sources(self):
        controller = FairAdmissionController(capacity=100)
        fill(controller, "a", 3)
        fill(controller, "b", 3)
        order = [controller.pop().record_id for _ in range(6)]
        assert order == ["a-0", "b-0", "a-1", "b-1", "a-2", "b-2"]

    def test_weights_grant_extra_turns(self):
        controller = FairAdmissionController(
            capacity=100, weights={"a": 2})
        fill(controller, "a", 4)
        fill(controller, "b", 2)
        order = [controller.pop().record_id for _ in range(6)]
        assert order == ["a-0", "a-1", "b-0", "a-2", "a-3", "b-1"]

    def test_exhausted_source_cedes_turn(self):
        controller = FairAdmissionController(capacity=100)
        fill(controller, "a", 1)
        fill(controller, "b", 3)
        order = [controller.pop().record_id for _ in range(4)]
        assert order == ["a-0", "b-0", "b-1", "b-2"]
        assert controller.pop() is None

    def test_requeue_served_before_fresh_work(self):
        controller = FairAdmissionController(capacity=100)
        fill(controller, "a", 2)
        first = controller.pop()
        controller.requeue(first)
        assert controller.pop() is first
        assert controller.pop().record_id == "a-1"

    def test_pending_and_wipe(self):
        controller = FairAdmissionController(capacity=100)
        fill(controller, "a", 2)
        fill(controller, "b", 1)
        assert len(controller) == 3
        assert controller.pending("a-0")
        assert not controller.pending("zzz")
        wiped = controller.wipe()
        assert len(wiped) == 3
        assert len(controller) == 0
        assert not controller.pending("a-0")


class TestFairShedding:
    def test_watermark_sheds_heaviest_source_first(self):
        controller = FairAdmissionController(
            capacity=10, high_watermark=0.8, low_watermark=0.5)
        fill(controller, "hog", 7)
        fill(controller, "meek", 1)
        # Depth 8 hits the 0.8 watermark; shed down to 5, every
        # victim drawn from the deepest backlog.
        assert len(controller) == 5
        assert controller.shed == 3
        report = controller.fairness_report()
        assert report["hog"]["shed"] == 3
        assert report["meek"]["shed"] == 0
        assert report["meek"]["depth"] == 1

    def test_osn_records_survive_watermark_shedding(self):
        controller = FairAdmissionController(
            capacity=10, high_watermark=0.8, low_watermark=0.5)
        fill(controller, "hog", 5, priority=1)  # OSN-triggered
        fill(controller, "hog", 2, start=5)     # continuous
        fill(controller, "meek", 1)
        # Watermark shedding consumed every continuous record before
        # it would touch priority-1 work; all five OSN records drain.
        popped = []
        while (entry := controller.pop()) is not None:
            popped.append(entry)
        assert sum(1 for e in popped if e.priority == 1) == 5
        assert all(e.priority == 1 for e in popped
                   if e.record.device_id == "hog")
        assert controller.shed >= 2

    def test_watermark_stops_rather_than_shed_osn_records(self):
        controller = FairAdmissionController(
            capacity=4, high_watermark=0.5, low_watermark=0.25)
        fill(controller, "a", 4, priority=1)
        # Far over the watermark, but nothing continuous to shed:
        # the queue keeps all four rather than drop triggered work.
        assert len(controller) == 4
        assert controller.shed == 0

    def test_hard_overflow_sheds_even_priority_as_last_resort(self):
        controller = FairAdmissionController(
            capacity=3, high_watermark=1.0, low_watermark=1.0)
        fill(controller, "a", 4, priority=1)
        assert len(controller) == 3
        assert controller.shed == 1
        # The oldest record of the deepest source went, not the newest.
        remaining = {controller.pop().record_id for _ in range(3)}
        assert "a-0" not in remaining and "a-3" in remaining

    def test_tie_breaks_lexicographically(self):
        controller = FairAdmissionController(
            capacity=4, high_watermark=1.0, low_watermark=0.75)
        fill(controller, "b", 2)
        fill(controller, "a", 2)
        report = controller.fairness_report()
        # Equal depths: "a" sorts first and takes the hit.
        assert report["a"]["shed"] == 1
        assert report["b"]["shed"] == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FairAdmissionController(capacity=0)
        with pytest.raises(ValueError):
            FairAdmissionController(capacity=10, high_watermark=0.5,
                                    low_watermark=0.8)


class TestDurabilityWiring:
    def test_config_selects_fair_controller(self):
        testbed = SenSocialTestbed(seed=3, durability=DurabilityConfig(
            fair_admission=True, fair_weights=(("device-1", 2),)))
        admission = testbed.durability.admission
        assert isinstance(admission, FairAdmissionController)
        assert admission.weight("device-1") == 2
        counters = testbed.durability.health()["counters"]
        assert counters["fair_admission"] is True
        assert counters["fair_sources"] == 0

    def test_default_config_keeps_fifo_controller(self):
        testbed = SenSocialTestbed(seed=3, durability=True)
        admission = testbed.durability.admission
        assert isinstance(admission, AdmissionController)
        assert not isinstance(admission, FairAdmissionController)

    def test_fair_weights_validated(self):
        with pytest.raises(ValueError):
            DurabilityConfig(fair_admission=True, fair_weights=(("d", 0),))

    def test_chatty_device_pays_for_overload_end_to_end(self):
        """Under a slow drain, fair admission sheds the chatty
        device's backlog and spares the quiet one."""
        config = DurabilityConfig(fair_admission=True, intake_capacity=8,
                                  high_watermark=0.75, low_watermark=0.5)
        testbed = SenSocialTestbed(seed=11, durability=config)
        testbed.durability.medium.write_latency_s = 6.0
        chatty = testbed.add_user("chatty", "Paris")
        chatty.manager.create_stream(
            ModalityType.ACCELEROMETER, Granularity.CLASSIFIED,
            send_to_server=True, settings={"duty_cycle_s": 2.0})
        quiet = testbed.add_user("quiet", "Paris")
        quiet.manager.create_stream(
            ModalityType.ACCELEROMETER, Granularity.CLASSIFIED,
            send_to_server=True, settings={"duty_cycle_s": 45.0})
        testbed.run(120.0)
        report = testbed.durability.admission.fairness_report()
        chatty_id = chatty.phone.device_id
        quiet_id = quiet.phone.device_id
        assert report[chatty_id]["shed"] > 0
        assert report[quiet_id]["shed"] == 0
        assert report[chatty_id]["admitted"] > report[quiet_id]["admitted"]
        counters = testbed.durability.health()["counters"]
        assert counters["fair_sources"] >= 2
