"""End-to-end tracing invariants.

Every record that enters the mobile middleware must end in exactly one
terminal state — delivered, dropped (with a stage and reason), or
in-flight at simulation end — including across a broker restart plus a
device partition (the ``rough-day`` plan from the chaos acceptance
tests).  Delivered records must reconstruct their full phone→server
span chain, and enabling tracing must not perturb the simulation."""

import itertools

import repro.device.phone as phone_module
from repro.core.common import Granularity, ModalityType
from repro.faults import ChaosController, FaultPlan
from repro.net.errors import DuplicateEndpointError
from repro.obs import DELIVERED, DROPPED, FULL_CHAIN_STAGES, IN_FLIGHT
from repro.scenarios.testbed import SenSocialTestbed

USERS = ("alice", "bob")
HORIZON_S = 1200.0
DRAIN_S = 180.0


def run_traced(seed: int, plan: FaultPlan | None = None, *,
               observability: bool = True):
    """The chaos acceptance scenario, with tracing on by default.

    Device ids come from a process-global counter; pin it so span
    baggage and telemetry labels are comparable across runs."""
    phone_module._device_counter = itertools.count(1)
    testbed = SenSocialTestbed(seed=seed, observability=observability)
    ingested = []
    testbed.server.register_listener(
        lambda record: ingested.append((record.user_id, record.timestamp,
                                        record.value)))
    for user_id in USERS:
        node = testbed.add_user(user_id, "Paris")
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
    controller = ChaosController(testbed)
    if plan is not None:
        controller.apply(plan)
    testbed.run(HORIZON_S)
    testbed.run(DRAIN_S)
    return testbed, controller, ingested


def rough_day_plan() -> FaultPlan:
    return (FaultPlan("rough-day")
            .broker_restart(at=300.0, downtime=120.0)
            .partition("devices", start=700.0, duration=60.0))


class TestTerminalInvariant:
    def test_every_record_has_exactly_one_terminal_fault_free(self):
        testbed, _, ingested = run_traced(3)
        tracer = testbed.obs.tracer
        counts = tracer.terminal_counts()
        assert tracer.started > 0
        assert sum(counts.values()) == tracer.started
        # At quiescence nothing is in flight and nothing was dropped.
        assert counts[IN_FLIGHT] == 0
        assert counts[DROPPED] == 0
        assert counts[DELIVERED] == len(ingested)
        assert tracer.terminal_conflicts == 0

    def test_terminal_invariant_survives_broker_restart(self):
        """The rough-day plan (broker crash + device partition): every
        trace still ends in exactly one terminal, duplicates from QoS-1
        replays never produce a second delivered terminal, and every
        non-delivered record is attributed to a (stage, reason)."""
        testbed, controller, ingested = run_traced(3, rough_day_plan())
        report = controller.report()
        assert report.broker["crashes"] == 1  # faults actually bit
        tracer = testbed.obs.tracer
        counts = tracer.terminal_counts()
        assert sum(counts.values()) == tracer.started
        assert tracer.terminal_conflicts == 0
        # Exactly-once: delivered terminals == unique ingested records,
        # even though the wire carried retransmissions.
        assert counts[DELIVERED] == len(set(ingested))
        # 100% drop attribution: dropped terminals all carry a stage
        # and a reason, and nothing else is unaccounted for.
        for state in tracer.traces():
            if state.terminal_kind() == DROPPED:
                _, stage, reason, _ = state.terminal
                assert stage and reason
        assert counts[IN_FLIGHT] == 0  # drain long enough to settle

    def test_obs_section_riding_the_chaos_report(self):
        _, controller, _ = run_traced(3, rough_day_plan())
        report = controller.report()
        assert report.obs is not None
        assert report.obs["terminals"]["delivered"] == report.records_ingested
        assert "observability:" in report.format()

    def test_untraced_run_has_no_obs_section(self):
        _, controller, _ = run_traced(3, observability=False)
        report = controller.report()
        assert report.obs is None
        assert "observability:" not in report.format()


class TestChainCompleteness:
    def test_delivered_records_reconstruct_their_full_chain(self):
        """Acceptance bar: >= 99% of delivered records' span chains
        contain the full sense → outbox → transport → ingest journey
        (here it should be every single one)."""
        testbed, _, _ = run_traced(3, rough_day_plan())
        tracer = testbed.obs.tracer
        delivered = [state for state in tracer.traces()
                     if state.terminal_kind() == DELIVERED]
        assert delivered
        complete = sum(1 for state in delivered
                       if tracer.chain_complete(state))
        assert complete / len(delivered) >= 0.99
        # and the report agrees
        assert testbed.obs.report().completeness >= 0.99

    def test_full_chain_stages_are_a_subset_of_the_taxonomy(self):
        from repro.obs import STAGES
        assert FULL_CHAIN_STAGES <= set(STAGES)


class TestOutboxDropAttribution:
    def test_eviction_is_attributed_to_the_outbox_stage(self):
        """Shrink the outbox and partition the devices long enough to
        overflow it: every evicted record must carry the
        (outbox, evicted_oldest) terminal."""
        testbed = SenSocialTestbed(seed=4, observability=True)
        node = testbed.add_user("alice", "Paris")
        node.manager.outbox.capacity = 2
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
        testbed.network.schedule_partition(node.phone.address,
                                           start=30.0, duration=600.0)
        testbed.world.run_for(700.0)
        testbed.world.run_for(120.0)
        tracer = testbed.obs.tracer
        taxonomy = tracer.drop_taxonomy()
        assert taxonomy.get(("outbox", "evicted_oldest"), 0) > 0
        assert sum(tracer.terminal_counts().values()) == tracer.started


class TestTracingDeterminism:
    def test_tracing_does_not_perturb_the_record_stream(self):
        """A traced run must ingest a bit-identical record stream (and
        drive the network identically) to an untraced run."""
        traced = run_traced(5, rough_day_plan(), observability=True)
        plain = run_traced(5, rough_day_plan(), observability=False)
        assert traced[2] == plain[2]  # identical ingested records
        assert traced[0].network.messages_sent == plain[0].network.messages_sent
        assert traced[0].network.bytes_sent == plain[0].network.bytes_sent
        assert traced[0].server.records_duplicate \
            == plain[0].server.records_duplicate

    def test_traced_runs_are_reproducible(self):
        first = run_traced(7, rough_day_plan())
        second = run_traced(7, rough_day_plan())
        assert first[0].obs.tracer.to_jsonl() == second[0].obs.tracer.to_jsonl()
        assert first[0].obs.telemetry.snapshot() \
            == second[0].obs.telemetry.snapshot()


class TestNetworkDropSurfaces:
    def test_last_drop_reason_and_time_are_exposed(self):
        testbed, _, _ = run_traced(3, rough_day_plan())
        details = testbed.network.drop_details()
        assert details  # the partition ate something
        for address, info in details.items():
            assert info["count"] == testbed.network.drop_count(address)
            assert info["last_reason"] in ("partition", "loss")
            last = testbed.network.last_drop(address)
            assert last == {"reason": info["last_reason"],
                            "at": info["last_at"]}
        # health() surfaces the same taxonomy per device
        node = testbed.nodes["alice"]
        health = node.manager.health()
        if health["net_drops"] > 0:
            assert health["last_net_drop"]["reason"] in ("partition", "loss")

    def test_duplicate_endpoint_error_carries_the_address(self):
        testbed = SenSocialTestbed(seed=0)
        try:
            testbed.network.register("mqtt-broker", lambda message: None)
        except DuplicateEndpointError as error:
            assert error.address == "mqtt-broker"
        else:
            raise AssertionError("duplicate registration did not raise")
