"""Unit tests for the observability primitives: the telemetry
registry, the shared healthcheck schema, the tracer's bookkeeping, and
the exporters (Prometheus text format, JSONL span log)."""

import json

import pytest

from repro.obs import (
    DELIVERED,
    DROPPED,
    Healthcheck,
    Observability,
    Telemetry,
    Tracer,
)
from repro.simkit.world import World


class TestTelemetry:
    def test_counter_accumulates_and_rejects_decrease(self):
        telemetry = Telemetry()
        counter = telemetry.counter("records", device="d1")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_label_order_does_not_split_series(self):
        telemetry = Telemetry()
        a = telemetry.counter("sent", device="d1", modality="location")
        b = telemetry.counter("sent", modality="location", device="d1")
        assert a is b

    def test_series_and_total_span_label_children(self):
        telemetry = Telemetry()
        telemetry.counter("sent", device="d1").inc(2)
        telemetry.counter("sent", device="d2").inc(3)
        telemetry.counter("other").inc(10)
        assert len(telemetry.series("sent")) == 2
        assert telemetry.total("sent") == 5

    def test_gauge_moves_both_ways(self):
        gauge = Telemetry().gauge("depth")
        gauge.set(7)
        gauge.inc()
        gauge.dec(3)
        assert gauge.value == 5

    def test_histogram_summary_quantiles(self):
        histogram = Telemetry().histogram("latency")
        for value in range(1, 101):
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert 48.0 <= summary["p50"] <= 52.0
        assert 93.0 <= summary["p95"] <= 97.0

    def test_histogram_folds_but_keeps_exact_aggregates(self):
        histogram = Telemetry().histogram("big")
        histogram.max_samples = 8
        for value in range(20):
            histogram.observe(float(value))
        assert histogram.count == 20
        assert histogram.sum == sum(range(20))
        assert histogram.min == 0.0 and histogram.max == 19.0
        assert histogram.truncated > 0

    def test_timer_measures_virtual_durations(self):
        timer = Telemetry().timer("ack_delay")
        started = timer.start(10.0)
        elapsed = timer.stop(started, 12.5)
        assert elapsed == 2.5
        assert timer.summary()["count"] == 1

    def test_prometheus_dump_parses_line_per_sample(self):
        telemetry = Telemetry()
        telemetry.counter("sent", device="d1").inc(3)
        telemetry.gauge("depth").set(2)
        telemetry.timer("delay").observe(0.5)
        text = telemetry.to_prometheus()
        assert '# TYPE sent counter' in text
        assert 'sent{device="d1"} 3' in text
        assert "# TYPE delay summary" in text
        assert "delay_count 1" in text
        # every non-comment line is "name{labels} value"
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            assert name and float(value) is not None

    def test_snapshot_is_plain_data(self):
        telemetry = Telemetry()
        telemetry.counter("sent", device="d1").inc()
        telemetry.histogram("delay").observe(1.0)
        snapshot = telemetry.snapshot()
        assert snapshot['sent{device="d1"}'] == {"value": 1}
        assert snapshot["delay"]["count"] == 1
        json.dumps(snapshot)  # must be JSON-serialisable


class TestHealthcheck:
    def test_status_mapping(self):
        assert Healthcheck.status_for(True) == "ok"
        assert Healthcheck.status_for(True, backlog=3) == "degraded"
        assert Healthcheck.status_for(False, backlog=0) == "down"

    def test_build_flattens_counters_without_shadowing_schema(self):
        doc = Healthcheck.build(
            status="ok", detail="fine",
            counters={"queued": 2, "status": 99}, device_id="d1")
        assert Healthcheck.is_uniform(doc)
        assert doc["queued"] == 2  # legacy flat surface
        assert doc["counters"]["queued"] == 2  # uniform surface
        assert doc["status"] == "ok"  # counters cannot shadow the schema
        assert doc["device_id"] == "d1"

    def test_every_manager_health_follows_the_schema(self):
        from repro.scenarios.testbed import SenSocialTestbed
        testbed = SenSocialTestbed(seed=1)
        node = testbed.add_user("alice", "Paris")
        for doc in (node.manager.health(),
                    node.manager.mqtt.client.health(),
                    testbed.server.health()):
            assert Healthcheck.is_uniform(doc)
            assert doc["status"] in ("ok", "degraded", "down")


class TestTracer:
    def _tracer(self, **kwargs):
        world = World(seed=1)
        return world, Tracer(world, **kwargs)

    def test_ids_are_deterministic_per_seed(self):
        _, first = self._tracer()
        _, second = self._tracer()
        assert first.start_trace().trace_id == second.start_trace().trace_id

    def test_exactly_one_terminal_first_wins(self):
        world, tracer = self._tracer()
        context = tracer.start_trace(device="d1")
        tracer.mark_delivered(context)
        tracer.mark_dropped(context, "outbox", "evicted_oldest")
        state = tracer.get(context.trace_id)
        assert state.terminal_kind() == DELIVERED
        assert tracer.terminal_conflicts == 1

    def test_drop_records_stage_and_reason(self):
        world, tracer = self._tracer()
        context = tracer.start_trace()
        tracer.mark_dropped(context, "outbox", "evicted_oldest")
        assert tracer.drop_taxonomy() == {("outbox", "evicted_oldest"): 1}
        assert tracer.terminal_counts()[DROPPED] == 1

    def test_unknown_context_is_ignored(self):
        world, tracer = self._tracer()
        tracer.span(None, "sense")
        tracer.mark_delivered(None)
        assert len(tracer) == 0

    def test_eviction_spares_in_flight_traces(self):
        world, tracer = self._tracer(max_traces=3)
        in_flight = tracer.start_trace()
        for _ in range(5):
            tracer.mark_delivered(tracer.start_trace())
        assert tracer.get(in_flight.trace_id) is not None
        assert tracer.evicted > 0
        assert len(tracer) <= 3 + 1  # bound plus the newest insert

    def test_jsonl_round_trips(self):
        world, tracer = self._tracer()
        context = tracer.start_trace(device="d1")
        tracer.span(context, "sense", start=0.0, end=0.1)
        tracer.event(context, "transmit", attempt=1)
        tracer.mark_delivered(context)
        docs = [json.loads(line) for line in tracer.to_jsonl_lines()]
        kinds = [doc["kind"] for doc in docs]
        assert kinds == ["trace", "span", "event"]
        assert docs[0]["terminal"]["kind"] == DELIVERED
        assert docs[0]["baggage"] == {"device": "d1"}


class TestObservabilityHub:
    def test_install_is_idempotent(self):
        world = World(seed=0)
        hub = Observability.install(world)
        assert Observability.install(world) is hub
        assert Observability.of(world) is hub

    def test_absent_hub_resolves_to_none(self):
        assert Observability.of(World(seed=0)) is None

    def test_report_snapshot(self):
        world = World(seed=0)
        hub = Observability.install(world)
        context = hub.tracer.start_trace()
        hub.tracer.mark_dropped(context, "outbox", "evicted_oldest")
        report = hub.report(queue_depths={"outbox:a": 2})
        assert report.records_dropped == 1
        assert report.queue_depths == {"outbox:a": 2}
        assert report.drops[0]["stage"] == "outbox"
        json.dumps(report.to_dict())
        assert "drop taxonomy" in report.format()
