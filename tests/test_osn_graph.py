"""Unit tests for the social graph."""

import pytest

from repro.osn import SocialGraph, UnknownUserError
from repro.simkit import World


@pytest.fixture
def graph():
    g = SocialGraph()
    for user in ["a", "b", "c", "d", "e"]:
        g.add_user(user)
    g.add_friendship("a", "b")
    g.add_friendship("b", "c")
    g.add_friendship("a", "c")
    g.add_friendship("c", "d")
    return g


class TestFriendships:
    def test_friendship_is_symmetric(self, graph):
        assert graph.are_friends("a", "b")
        assert graph.are_friends("b", "a")

    def test_friends_sorted(self, graph):
        assert graph.friends("a") == ["b", "c"]

    def test_degree(self, graph):
        assert graph.degree("c") == 3
        assert graph.degree("e") == 0

    def test_mutual_friends(self, graph):
        assert graph.mutual_friends("a", "b") == ["c"]

    def test_friendship_count(self, graph):
        assert graph.friendship_count() == 4

    def test_remove_friendship(self, graph):
        graph.remove_friendship("a", "b")
        assert not graph.are_friends("a", "b")
        assert graph.friendship_count() == 3

    def test_self_friendship_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.add_friendship("a", "a")

    def test_unknown_user_rejected(self, graph):
        with pytest.raises(UnknownUserError):
            graph.friends("ghost")

    def test_add_user_idempotent(self, graph):
        graph.add_user("a")
        assert graph.friends("a") == ["b", "c"]

    def test_remove_user_cleans_edges(self, graph):
        graph.remove_user("c")
        assert graph.friends("a") == ["b"]
        assert graph.friends("d") == []
        assert not graph.has_user("c")

    def test_friends_within_hops(self, graph):
        assert set(graph.friends_within("a", 1)) == {"b", "c"}
        assert set(graph.friends_within("a", 2)) == {"b", "c", "d"}
        assert graph.friends_within("e", 3) == []


class TestFollows:
    def test_follow_is_directed(self, graph):
        graph.add_follow("a", "b")
        assert graph.follows("a", "b")
        assert not graph.follows("b", "a")

    def test_followers_and_following(self, graph):
        graph.add_follow("a", "b")
        graph.add_follow("c", "b")
        assert graph.followers("b") == ["a", "c"]
        assert graph.following("a") == ["b"]

    def test_remove_follow(self, graph):
        graph.add_follow("a", "b")
        graph.remove_follow("a", "b")
        assert not graph.follows("a", "b")

    def test_self_follow_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.add_follow("a", "a")

    def test_remove_user_cleans_follows(self, graph):
        graph.add_follow("a", "b")
        graph.add_follow("b", "e")
        graph.remove_user("b")
        assert graph.following("a") == []
        assert graph.followers("e") == []


class TestGenerators:
    def ids(self, n):
        return [f"u{i}" for i in range(n)]

    def test_erdos_renyi_p_zero_is_empty(self):
        rng = World(seed=1).rng("g")
        graph = SocialGraph.erdos_renyi(self.ids(20), 0.0, rng)
        assert graph.friendship_count() == 0

    def test_erdos_renyi_p_one_is_complete(self):
        rng = World(seed=1).rng("g")
        graph = SocialGraph.erdos_renyi(self.ids(10), 1.0, rng)
        assert graph.friendship_count() == 45

    def test_erdos_renyi_density_tracks_p(self):
        rng = World(seed=1).rng("g")
        graph = SocialGraph.erdos_renyi(self.ids(40), 0.3, rng)
        expected = 0.3 * 40 * 39 / 2
        assert 0.5 * expected < graph.friendship_count() < 1.5 * expected

    def test_watts_strogatz_ring_degree(self):
        rng = World(seed=1).rng("g")
        graph = SocialGraph.watts_strogatz(self.ids(20), 4, 0.0, rng)
        assert all(graph.degree(user) == 4 for user in graph.users())

    def test_watts_strogatz_rewiring_keeps_edge_count(self):
        rng = World(seed=1).rng("g")
        graph = SocialGraph.watts_strogatz(self.ids(30), 4, 0.5, rng)
        # Rewired edges may occasionally collide with existing ones,
        # but the count stays in the lattice's ballpark.
        assert 45 <= graph.friendship_count() <= 60

    def test_barabasi_albert_connectivity(self):
        rng = World(seed=1).rng("g")
        graph = SocialGraph.barabasi_albert(self.ids(50), 2, rng)
        assert all(graph.degree(user) >= 2 for user in graph.users()[2:])

    def test_barabasi_albert_has_hubs(self):
        rng = World(seed=1).rng("g")
        graph = SocialGraph.barabasi_albert(self.ids(100), 2, rng)
        degrees = sorted(graph.degree(user) for user in graph.users())
        assert degrees[-1] >= 3 * degrees[len(degrees) // 2]

    def test_generators_deterministic_under_seed(self):
        graph_a = SocialGraph.erdos_renyi(self.ids(20), 0.2, World(seed=4).rng("g"))
        graph_b = SocialGraph.erdos_renyi(self.ids(20), 0.2, World(seed=4).rng("g"))
        assert ([graph_a.friends(u) for u in graph_a.users()]
                == [graph_b.friends(u) for u in graph_b.users()])
