"""Tests for fault plans and the chaos controller: event scheduling,
symbolic target resolution, OSN plug-in outages, device reboots, and
the injection log / report."""

import pytest

from repro.core.common import Granularity, ModalityType
from repro.faults import (
    ChaosController,
    FaultPlan,
    FaultTargetError,
    NAMED_PLANS,
    build_plan,
)
from repro.scenarios.testbed import SenSocialTestbed


def deploy(seed=7, users=("alice",)):
    testbed = SenSocialTestbed(seed=seed)
    for user_id in users:
        node = testbed.add_user(user_id, "Paris")
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
    return testbed


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = (FaultPlan("p")
                .partition("broker", start=50.0, duration=10.0)
                .broker_restart(at=5.0, downtime=2.0))
        times = [event.at for event in plan.events()]
        assert times == sorted(times)
        assert len(plan) == 4
        assert not plan.is_empty

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().add("link_down", -1.0, "broker")

    def test_flap_expands_to_partitions(self):
        plan = FaultPlan().flap("devices", start=0.0, cycles=3,
                                down_for=5.0, up_for=5.0)
        kinds = [event.kind for event in plan.events()]
        assert kinds == ["link_down", "link_up"] * 3

    def test_bounded_packet_loss_clears_itself(self):
        plan = FaultPlan().packet_loss("devices", rate=0.2,
                                       start=10.0, duration=50.0)
        events = plan.events()
        assert events[0].params["rate"] == 0.2
        assert events[1].at == 60.0
        assert events[1].params["rate"] == 0.0

    def test_named_plans_build(self):
        for name in NAMED_PLANS:
            plan = build_plan(name, horizon=600.0)
            assert plan.name == name

    def test_unknown_named_plan(self):
        with pytest.raises(KeyError):
            build_plan("meteor-strike", horizon=600.0)


class TestTargetResolution:
    def test_symbolic_targets_resolve(self):
        testbed = deploy()
        controller = ChaosController(testbed)
        assert controller._addresses("broker") == [testbed.broker.address]
        assert testbed.server.address in controller._addresses("server")
        alice = controller._addresses("device:alice")
        assert testbed.nodes["alice"].phone.address in alice
        assert controller._addresses("devices") == alice
        assert controller._addresses("some/raw-address") == ["some/raw-address"]

    def test_unknown_device_raises(self):
        controller = ChaosController(deploy())
        with pytest.raises(FaultTargetError):
            controller._addresses("device:nobody")

    def test_unknown_plugin_raises(self):
        testbed = deploy()
        controller = ChaosController(testbed)
        controller.apply(FaultPlan().plugin_outage("myspace", 10.0, 10.0))
        with pytest.raises(FaultTargetError):
            testbed.run(20.0)

    def test_unknown_kind_raises(self):
        testbed = deploy()
        controller = ChaosController(testbed)
        controller.apply(FaultPlan().add("gremlins", 1.0, "broker"))
        with pytest.raises(FaultTargetError):
            testbed.run(5.0)


class TestInjection:
    def test_partition_fires_on_schedule(self):
        testbed = deploy()
        controller = ChaosController(testbed)
        controller.apply(FaultPlan().partition("device:alice",
                                               start=testbed.world.now + 10.0,
                                               duration=20.0))
        phone = testbed.nodes["alice"].phone.address
        testbed.run(15.0)
        assert testbed.network.is_down(phone)
        testbed.run(20.0)
        assert not testbed.network.is_down(phone)
        assert len(controller.injected) == 2
        assert "link_down" in controller.injected[0][1]

    def test_plugin_outage_suppresses_actions(self):
        testbed = deploy()
        start = testbed.world.now + 5.0
        controller = ChaosController(testbed)
        controller.apply(FaultPlan().plugin_outage("facebook", start=start,
                                                   duration=60.0))
        testbed.run(10.0)  # inside the outage
        assert not testbed.facebook_plugin.started
        testbed.facebook.perform_action("alice", "post", content="unseen")
        testbed.run(120.0)  # outage over
        assert testbed.facebook_plugin.started
        missed_during_outage = testbed.server.actions_received
        testbed.facebook.perform_action("alice", "post", content="seen")
        testbed.run(120.0)
        assert testbed.server.actions_received == missed_during_outage + 1

    def test_device_reboot_queues_then_drains(self):
        testbed = deploy()
        controller = ChaosController(testbed)
        controller.apply(FaultPlan().device_reboot(
            "alice", at=testbed.world.now + 60.0, downtime=90.0))
        testbed.run(120.0)  # mid-reboot
        manager = testbed.nodes["alice"].manager
        assert not manager.mqtt.client.connected or manager.health()["queued"] >= 0
        testbed.run(480.0)  # well past recovery
        health = manager.health()
        assert health["connected"]
        assert health["queued"] == 0
        assert testbed.server.records_received == health["enqueued"]

    def test_report_accounts_injections_and_delivery(self):
        testbed = deploy()
        controller = ChaosController(testbed)
        # Downtime must outlast the watchdog grace (1.5 × 60 s
        # keep-alive) or clients never even notice the restart.
        controller.apply(FaultPlan("bump").broker_restart(
            at=testbed.world.now + 60.0, downtime=120.0))
        testbed.run(600.0)
        report = controller.report()
        assert report.plan_name == "bump"
        assert len(report.injected) == 2
        assert report.broker["crashes"] == 1
        assert report.broker["restarts"] == 1
        assert report.records_lost == 0
        assert report.recovery_delays  # someone reconnected post-restart
        text = report.format()
        assert "records lost" in text
        assert "broker_crash" in text
