"""Unit tests for the measurement tooling."""

import pytest

from repro.device.battery import Battery, EnergyCategory
from repro.device.cpu import CpuModel
from repro.metrics import (
    CpuProfiler,
    EnergyMeter,
    LatencyStats,
    MemoryProfiler,
    count_lines,
    count_tree,
)


class TestEnergyMeter:
    def test_delta_between_start_and_stop(self, world):
        battery = Battery()
        battery.drain(1.0, "pre", EnergyCategory.IDLE)  # before metering
        meter = EnergyMeter(world, battery).start()
        battery.drain(0.5, "x", EnergyCategory.SAMPLING)
        world.run_for(10.0)
        assert meter.stop() == pytest.approx(0.5)

    def test_samples_at_one_hz(self, world):
        battery = Battery()
        meter = EnergyMeter(world, battery).start()
        world.run_for(10.0)
        meter.stop()
        assert len(meter.samples) == 11  # t=0..10 inclusive

    def test_average_per_interval(self, world):
        battery = Battery()
        meter = EnergyMeter(world, battery).start()
        battery.drain(6.0, "x", EnergyCategory.SAMPLING)
        world.run_for(3600.0)
        meter.stop()
        assert meter.average_mah_per(60.0, 3600.0) == pytest.approx(0.1)

    def test_category_breakdown(self, world):
        battery = Battery()
        battery.drain(9.0, "x", EnergyCategory.TRANSMISSION)  # before
        meter = EnergyMeter(world, battery).start()
        battery.drain(1.0, "x", EnergyCategory.SAMPLING)
        battery.drain(2.0, "x", EnergyCategory.TRANSMISSION)
        meter.stop()
        assert meter.category_mah(EnergyCategory.SAMPLING) == pytest.approx(1.0)
        assert meter.category_mah(EnergyCategory.TRANSMISSION) == \
            pytest.approx(2.0)

    def test_invalid_duration_rejected(self, world):
        meter = EnergyMeter(world, Battery()).start()
        meter.stop()
        with pytest.raises(ValueError):
            meter.average_mah_per(60.0, 0.0)


class TestCpuProfiler:
    def test_mean_of_steady_load(self, world):
        cpu = CpuModel()
        cpu.set_load("x", 12.0)
        profiler = CpuProfiler(world, cpu).start()
        world.run_for(10.0)
        assert profiler.stop() == pytest.approx(12.0)

    def test_pulse_visible_in_max(self, world):
        cpu = CpuModel()
        profiler = CpuProfiler(world, cpu).start()
        world.run_for(2.0)
        cpu.pulse(50.0)
        world.run_for(2.0)
        profiler.stop()
        assert profiler.max_pct() == pytest.approx(50.0)
        assert profiler.mean_pct() < 50.0

    def test_empty_profile_is_zero(self, world):
        profiler = CpuProfiler(world, CpuModel())
        assert profiler.mean_pct() == 0.0


class TestMemoryProfiler:
    def test_snapshot_reflects_heap(self, phone):
        snapshot = MemoryProfiler.profile(phone)
        assert snapshot.heap_allocated_mb == pytest.approx(
            phone.heap.allocated_mb, abs=0.01)
        assert snapshot.objects == phone.heap.object_count
        assert snapshot.heap_allowed_mb > snapshot.heap_allocated_mb


class TestLatencyStats:
    def test_mean_and_std(self):
        stats = LatencyStats.of([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.std == pytest.approx(0.8165, abs=1e-3)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.count == 3

    def test_empty_sample(self):
        stats = LatencyStats.of([])
        assert stats.count == 0
        assert stats.mean == 0.0


class TestCloc:
    def test_counts_code_comments_blanks(self, tmp_path):
        source = tmp_path / "module.py"
        source.write_text('"""Doc."""\n\n# comment\nx = 1\n\ny = 2\n')
        count = count_lines(source)
        assert count.code_lines == 3  # docstring + two assignments
        assert count.comment_lines == 1
        assert count.blank_lines == 2

    def test_count_tree_recurses_and_filters(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.py").write_text("y = 2\nz = 3\n")
        (tmp_path / "sub" / "notes.txt").write_text("ignored\n")
        count = count_tree(tmp_path)
        assert count.files == 2
        assert count.code_lines == 3

    def test_count_tree_excludes_pycache(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
        assert count_tree(tmp_path).files == 0

    def test_count_tree_on_single_file(self, tmp_path):
        source = tmp_path / "one.py"
        source.write_text("pass\n")
        assert count_tree(source).files == 1

    def test_counts_add(self):
        from repro.metrics.cloc import LineCount
        total = LineCount(1, 10, 2, 3) + LineCount(2, 20, 1, 1)
        assert total.files == 3
        assert total.code_lines == 30
