"""Property-based tests of broker routing correctness."""

import string

from hypothesis import given, settings, strategies as st

from repro.core.common import (
    Condition,
    Filter,
    Granularity,
    ModalityType,
    Operator,
    StreamConfig,
)
from repro.mqtt import MqttBroker, MqttClient
from repro.net import FixedLatency, Network
from repro.simkit import World

client_names = st.lists(
    st.text(string.ascii_lowercase, min_size=1, max_size=6),
    min_size=1, max_size=8, unique=True)


class TestBrokerRoutingProperties:
    @settings(max_examples=25, deadline=None)
    @given(client_names)
    def test_private_topics_never_leak(self, names):
        """N clients each subscribed to their own topic: every client
        receives exactly its own messages, never a neighbour's."""
        world = World(seed=3)
        network = Network(world, default_latency=FixedLatency(0.001))
        MqttBroker(world, network)
        inboxes = {}
        clients = {}
        for name in names:
            client = MqttClient(world, network, client_id=name,
                                address=f"host/{name}")
            client.connect()
            clients[name] = client
            inboxes[name] = []
        world.run_for(0.1)
        for name, client in clients.items():
            client.subscribe(f"private/{name}",
                             lambda topic, payload, n=name:
                             inboxes[n].append(payload))
        world.run_for(0.1)
        for name, client in clients.items():
            client.publish(f"private/{name}", f"for-{name}")
        world.run_for(0.5)
        for name in names:
            assert inboxes[name] == [f"for-{name}"]

    @settings(max_examples=25, deadline=None)
    @given(client_names, st.integers(min_value=1, max_value=5))
    def test_shared_topic_fans_out_to_everyone(self, names, message_count):
        world = World(seed=4)
        network = Network(world, default_latency=FixedLatency(0.001))
        MqttBroker(world, network)
        inboxes = {name: [] for name in names}
        for name in names:
            client = MqttClient(world, network, client_id=name,
                                address=f"host/{name}")
            client.connect()
            world.run_for(0.05)
            client.subscribe("shared/topic",
                             lambda topic, payload, n=name:
                             inboxes[n].append(payload))
        publisher = MqttClient(world, network, client_id="publisher",
                               address="host/publisher")
        publisher.connect()
        world.run_for(0.1)
        for index in range(message_count):
            publisher.publish("shared/topic", index)
        world.run_for(0.5)
        for name in names:
            assert inboxes[name] == list(range(message_count))


level_strategy = st.sampled_from(["a", "b", "c"])
filter_strategy = st.builds(
    lambda levels, tail: "/".join(levels + tail),
    st.lists(st.sampled_from(["a", "b", "c", "+"]), min_size=1, max_size=3),
    st.sampled_from([[], ["#"]]))
topic_strategy = st.builds("/".join,
                           st.lists(level_strategy, min_size=1, max_size=4))
subscription_strategy = st.lists(
    st.tuples(st.sampled_from(["c1", "c2", "c3", "c4", "c5"]),
              filter_strategy,
              st.integers(min_value=0, max_value=1)),
    max_size=20)


class TestTrieMatchesBruteForce:
    @settings(max_examples=200)
    @given(subscription_strategy, topic_strategy)
    def test_trie_agrees_with_topic_matches_scan(self, subscriptions, topic):
        """The routing trie's (client → max qos) table must equal the
        brute-force scan over every subscription — wildcards, ``#``
        parent matches and per-client qos maximisation included."""
        from repro.mqtt.subtrie import SubscriptionTrie
        from repro.mqtt.topics import topic_matches, validate_filter

        trie = SubscriptionTrie()
        table = {}
        for client_id, topic_filter, qos in subscriptions:
            table[(client_id, topic_filter)] = qos
            trie.add(validate_filter(topic_filter), client_id, qos)
        expected = {}
        for (client_id, topic_filter), qos in table.items():
            if topic_matches(topic_filter, topic):
                if qos > expected.get(client_id, -1):
                    expected[client_id] = qos
        assert trie.match(topic.split("/")) == expected

    @settings(max_examples=100)
    @given(subscription_strategy, topic_strategy,
           st.data())
    def test_equivalence_survives_random_discards(self, subscriptions,
                                                  topic, data):
        from repro.mqtt.subtrie import SubscriptionTrie
        from repro.mqtt.topics import topic_matches, validate_filter

        trie = SubscriptionTrie()
        table = {}
        for client_id, topic_filter, qos in subscriptions:
            table[(client_id, topic_filter)] = qos
            trie.add(validate_filter(topic_filter), client_id, qos)
        keys = sorted(table)
        doomed = data.draw(st.sets(st.sampled_from(keys), max_size=len(keys))
                           if keys else st.just(set()))
        for client_id, topic_filter in doomed:
            del table[(client_id, topic_filter)]
            trie.discard(validate_filter(topic_filter), client_id)
        assert len(trie) == len(table)
        expected = {}
        for (client_id, topic_filter), qos in table.items():
            if topic_matches(topic_filter, topic):
                if qos > expected.get(client_id, -1):
                    expected[client_id] = qos
        assert trie.match(topic.split("/")) == expected


unicode_values = st.text(min_size=0, max_size=20).filter(
    lambda text: "\x00" not in text)


class TestXmlRoundTripUnicode:
    @settings(max_examples=50)
    @given(unicode_values)
    def test_condition_values_survive_xml(self, value):
        """Filter condition values — including unicode post content in
        CONTAINS conditions — survive the config XML round trip."""
        config = StreamConfig(
            stream_id="s", device_id="d",
            modality=ModalityType.MICROPHONE,
            granularity=Granularity.CLASSIFIED,
            filter=Filter([Condition(ModalityType.FACEBOOK_ACTIVITY,
                                     Operator.CONTAINS, value)]))
        restored = StreamConfig.from_xml(config.to_xml())
        assert restored.filter.conditions[0].value == value
