"""Routing-trie equivalence: the trie must agree with the brute-force
scan it replaced — matched clients, per-client QoS, and delivery order.

``topic_matches`` is the reference oracle (unchanged by the overhaul);
the randomized tests confront :class:`SubscriptionTrie` /
:class:`RetainedTrie` with generated filter/topic populations and
demand identical answers, including the MQTT 3.1.1 corner cases
(``a/#`` matching ``a`` itself, ``+`` matching empty levels).
"""

import random

from repro.mqtt import packets
from repro.mqtt.broker import MqttBroker
from repro.mqtt.subtrie import RetainedTrie, SubscriptionTrie
from repro.mqtt.topics import topic_matches, validate_filter, validate_topic
from repro.net.network import Network
from repro.simkit.world import World

_LEVELS = ["a", "b", "c", ""]


def _random_filter(rng: random.Random) -> str:
    depth = rng.randint(1, 4)
    levels = [rng.choice(_LEVELS + ["+"]) for _ in range(depth)]
    if rng.random() < 0.25:
        levels.append("#")
    candidate = "/".join(levels)
    try:
        validate_filter(candidate)
    except Exception:
        return _random_filter(rng)
    return candidate


def _random_topic(rng: random.Random) -> str:
    depth = rng.randint(1, 4)
    topic = "/".join(rng.choice(_LEVELS) for _ in range(depth))
    # A single empty level is the empty string — not a legal topic.
    return topic if topic else _random_topic(rng)


def _brute_force(subscriptions, topic: str) -> dict[str, int]:
    """The old router's answer: scan every (client, filter, qos)."""
    matched: dict[str, int] = {}
    for client_id, topic_filter, qos in subscriptions:
        if topic_matches(topic_filter, topic):
            best = matched.get(client_id)
            if best is None or qos > best:
                matched[client_id] = qos
    return matched


class TestSubscriptionTrieEquivalence:
    def test_randomized_population_matches_brute_force(self):
        rng = random.Random(1234)
        subscriptions = []
        trie = SubscriptionTrie()
        for i in range(300):
            client_id = f"c{i % 40}"
            topic_filter = _random_filter(rng)
            qos = rng.randint(0, 1)
            # Re-subscribing to the same filter replaces the qos, both
            # in the trie and in the oracle table.
            subscriptions = [s for s in subscriptions
                             if not (s[0] == client_id and s[1] == topic_filter)]
            subscriptions.append((client_id, topic_filter, qos))
            trie.add(validate_filter(topic_filter), client_id, qos)
        for _ in range(200):
            topic = _random_topic(rng)
            try:
                validate_topic(topic)
            except Exception:
                continue
            assert trie.match(topic.split("/")) == \
                _brute_force(subscriptions, topic), topic

    def test_randomized_discard_keeps_equivalence(self):
        rng = random.Random(99)
        subscriptions = []
        trie = SubscriptionTrie()
        for i in range(200):
            entry = (f"c{i % 25}", _random_filter(rng), rng.randint(0, 1))
            subscriptions = [s for s in subscriptions
                             if not (s[0] == entry[0] and s[1] == entry[1])]
            subscriptions.append(entry)
            trie.add(validate_filter(entry[1]), entry[0], entry[2])
        rng.shuffle(subscriptions)
        keep = subscriptions[: len(subscriptions) // 2]
        for client_id, topic_filter, _qos in subscriptions[len(keep):]:
            trie.discard(validate_filter(topic_filter), client_id)
        assert len(trie) == len(keep)
        for _ in range(150):
            topic = _random_topic(rng)
            assert trie.match(topic.split("/")) == _brute_force(keep, topic)

    def test_discard_everything_prunes_to_empty(self):
        trie = SubscriptionTrie()
        filters = ["a/b/c", "a/+/c", "a/#", "#", "+/+", "a/b"]
        for topic_filter in filters:
            trie.add(validate_filter(topic_filter), "c1", 0)
        for topic_filter in filters:
            trie.discard(validate_filter(topic_filter), "c1")
        assert len(trie) == 0
        assert trie._root.is_empty()
        assert trie.match(["a", "b", "c"]) == {}

    def test_hash_matches_parent_level_itself(self):
        trie = SubscriptionTrie()
        trie.add(validate_filter("a/#"), "c1", 1)
        assert trie.match(["a"]) == {"c1": 1}
        assert trie.match(["a", "b", "c"]) == {"c1": 1}
        assert trie.match(["b"]) == {}

    def test_max_qos_across_overlapping_filters(self):
        trie = SubscriptionTrie()
        trie.add(validate_filter("a/b"), "c1", 0)
        trie.add(validate_filter("a/+"), "c1", 1)
        trie.add(validate_filter("#"), "c1", 0)
        assert trie.match(["a", "b"]) == {"c1": 1}
        assert trie.match(["a", "z"]) == {"c1": 1}
        assert trie.match(["q"]) == {"c1": 0}

    def test_match_work_is_counted(self):
        trie = SubscriptionTrie()
        trie.add(validate_filter("a/b"), "c1", 0)
        before = trie.checks
        trie.match(["a", "b"])
        assert trie.checks > before


class TestRetainedTrieEquivalence:
    def test_match_filter_agrees_with_scan_and_is_topic_sorted(self):
        rng = random.Random(7)
        trie = RetainedTrie()
        table = {}
        for i in range(120):
            topic = _random_topic(rng)
            value = f"v{i}"
            table[topic] = value
            trie.set(topic.split("/"), value)
        for _ in range(80):
            topic_filter = _random_filter(rng)
            expected = sorted(
                (topic, value) for topic, value in table.items()
                if topic_matches(topic_filter, topic))
            assert trie.match_filter(validate_filter(topic_filter)) == expected

    def test_delete_prunes_and_items_round_trips(self):
        trie = RetainedTrie()
        trie.set(["a", "b"], 1)
        trie.set(["a", "c"], 2)
        trie.delete(["a", "b"])
        assert dict(trie.items()) == {"a/c": 2}
        trie.delete(["a", "c"])
        assert dict(trie.items()) == {}
        assert not trie._root.children


class TestBrokerDeliveryOrder:
    def _broker(self):
        world = World(seed=5)
        network = Network(world)
        broker = MqttBroker(world, network, address="order-broker")
        return world, network, broker

    def _connect(self, network, broker, client_id, log):
        address = network.register(
            f"host/{client_id}",
            lambda message, n=client_id: log.append((n, message.payload)))
        broker._on_connect(address, packets.Connect(client_id=client_id))
        return address

    def test_fanout_delivers_in_sorted_client_order(self):
        """The trie returns an unordered match table; ``route`` must
        still deliver in sorted client-id order (the historical order
        of the all-sessions scan)."""
        world, network, broker = self._broker()
        log = []
        # Register out of order so insertion order != sorted order.
        for client_id in ["c3", "c1", "c4", "c2"]:
            address = self._connect(network, broker, client_id, log)
            broker._on_subscribe(address, packets.Subscribe(
                packet_id=1, topic_filter="shared/topic"))
        log.clear()
        delivered = broker.route(packets.Publish(
            topic="shared/topic", payload="x", qos=0))
        world.run_for(1.0)
        assert delivered == 4
        arrivals = [name for name, packet in log
                    if isinstance(packet, packets.Publish)]
        assert arrivals == ["c1", "c2", "c3", "c4"]

    def test_delivered_qos_is_min_of_max_filter_and_packet(self):
        world, network, broker = self._broker()
        log = []
        address = self._connect(network, broker, "c1", log)
        broker._on_subscribe(address, packets.Subscribe(
            packet_id=1, topic_filter="a/b", qos=0))
        broker._on_subscribe(address, packets.Subscribe(
            packet_id=2, topic_filter="a/+", qos=1))
        log.clear()
        broker.route(packets.Publish(topic="a/b", payload="p", qos=1))
        broker.route(packets.Publish(topic="a/b", payload="p", qos=0))
        world.run_for(1.0)
        delivered = [packet.qos for _name, packet in log
                     if isinstance(packet, packets.Publish)]
        assert delivered == [1, 0]

    def test_unsubscribe_and_clean_connect_leave_no_stale_routes(self):
        world, network, broker = self._broker()
        log = []
        address = self._connect(network, broker, "c1", log)
        broker._on_subscribe(address, packets.Subscribe(
            packet_id=1, topic_filter="t/1"))
        broker._on_subscribe(address, packets.Subscribe(
            packet_id=2, topic_filter="t/2"))
        broker._on_unsubscribe(address, packets.Unsubscribe(
            packet_id=3, topic_filter="t/1"))
        assert broker.route(packets.Publish(topic="t/1", payload=1, qos=0)) == 0
        assert broker.route(packets.Publish(topic="t/2", payload=1, qos=0)) == 1
        # A clean re-CONNECT wipes the session: its trie entries go too.
        broker._on_connect(address, packets.Connect(client_id="c1"))
        assert broker.route(packets.Publish(topic="t/2", payload=1, qos=0)) == 0
        assert len(broker._subscriptions) == 0
        world.run_for(1.0)

    def test_retained_delivery_order_is_topic_sorted(self):
        world, network, broker = self._broker()
        log = []
        publisher = self._connect(network, broker, "pub", log)
        for topic in ["r/c", "r/a", "r/b"]:
            broker._on_publish(publisher, packets.Publish(
                topic=topic, payload=topic, qos=0, retain=True))
        subscriber = self._connect(network, broker, "sub", log)
        log.clear()
        broker._on_subscribe(subscriber, packets.Subscribe(
            packet_id=1, topic_filter="r/+"))
        world.run_for(1.0)
        retained = [packet.payload for name, packet in log
                    if name == "sub" and isinstance(packet, packets.Publish)]
        assert retained == ["r/a", "r/b", "r/c"]
