"""Remaining-surface tests: small APIs not covered elsewhere."""

import pytest

from repro.mqtt import MqttBroker, MqttClient
from repro.net import FixedLatency, Network
from repro.scenarios.paris import FIGURE2_FRIENDSHIPS, FIGURE2_USERS
from repro.simkit import World


class TestMqttClientSurface:
    @pytest.fixture
    def stack(self):
        world = World(seed=61)
        network = Network(world, default_latency=FixedLatency(0.01))
        MqttBroker(world, network)
        client = MqttClient(world, network, client_id="c", address="host/c")
        client.connect()
        world.run_for(0.1)
        return world, client

    def test_subscription_filters_listed(self, stack):
        world, client = stack
        client.subscribe("a/b", lambda topic, payload: None)
        client.subscribe("x/#", lambda topic, payload: None)
        assert client.subscription_filters() == ["a/b", "x/#"]
        client.unsubscribe("a/b")
        assert client.subscription_filters() == ["x/#"]

    def test_multiple_callbacks_per_filter(self, stack):
        world, client = stack
        first, second = [], []
        client.subscribe("t", lambda topic, payload: first.append(payload))
        client.subscribe("t", lambda topic, payload: second.append(payload))
        world.run_for(0.1)
        client.publish("t", 1)
        world.run_for(0.1)
        assert first == [1]
        assert second == [1]

    def test_publish_counters(self, stack):
        world, client = stack
        client.subscribe("t", lambda topic, payload: None)
        world.run_for(0.1)
        client.publish("t", 1)
        client.publish("t", 2)
        world.run_for(0.2)
        assert client.publishes_sent == 2
        assert client.publishes_received == 2

    def test_disconnect_is_idempotent(self, stack):
        _, client = stack
        client.disconnect()
        client.disconnect()
        assert not client.connected


class TestServerManagerSurface:
    def test_plugins_listed(self, testbed):
        assert len(testbed.server.plugins()) == 2
        platforms = {plugin.platform for plugin in testbed.server.plugins()}
        assert platforms == {"facebook", "twitter"}

    def test_create_stream_for_unknown_user_rejected(self, testbed):
        from repro.core.common import Granularity, ModalityType
        from repro.core.common.errors import MiddlewareError
        with pytest.raises(MiddlewareError):
            testbed.server.create_stream("ghost", ModalityType.WIFI,
                                         Granularity.RAW)


class TestPhoneSendSize:
    def test_explicit_size_controls_radio_bytes(self, world, network,
                                                env_registry):
        from repro.device.phone import Smartphone
        a = Smartphone(world, network, env_registry, "sender")
        b = Smartphone(world, network, env_registry, "receiver")
        a.send(b.address, "x", {"tiny": 1}, size=5000)
        assert a.radio.bytes_tx == 5000


class TestParisConstants:
    def test_figure2_population(self):
        assert FIGURE2_USERS == {"A": "Paris", "B": "Paris", "C": "Bordeaux",
                                 "D": "Bordeaux", "E": "Bordeaux"}
        assert FIGURE2_FRIENDSHIPS == [("A", "C"), ("A", "D")]

    def test_scenario_builder_wires_friendships(self):
        from repro.scenarios import build_paris_scenario
        testbed = build_paris_scenario(seed=1)
        assert testbed.server.database.friends_of("A") == ["C", "D"]
        assert testbed.facebook.graph.are_friends("A", "C")
        assert not testbed.facebook.graph.are_friends("B", "E")
