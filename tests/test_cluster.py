"""Tests for the sharded server cluster (`repro.cluster`).

Pins the three load-bearing invariants of the refactor:

1. a 1-shard cluster is **bit-identical** to the monolithic server —
   same record stream (ids, timestamps, values), same health counters,
   same network traffic, byte for byte;
2. multi-shard routing is lossless and complete: every device's data
   lands on exactly the shard the ring owns it on, cross-shard
   multicasts see the same records the 1-shard baseline sees;
3. rebalance migrates a dead shard's users, documents, dedup ids and
   live stream handles, so delivery survives the crash with zero
   acknowledged-record loss.

Plus the satellite regressions: per-world/per-manager naming counters
(back-to-back runs must produce identical names).

ISSUE 6 adds the elastic lifecycle (`TestElasticLifecycle`): scale-out
with snapshot bootstrap, scale-in by drain+handoff, rolling upgrades,
bounded dedup replication, hot-shard elasticity advice, and the
grown-then-shrunk == never-resized equivalence.
"""

import pytest

from repro.cluster import (
    ClusterCoordinator,
    ConsistentHashRing,
    ShardWorker,
)
from repro.core.common import Filter, Granularity, ModalityType
from repro.core.common.errors import MiddlewareError
from repro.core.server.multicast import MulticastQuery
from repro.scenarios.testbed import SenSocialTestbed

USERS = ["alice", "bob", "carol", "dave"]


def deploy(shards, seed=7, users=USERS, durability=False):
    testbed = SenSocialTestbed(seed=seed, shards=shards,
                               durability=durability)
    for user_id in users:
        testbed.add_user(user_id, "Paris")
    return testbed


def fingerprint(testbed, records):
    """Everything a run exposes: record stream, counters, traffic."""
    health = testbed.server.health()
    return {
        "records": records,
        "received": health["records_received"],
        "acks": health["acks_sent"],
        "now": testbed.world.now,
        "sent": testbed.network.messages_sent,
        "delivered": testbed.network.messages_delivered,
        "bytes": sum(node.phone.radio.bytes_tx + node.phone.radio.bytes_rx
                     for node in testbed.nodes.values()),
        "charge": sum(node.phone.battery.consumed_mah
                      for node in testbed.nodes.values()),
    }


def drive(testbed, seconds=600.0):
    records = []
    stream = testbed.server.create_stream(
        "alice", ModalityType.ACCELEROMETER, Granularity.CLASSIFIED)
    stream.add_listener(lambda record: records.append(
        (record.stream_id, record.user_id, record.timestamp,
         repr(record.value))))
    testbed.run(seconds)
    return fingerprint(testbed, records)


class TestRing:
    def test_deterministic_placement(self):
        ring = ConsistentHashRing(["shard-0", "shard-1", "shard-2"])
        again = ConsistentHashRing(["shard-2", "shard-0", "shard-1"])
        keys = [f"d{i:04d}" for i in range(50)]
        assert [ring.owner(k) for k in keys] == [again.owner(k) for k in keys]

    def test_removal_moves_only_dead_shards_keys(self):
        ring = ConsistentHashRing([f"shard-{i}" for i in range(4)])
        keys = [f"d{i:04d}" for i in range(100)]
        before = {key: ring.owner(key) for key in keys}
        ring.remove("shard-2")
        for key in keys:
            if before[key] != "shard-2":
                assert ring.owner(key) == before[key]
            else:
                assert ring.owner(key) != "shard-2"

    def test_spec_round_trip(self):
        ring = ConsistentHashRing(["a", "b"], vnodes=32)
        rebuilt = ConsistentHashRing.from_spec(ring.to_spec())
        keys = [f"k{i}" for i in range(40)]
        assert [ring.owner(k) for k in keys] == [rebuilt.owner(k) for k in keys]

    def test_empty_ring_rejects_lookup(self):
        with pytest.raises(MiddlewareError):
            ConsistentHashRing().owner("d0001")


class TestPassthroughBitIdentity:
    def test_one_shard_cluster_matches_monolith(self):
        mono = drive(deploy(shards=None))
        one = drive(deploy(shards=1))
        assert one == mono

    def test_one_shard_durable_cluster_matches_durable_monolith(self):
        mono = drive(deploy(shards=None, durability=True))
        one = drive(deploy(shards=1, durability=True))
        assert one == mono

    def test_passthrough_keeps_monolith_addressing(self):
        testbed = deploy(shards=1, users=["alice"])
        assert testbed.server.address == "sensocial-server"
        assert testbed.server.mqtt.client_id == "sensocial-server"
        worker = testbed.server.shard_workers()[0]
        assert worker.registration_partition is None


class TestMultiShardRouting:
    def test_each_shard_holds_only_its_partition(self):
        testbed = deploy(shards=3)
        coordinator = testbed.server
        for worker in coordinator.shard_workers():
            for user_id in worker.database.user_ids():
                device = worker.database.device_of(user_id)
                assert coordinator.ring.owner(device) == worker.shard_id

    def test_every_user_registered_exactly_once(self):
        testbed = deploy(shards=3)
        assert testbed.server.registered_users() == sorted(USERS)
        counts = [len(w.database.user_ids())
                  for w in testbed.server.shard_workers()]
        assert sum(counts) == len(USERS)

    def test_records_route_to_owning_shard(self):
        testbed = deploy(shards=3)
        for user_id in USERS:
            testbed.server.create_stream(
                user_id, ModalityType.ACCELEROMETER, Granularity.CLASSIFIED)
        testbed.run(600)
        coordinator = testbed.server
        assert coordinator.health()["records_received"] > 0
        for worker in coordinator.shard_workers():
            for doc in worker.database.records.find():
                assert coordinator.ring.owner(doc["device_id"]) \
                    == worker.shard_id

    def test_stream_ids_globally_unique_and_ordered(self):
        testbed = deploy(shards=3)
        ids = [testbed.server.create_stream(
            user_id, ModalityType.ACCELEROMETER,
            Granularity.CLASSIFIED).stream_id for user_id in USERS]
        assert ids == [f"srv-s{i}" for i in range(1, len(USERS) + 1)]

    def test_befriend_crosses_shards(self):
        testbed = deploy(shards=3)
        testbed.befriend("alice", "bob")
        assert "bob" in testbed.server.database.friends_of("alice")
        assert "alice" in testbed.server.database.friends_of("bob")


class TestCrossShardMulticast:
    def run_multicast(self, shards):
        testbed = deploy(shards=shards, seed=9)
        testbed.befriend("alice", "bob")
        testbed.befriend("alice", "carol")
        records = []
        multicast = testbed.server.create_multicast_stream(
            ModalityType.ACCELEROMETER, Granularity.CLASSIFIED,
            MulticastQuery(friends_of="alice"))
        multicast.add_listener(lambda record: records.append(
            (record.user_id, repr(record.value))))
        members = multicast.members()
        testbed.run(600)
        return members, records, multicast

    def test_cross_shard_multicast_matches_one_shard_baseline(self):
        members_1, records_1, _ = self.run_multicast(shards=1)
        members_4, records_4, _ = self.run_multicast(shards=4)
        assert members_4 == members_1 == ["bob", "carol"]
        # Same record set, same order, same callback count: shard
        # placement must be invisible to the multicast surface.
        assert records_4 == records_1
        assert records_1  # the baseline actually flowed data

    def test_multicast_name_scoped_to_coordinator(self):
        _, _, first = self.run_multicast(shards=4)
        _, _, second = self.run_multicast(shards=4)
        assert first.name == second.name == "mcast-1"

    def test_geo_multicast_refreshes_on_cluster(self):
        testbed = deploy(shards=3, seed=9)
        multicast = testbed.server.create_multicast_stream(
            ModalityType.ACCELEROMETER, Granularity.CLASSIFIED,
            MulticastQuery(place="Paris"))
        refreshes = multicast.refreshes
        testbed.run(400)  # periodic location updates arrive
        assert multicast.refreshes > refreshes
        assert multicast.members() == sorted(USERS)


class TestRebalance:
    def crashed_cluster(self, durability=True):
        testbed = deploy(shards=4, seed=11, durability=durability)
        for user_id in USERS:
            testbed.server.create_stream(
                user_id, ModalityType.ACCELEROMETER, Granularity.CLASSIFIED)
        testbed.run(300)
        coordinator = testbed.server
        victim = None
        for index, worker in enumerate(coordinator.shard_workers()):
            if worker.database.user_ids():
                victim = index
                break
        assert victim is not None
        return testbed, coordinator, victim

    def test_rebalance_migrates_users_records_and_streams(self):
        testbed, coordinator, victim = self.crashed_cluster()
        dead = coordinator.shard_workers()[victim]
        users_before = set(coordinator.registered_users())
        dead_users = len(dead.database.user_ids())
        dead_records = dead.records_received
        dead_streams = len(dead.streams)
        assert dead_records > 0 and dead_users > 0
        coordinator.crash_shard(victim)
        testbed.run(30)
        records_before = coordinator.health()["records_received"]
        result = coordinator.rebalance()
        assert result["retired"] == [dead.shard_id]
        assert result["migrated"]["users"] == dead_users
        assert result["migrated"]["records"] == dead_records
        assert result["migrated"]["streams"] == dead_streams
        assert dead.retired
        # Every user is still registered, on a surviving shard.
        assert set(coordinator.registered_users()) == users_before
        for worker in coordinator.shard_workers():
            assert worker is not dead
        # The dead shard's ingest stays counted cluster-wide.
        assert coordinator.health()["records_received"] == records_before

    def test_delivery_continues_after_rebalance(self):
        testbed, coordinator, victim = self.crashed_cluster()
        coordinator.crash_shard(victim)
        testbed.run(30)
        coordinator.rebalance()
        before = coordinator.health()["records_received"]
        per_user_before = {
            user_id: len(coordinator.database.records_of(user_id))
            for user_id in USERS}
        testbed.run(600)
        assert coordinator.health()["records_received"] > before
        for user_id in USERS:
            assert len(coordinator.database.records_of(user_id)) \
                > per_user_before[user_id], user_id

    def test_zero_acknowledged_record_loss(self):
        testbed, coordinator, victim = self.crashed_cluster()
        coordinator.crash_shard(victim)
        testbed.run(60)
        coordinator.rebalance()
        testbed.run(600)
        testbed.run(120)  # quiet tail: outboxes drain, retries land
        enqueued = sum(node.manager.health()["enqueued"]
                       for node in testbed.nodes.values())
        queued = sum(node.manager.health()["queued"]
                     for node in testbed.nodes.values())
        dropped = sum(node.manager.health()["dropped"]
                      for node in testbed.nodes.values())
        ingested = coordinator.health()["records_received"]
        assert enqueued - queued - dropped - ingested == 0

    def test_rebalance_without_crash_is_a_noop(self):
        testbed = deploy(shards=2)
        assert testbed.server.rebalance() == {"retired": [], "migrated": {}}

    def test_one_shard_cluster_cannot_rebalance(self):
        testbed = deploy(shards=1, users=["alice"])
        with pytest.raises(MiddlewareError):
            testbed.server.rebalance()

    def test_retired_shard_never_restarts(self):
        testbed, coordinator, victim = self.crashed_cluster()
        coordinator.crash_shard(victim)
        testbed.run(10)
        coordinator.rebalance()
        with pytest.raises(MiddlewareError):
            coordinator.restart_shard(victim)


class TestClusterHealth:
    def test_health_aggregates_all_shards(self):
        testbed = deploy(shards=3)
        for user_id in USERS:
            testbed.server.create_stream(
                user_id, ModalityType.ACCELEROMETER, Granularity.CLASSIFIED)
        testbed.run(300)
        health = testbed.server.health()
        shard_sum = sum(doc["counters"]["records_received"]
                        for doc in health["shards"].values())
        assert health["records_received"] == shard_sum > 0
        assert health["status"] == "ok"
        assert health["ring"]["members"] == ["shard-0", "shard-1", "shard-2"]

    def test_crashed_shard_degrades_cluster(self):
        testbed = deploy(shards=3)
        testbed.server.crash_shard(0)
        assert testbed.server.health()["status"] == "degraded"
        testbed.server.restart_shard(0)
        assert testbed.server.health()["status"] == "ok"

    def test_whole_cluster_crash_is_down(self):
        testbed = deploy(shards=2, users=["alice"])
        testbed.server.crash()
        assert testbed.server.crashed
        assert testbed.server.health()["status"] == "down"
        testbed.server.restart()
        assert not testbed.server.crashed


def zero_loss(testbed):
    """Acked-record conservation: enqueued = queued + dropped + ingested."""
    enqueued = sum(node.manager.health()["enqueued"]
                   for node in testbed.nodes.values())
    queued = sum(node.manager.health()["queued"]
                 for node in testbed.nodes.values())
    dropped = sum(node.manager.health()["dropped"]
                  for node in testbed.nodes.values())
    ingested = testbed.server.health()["records_received"]
    return enqueued - queued - dropped - ingested


class TestElasticLifecycle:
    def streaming_cluster(self, shards, seed=13, durability=True):
        testbed = deploy(shards=shards, seed=seed, durability=durability)
        for user_id in USERS:
            testbed.server.create_stream(
                user_id, ModalityType.ACCELEROMETER, Granularity.CLASSIFIED)
        testbed.run(300)
        return testbed

    def test_add_shard_migrates_ownership_delta(self):
        testbed = self.streaming_cluster(shards=2)
        coordinator = testbed.server
        devices = sorted({worker.database.device_of(user_id)
                          for worker in coordinator.shard_workers()
                          for user_id in worker.database.user_ids()})
        before = {device: coordinator.ring.owner(device)
                  for device in devices}
        entry = coordinator.add_shard()
        moved = [device for device in devices
                 if coordinator.ring.owner(device) != before[device]]
        # The consistent-hash delta is exactly what migrated; every
        # moved key moved *to* the new shard, never between survivors.
        assert entry["moved_devices"] == len(moved)
        assert all(coordinator.ring.owner(device) == entry["shard"]
                   for device in moved)
        assert entry["migrated"]["users"] == len(moved)
        assert coordinator.verify_consistent() == []
        testbed.run(600)
        testbed.run(120)
        assert zero_loss(testbed) == 0
        assert coordinator.verify_consistent() == []
        # The new shard actually serves its slice.
        new = coordinator.shard_workers()[-1]
        if moved:
            assert new.records_received > 0

    def test_snapshot_bootstrap_skips_the_journal(self):
        testbed = self.streaming_cluster(shards=2)
        entry = testbed.server.add_shard(strategy="snapshot")
        assert entry["bootstrap"]["journal_appends"] == 0
        assert entry["bootstrap"]["checkpoints"] == 1

    def test_replay_bootstrap_journals_every_document(self):
        testbed = self.streaming_cluster(shards=2)
        entry = testbed.server.add_shard(strategy="replay")
        assert entry["bootstrap"]["journal_appends"] \
            == entry["bootstrap"]["documents"] > 0

    def test_add_shard_rejects_unknown_strategy(self):
        testbed = deploy(shards=2)
        with pytest.raises(MiddlewareError):
            testbed.server.add_shard(strategy="teleport")

    def test_add_shard_converts_passthrough_in_place(self):
        testbed = self.streaming_cluster(shards=1)
        coordinator = testbed.server
        records = []
        coordinator.register_listener(
            lambda record: records.append(record.stream_id))
        multicast = coordinator.create_multicast_stream(
            ModalityType.ACCELEROMETER, Granularity.CLASSIFIED,
            MulticastQuery(user_ids=tuple(USERS)))
        coordinator.add_shard()
        # The coordinator took over the public ingress; the worker kept
        # its MQTT identity (broker session untouched) but moved to its
        # own shard address.
        assert coordinator.address == "sensocial-server"
        worker = coordinator.shard_workers()[0]
        assert worker.address == "sensocial-shard-0"
        assert worker.mqtt.client_id == "sensocial-server"
        assert multicast._manager is coordinator
        seen = len(records)
        testbed.run(600)
        testbed.run(120)
        assert len(records) > seen  # listener survived the conversion
        assert zero_loss(testbed) == 0
        assert coordinator.verify_consistent() == []

    def test_shard_ids_never_reused(self):
        testbed = self.streaming_cluster(shards=2)
        coordinator = testbed.server
        coordinator.add_shard()
        coordinator.remove_shard(2)
        entry = coordinator.add_shard()
        # shard-2 retired; the replacement must not inherit its id (or
        # its broker session / journal state).
        assert entry["shard"] == "shard-3"

    def test_remove_shard_drains_and_hands_off(self):
        testbed = self.streaming_cluster(shards=3)
        coordinator = testbed.server
        victim = coordinator.shard_workers()[0]
        users_before = set(coordinator.registered_users())
        victim_users = len(victim.database.user_ids())
        entry = coordinator.remove_shard(0)
        assert victim.retired
        assert not victim.mqtt.connected  # clean session teardown
        assert entry["migrated"]["users"] == victim_users
        assert set(coordinator.registered_users()) == users_before
        assert coordinator.verify_consistent() == []
        testbed.run(600)
        testbed.run(120)
        assert zero_loss(testbed) == 0
        for user_id in USERS:
            assert len(coordinator.database.records_of(user_id)) > 0

    def test_remove_shard_rejects_bad_targets(self):
        testbed = deploy(shards=2)
        testbed.server.crash_shard(0)
        with pytest.raises(MiddlewareError):  # crashed -> rebalance()
            testbed.server.remove_shard(0)
        testbed.server.restart_shard(0)
        testbed.server.remove_shard(0)
        with pytest.raises(MiddlewareError):  # already retired
            testbed.server.remove_shard(0)
        with pytest.raises(MiddlewareError):  # last active shard
            testbed.server.remove_shard(1)
        one = deploy(shards=1, users=["alice"])
        with pytest.raises(MiddlewareError):  # passthrough
            one.server.remove_shard(0)

    def test_rolling_restart_keeps_serving(self):
        testbed = self.streaming_cluster(shards=3)
        coordinator = testbed.server
        users_before = set(coordinator.registered_users())
        received_before = coordinator.health()["records_received"]
        summary = coordinator.rolling_restart()
        assert summary["shards"] == ["shard-0", "shard-1", "shard-2"]
        assert all(not shard.crashed
                   for shard in coordinator.shard_workers())
        # Durable shards recovered their documents through the journal.
        assert set(coordinator.registered_users()) == users_before
        assert coordinator.health()["records_received"] == received_before
        testbed.run(600)
        testbed.run(120)
        assert coordinator.health()["records_received"] > received_before
        assert zero_loss(testbed) == 0
        assert coordinator.verify_consistent() == []

    def test_upgrade_rejects_retired_shard(self):
        testbed = self.streaming_cluster(shards=2)
        testbed.server.remove_shard(0)
        with pytest.raises(MiddlewareError):
            testbed.server.upgrade_shard(0)

    def test_grown_then_shrunk_matches_never_resized(self):
        def run(resize):
            testbed = deploy(shards=1, seed=7)
            records = []
            stream = testbed.server.create_stream(
                "alice", ModalityType.ACCELEROMETER, Granularity.CLASSIFIED)
            stream.add_listener(lambda record: records.append(
                (record.stream_id, record.user_id, record.timestamp,
                 repr(record.value))))
            testbed.run(200.0)
            if resize:
                testbed.server.add_shard()
                testbed.run(200.0)
                testbed.server.add_shard()
                testbed.run(200.0)
                testbed.server.remove_shard(1)
                testbed.run(100.0)
                testbed.server.remove_shard(2)
                testbed.run(300.0)
            else:
                testbed.run(800.0)
            docs = sorted(
                (doc["device_id"], doc["stream_id"], doc["timestamp"],
                 repr(doc["value"]))
                for user_id in USERS
                for doc in testbed.server.database.records_of(user_id))
            return (records, docs,
                    testbed.server.health()["records_received"],
                    len(testbed.server.shard_workers()))

        mono = run(resize=False)
        resized = run(resize=True)
        # Bit-identical record streams (ids, timestamps, values), same
        # stored documents, same ingest count — growing to 3 shards and
        # shrinking back to 1 is invisible to the simulation output.
        assert resized == mono
        assert resized[3] == 1
        assert mono[0]  # the baseline actually flowed data

    def test_dedup_replication_is_bounded(self):
        from repro.core.server.dedup import RecordDeduper
        deduper = RecordDeduper(window=8)
        for index in range(8):
            deduper.seen(f"own-{index}")
        retained = deduper.merge_replicated(
            [f"foreign-{index}" for index in range(20)])
        # The window bound holds and the survivor's own (newer) ids
        # all outlive the replicated (older) ones.
        assert retained == 0
        assert len(deduper) == 8
        assert all(f"own-{index}" in deduper for index in range(8))
        half = RecordDeduper(window=8)
        for index in range(4):
            half.seen(f"own-{index}")
        assert half.merge_replicated(["a", "b", "c", "d", "e", "f"]) == 4
        assert len(half) == 8
        assert half.replicated == 4

    def test_survivor_windows_stay_bounded_across_lifecycle(self):
        testbed = self.streaming_cluster(shards=3)
        coordinator = testbed.server
        window = coordinator.shard_workers()[0].dedup.window
        coordinator.crash_shard(0)
        testbed.run(30)
        coordinator.rebalance()
        coordinator.add_shard()
        coordinator.remove_shard(1)
        testbed.run(300)
        for shard in coordinator.shard_workers():
            assert len(shard.dedup) <= window

    def test_elasticity_advice_flags_hot_shard(self):
        testbed = self.streaming_cluster(shards=2)
        coordinator = testbed.server
        hot = coordinator.shard_workers()[0]
        hot.records_received += 10000  # synthetic skew
        advice = coordinator.elasticity_advice()
        assert advice["hot_shards"] == [hot.shard_id]
        assert advice["skew"] >= advice["threshold"]
        assert advice["recommend_add_shard"]

    def test_maybe_autoscale_acts_on_hot_shard(self):
        testbed = self.streaming_cluster(shards=2)
        coordinator = testbed.server
        balanced = coordinator.maybe_autoscale()
        assert not balanced["scaled"]  # no skew -> no action
        coordinator.shard_workers()[0].records_received += 10000
        advice = coordinator.maybe_autoscale()
        assert advice["scaled"]
        assert len(coordinator.shard_workers()) == 3
        assert coordinator.maybe_autoscale(max_shards=3)["scaled"] is False

    def test_verify_consistent_reports_drift(self):
        testbed = deploy(shards=2)
        coordinator = testbed.server
        assert coordinator.verify_consistent() == []
        coordinator.ring.add("shard-99")  # simulated split brain
        problems = coordinator.verify_consistent()
        assert problems
        assert any("shard-99" in problem for problem in problems)

    def test_lifecycle_log_records_step_timings(self):
        testbed = self.streaming_cluster(shards=2)
        coordinator = testbed.server
        coordinator.add_shard()
        coordinator.remove_shard(0)
        report = coordinator.cluster_report()
        ops = [entry["op"] for entry in report["lifecycle"]]
        assert ops == ["add_shard", "remove_shard"]
        for entry in report["lifecycle"]:
            assert entry["step_timings_s"]
            assert all(seconds >= 0
                       for seconds in entry["step_timings_s"].values())
        assert report["scale_outs"] == 1
        assert report["scale_ins"] == 1


class TestNamingCounterScoping:
    """Module-global naming counters leaked across back-to-back runs;
    all naming is now world- or manager-scoped (ISSUE 5 satellite)."""

    def names(self):
        testbed = deploy(shards=None, seed=3, users=["alice", "bob"])
        stream = testbed.server.create_stream(
            "alice", ModalityType.ACCELEROMETER, Granularity.CLASSIFIED)
        multicast = testbed.server.create_multicast_stream(
            ModalityType.LOCATION, Granularity.CLASSIFIED,
            MulticastQuery(user_ids=("alice", "bob")))
        action = testbed.facebook.perform_action(
            "alice", "post", content="hi")
        devices = sorted(node.phone.device_id
                         for node in testbed.nodes.values())
        return (stream.stream_id, multicast.name, action.action_id, devices)

    def test_back_to_back_runs_produce_identical_names(self):
        assert self.names() == self.names()
