"""Unit tests for battery, CPU, heap, radio and the smartphone."""

import pytest

from repro.device import (
    Battery,
    CpuModel,
    DeviceError,
    EnergyCategory,
    HeapModel,
    Radio,
    SensorError,
    Smartphone,
)
from repro.device import calibration
from repro.simkit import World


class TestBattery:
    def test_drain_accumulates(self):
        battery = Battery(capacity_mah=100)
        battery.drain(1.0, "gps", EnergyCategory.SAMPLING)
        battery.drain(2.0, "gps", EnergyCategory.SAMPLING)
        assert battery.consumed_mah == 3.0
        assert battery.remaining_mah == 97.0

    def test_ledger_filters(self):
        battery = Battery()
        battery.drain(1.0, "gps", EnergyCategory.SAMPLING)
        battery.drain(2.0, "radio", EnergyCategory.TRANSMISSION)
        battery.drain(4.0, "gps", EnergyCategory.CLASSIFICATION)
        assert battery.consumed_by(component="gps") == 5.0
        assert battery.consumed_by(category=EnergyCategory.TRANSMISSION) == 2.0
        assert battery.consumed_by("gps", EnergyCategory.SAMPLING) == 1.0

    def test_level_in_unit_range(self):
        battery = Battery(capacity_mah=10)
        battery.drain(5.0, "x", EnergyCategory.IDLE)
        assert battery.level == 0.5

    def test_negative_drain_rejected(self):
        with pytest.raises(DeviceError):
            Battery().drain(-1.0, "x", EnergyCategory.IDLE)

    def test_zero_capacity_rejected(self):
        with pytest.raises(DeviceError):
            Battery(capacity_mah=0)


class TestCpu:
    def test_steady_loads_sum(self):
        cpu = CpuModel(base_load_pct=1.0)
        cpu.set_load("a", 2.0)
        cpu.set_load("b", 3.0)
        assert cpu.steady_load_pct() == 6.0

    def test_pulse_consumed_by_next_sample(self):
        cpu = CpuModel()
        cpu.pulse(10.0)
        assert cpu.utilization_pct() == 10.0
        assert cpu.utilization_pct() == 0.0

    def test_capped_at_100(self):
        cpu = CpuModel()
        cpu.set_load("huge", 500.0)
        assert cpu.utilization_pct() == 100.0

    def test_clear_load(self):
        cpu = CpuModel()
        cpu.set_load("a", 5.0)
        cpu.clear_load("a")
        assert cpu.steady_load_pct() == 0.0

    def test_negative_load_rejected(self):
        with pytest.raises(DeviceError):
            CpuModel().set_load("a", -1.0)


class TestHeap:
    def test_allocations_accumulate_per_owner(self):
        heap = HeapModel()
        heap.allocate("core", 2.0, 1000)
        heap.allocate("core", 1.0, 500)
        assert heap.allocated_mb == 3.0
        assert heap.object_count == 1500

    def test_free_releases(self):
        heap = HeapModel()
        heap.allocate("a", 2.0, 100)
        heap.allocate("b", 3.0, 200)
        heap.free("a")
        assert heap.allocated_mb == 3.0
        assert heap.object_count == 200

    def test_allowed_tracks_high_water_mark(self):
        heap = HeapModel(headroom_factor=1.1)
        heap.allocate("a", 10.0, 1)
        peak_allowed = heap.allowed_mb
        heap.free("a")
        assert heap.allowed_mb == peak_allowed  # limit never shrinks
        assert peak_allowed == pytest.approx(11.0)

    def test_negative_allocation_rejected(self):
        with pytest.raises(DeviceError):
            HeapModel().allocate("a", -1.0, 0)


class TestRadio:
    def make(self):
        world = World(seed=1)
        battery = Battery()
        return world, battery, Radio(world, battery)

    def test_tx_charges_overhead_plus_bytes(self):
        world, battery, radio = self.make()
        radio.account_tx(1000)
        expected = (calibration.RADIO_TX_OVERHEAD_MAH
                    + 1000 * calibration.RADIO_TX_PER_BYTE_MAH)
        assert battery.consumed_mah == pytest.approx(expected)

    def test_burst_within_tail_skips_overhead(self):
        world, battery, radio = self.make()
        radio.account_tx(1000)
        first = battery.consumed_mah
        radio.account_tx(1000)  # still inside the tail window
        second = battery.consumed_mah - first
        assert second == pytest.approx(1000 * calibration.RADIO_TX_PER_BYTE_MAH)

    def test_burst_after_tail_pays_overhead_again(self):
        world, battery, radio = self.make()
        radio.account_tx(1000)
        world.scheduler.run_until(calibration.RADIO_TAIL_SECONDS + 1)
        first = battery.consumed_mah
        radio.account_tx(1000)
        assert battery.consumed_mah - first > \
            1000 * calibration.RADIO_TX_PER_BYTE_MAH

    def test_control_packets_pay_reduced_overhead(self):
        world, battery, radio = self.make()
        radio.account_tx(10)  # below the control threshold
        assert battery.consumed_mah < calibration.RADIO_TX_OVERHEAD_MAH

    def test_control_packets_do_not_extend_tail(self):
        world, battery, radio = self.make()
        radio.account_tx(10)
        assert not radio.in_tail

    def test_rx_cheaper_than_tx(self):
        world, battery, radio = self.make()
        radio.account_rx(1000)
        rx_cost = battery.consumed_mah
        radio.account_tx(1000)
        tx_cost = battery.consumed_mah - rx_cost
        assert rx_cost < tx_cost

    def test_byte_counters(self):
        world, battery, radio = self.make()
        radio.account_tx(100)
        radio.account_rx(50)
        assert radio.bytes_tx == 100
        assert radio.bytes_rx == 50


class TestSmartphone:
    def test_phone_has_five_sensors(self, phone):
        assert phone.supported_modalities() == [
            "accelerometer", "bluetooth", "location", "microphone", "wifi"]

    def test_unknown_sensor_rejected(self, phone):
        with pytest.raises(SensorError):
            phone.sensor("thermometer")

    def test_phone_registers_network_address(self, phone, network):
        assert network.is_registered(phone.address)

    def test_base_app_heap_allocated(self, phone):
        assert phone.heap.allocated_mb == pytest.approx(
            calibration.HEAP_BASE_APP_MB)
        assert phone.heap.object_count == calibration.HEAP_BASE_APP_OBJECTS

    def test_idle_drain_accrues_over_time(self, world, phone):
        world.run_for(3600.0)
        idle = phone.battery.consumed_by(category=EnergyCategory.IDLE)
        assert idle == pytest.approx(calibration.IDLE_DRAIN_MAH_PER_HOUR, rel=0.05)

    def test_protocol_dispatch(self, world, network, env_registry):
        a = Smartphone(world, network, env_registry, "ua")
        b = Smartphone(world, network, env_registry, "ub")
        received = []
        b.on_protocol("ping", lambda payload, message: received.append(payload))
        a.send(b.address, "ping", {"n": 1})
        world.run_for(1.0)
        assert received == [{"n": 1}]

    def test_unknown_protocol_ignored(self, world, network, env_registry):
        a = Smartphone(world, network, env_registry, "ua2")
        b = Smartphone(world, network, env_registry, "ub2")
        a.send(b.address, "mystery", {})
        world.run_for(1.0)  # must not raise

    def test_transmission_charged_to_sender_radio(self, world, network,
                                                  env_registry):
        a = Smartphone(world, network, env_registry, "ua3")
        b = Smartphone(world, network, env_registry, "ub3")
        a.send(b.address, "ping", "x" * 500)
        world.run_for(1.0)
        assert a.battery.consumed_by(
            category=EnergyCategory.TRANSMISSION) > 0
        assert b.battery.consumed_by(
            category=EnergyCategory.RECEPTION) > 0
