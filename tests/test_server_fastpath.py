"""Server fan-out fast path: filter gates and the OSN trigger index.

The gate cache must be invisible except in the work counters — a
stream's cross-user verdict is identical to evaluating its conditions
from scratch, but repeated checks between context changes cost zero
condition evaluations.  Invalidations are surgical: only gates that
depend on the touched ``(user, modality)`` cell re-evaluate.
"""

import pytest

from repro.core.common import (
    Condition,
    Filter,
    Granularity,
    ModalityType,
    ModalityValue,
    Operator,
)
from repro.core.common.records import StreamRecord
from repro.core.server.filter_manager import (
    OSN_ACTIVE_WINDOW_S,
    ServerFilterManager,
)
from repro.device import ActivityState
from repro.simkit.world import World


def _record(user_id: str, modality: ModalityType, value,
            granularity: Granularity = Granularity.CLASSIFIED) -> StreamRecord:
    return StreamRecord(stream_id="s", user_id=user_id, device_id="d",
                        modality=modality, granularity=granularity,
                        timestamp=0.0, value=value)


def _walking_filter(user_id: str = "bob") -> Filter:
    return Filter([Condition(ModalityType.PHYSICAL_ACTIVITY, Operator.EQUALS,
                             ModalityValue.WALKING, user_id=user_id)])


class TestGateCache:
    @pytest.fixture
    def manager(self):
        return ServerFilterManager(World(seed=1))

    def test_verdict_cached_between_context_changes(self, manager):
        gate_filter = _walking_filter()
        manager.observe_record(_record(
            "bob", ModalityType.PHYSICAL_ACTIVITY, ModalityValue.WALKING))
        assert manager.stream_allows("s1", gate_filter)
        evaluated = manager.conditions_evaluated
        for _ in range(10):
            assert manager.stream_allows("s1", gate_filter)
        assert manager.conditions_evaluated == evaluated
        assert manager.gate_cache_hits == 10

    def test_dependent_record_invalidates_and_flips_verdict(self, manager):
        gate_filter = _walking_filter()
        manager.observe_record(_record(
            "bob", ModalityType.PHYSICAL_ACTIVITY, ModalityValue.WALKING))
        assert manager.stream_allows("s1", gate_filter)
        manager.observe_record(_record(
            "bob", ModalityType.PHYSICAL_ACTIVITY, "still"))
        assert not manager.stream_allows("s1", gate_filter)

    def test_unrelated_records_do_not_invalidate(self, manager):
        gate_filter = _walking_filter()
        manager.observe_record(_record(
            "bob", ModalityType.PHYSICAL_ACTIVITY, ModalityValue.WALKING))
        assert manager.stream_allows("s1", gate_filter)
        evaluations = manager.gate_evaluations
        # Another user's activity, and bob's *other* modalities, leave
        # the cached verdict standing.
        manager.observe_record(_record(
            "carol", ModalityType.PHYSICAL_ACTIVITY, "still"))
        manager.observe_record(_record("bob", ModalityType.WIFI, ["ap1"],
                                       granularity=Granularity.RAW))
        assert manager.stream_allows("s1", gate_filter)
        assert manager.gate_evaluations == evaluations

    def test_classified_record_invalidates_virtual_modality_gates(self, manager):
        """A classified accelerometer record feeds PHYSICAL_ACTIVITY
        context, so it must invalidate gates watching that modality."""
        gate_filter = _walking_filter()
        manager.observe_record(_record(
            "bob", ModalityType.ACCELEROMETER, ActivityState.WALKING.value))
        assert manager.stream_allows("s1", gate_filter)
        manager.observe_record(_record(
            "bob", ModalityType.ACCELEROMETER, ActivityState.STILL.value))
        assert not manager.stream_allows("s1", gate_filter)

    def test_swapped_filter_re_registers(self, manager):
        manager.observe_record(_record(
            "bob", ModalityType.PHYSICAL_ACTIVITY, ModalityValue.WALKING))
        assert manager.stream_allows("s1", _walking_filter())
        still = Filter([Condition(ModalityType.PHYSICAL_ACTIVITY,
                                  Operator.EQUALS, "still", user_id="bob")])
        assert not manager.stream_allows("s1", still)

    def test_empty_cross_conditions_short_circuit(self, manager):
        local_only = Filter([Condition(ModalityType.PHYSICAL_ACTIVITY,
                                       Operator.EQUALS, "walking")])
        evaluated = manager.conditions_evaluated
        assert manager.stream_allows("s1", local_only)
        assert manager.stream_allows("s1", Filter())
        assert manager.conditions_evaluated == evaluated

    def test_drop_gate_cleans_the_dependency_index(self, manager):
        gate_filter = _walking_filter()
        manager.stream_allows("s1", gate_filter)
        assert manager._dependents
        manager.drop_gate("s1")
        assert not manager._gates
        assert not manager._dependents


class TestOsnWindowExpiry:
    def test_cached_active_verdict_expires_with_the_window(self):
        world = World(seed=2)
        manager = ServerFilterManager(world)
        gate_filter = Filter([Condition(ModalityType.FACEBOOK_ACTIVITY,
                                        Operator.EQUALS, ModalityValue.ACTIVE,
                                        user_id="bob")])
        manager.mark_osn_active("bob", ModalityType.FACEBOOK_ACTIVITY)
        assert manager.stream_allows("s1", gate_filter)
        # Mid-window: cached, no re-evaluation.
        world.run_for(OSN_ACTIVE_WINDOW_S / 2)
        evaluations = manager.gate_evaluations
        assert manager.stream_allows("s1", gate_filter)
        assert manager.gate_evaluations == evaluations
        # Past the window: the verdict must flip with NO invalidation
        # event — time alone expires it.
        world.run_for(OSN_ACTIVE_WINDOW_S)
        assert not manager.stream_allows("s1", gate_filter)

    def test_inactive_verdict_holds_until_marked_active(self):
        world = World(seed=3)
        manager = ServerFilterManager(world)
        gate_filter = Filter([Condition(ModalityType.FACEBOOK_ACTIVITY,
                                        Operator.EQUALS, ModalityValue.ACTIVE,
                                        user_id="bob")])
        assert not manager.stream_allows("s1", gate_filter)
        evaluations = manager.gate_evaluations
        world.run_for(1000.0)
        assert not manager.stream_allows("s1", gate_filter)
        assert manager.gate_evaluations == evaluations
        manager.mark_osn_active("bob", ModalityType.FACEBOOK_ACTIVITY)
        assert manager.stream_allows("s1", gate_filter)


class TestTriggerIndex:
    def test_only_streams_watching_the_actor_fire(self, testbed):
        """§4.2 trigger routing through the index: an OSN action must
        reach exactly the streams conditioned on the acting user."""
        testbed.add_user("alice", "Paris")
        testbed.add_user("bob", "Paris")
        testbed.add_user("carol", "Paris")

        def watch(user_id):
            return testbed.server.create_stream(
                "alice", ModalityType.WIFI, Granularity.RAW,
                stream_filter=Filter([Condition(
                    ModalityType.FACEBOOK_ACTIVITY, Operator.EQUALS,
                    ModalityValue.ACTIVE, user_id=user_id)]))

        on_bob, on_carol = watch("bob"), watch("carol")
        bob_records, carol_records = [], []
        on_bob.add_listener(bob_records.append)
        on_carol.add_listener(carol_records.append)
        testbed.run(100.0)
        testbed.facebook.perform_action("bob", "post", content="ping")
        testbed.run(100.0)
        assert len(bob_records) >= 1
        assert carol_records == []

    def test_destroyed_stream_leaves_the_index(self, testbed):
        testbed.add_user("alice", "Paris")
        testbed.add_user("bob", "Paris")
        stream = testbed.server.create_stream(
            "alice", ModalityType.WIFI, Granularity.RAW,
            stream_filter=Filter([Condition(
                ModalityType.FACEBOOK_ACTIVITY, Operator.EQUALS,
                ModalityValue.ACTIVE, user_id="bob")]))
        assert testbed.server._osn_trigger_index.get("bob")
        testbed.server.destroy_stream(stream.stream_id)
        assert not testbed.server._osn_trigger_index.get("bob")
        assert stream.stream_id not in testbed.server._stream_order
        records = []
        stream.add_listener(records.append)
        testbed.run(50.0)
        testbed.facebook.perform_action("bob", "post", content="ping")
        testbed.run(100.0)
        assert records == []

    def test_updated_filter_keeps_creation_order_fanout(self, testbed):
        """Re-filing a stream under new trigger users must not move it
        to the back of the fan-out: triggers go out in creation order
        (exactly what the old full-scan over ``streams`` produced)."""
        testbed.add_user("alice", "Paris")
        testbed.add_user("bob", "Paris")

        def watching_bob():
            return Filter([Condition(
                ModalityType.FACEBOOK_ACTIVITY, Operator.EQUALS,
                ModalityValue.ACTIVE, user_id="bob")])

        streams = [testbed.server.create_stream(
            "alice", ModalityType.WIFI, Granularity.RAW,
            stream_filter=watching_bob()) for _ in range(3)]
        # Touch the middle stream's filter: the index bucket re-inserts
        # it last, but _stream_order must keep it in the middle.
        testbed.server.update_stream_filter(streams[1], watching_bob())
        sent = []
        triggers = testbed.server.triggers
        original = triggers.send_action_trigger

        def spy(device_id, action, stream_ids=None):
            if stream_ids:
                sent.extend(stream_ids)
            return original(device_id, action, stream_ids=stream_ids)

        triggers.send_action_trigger = spy
        try:
            testbed.run(50.0)
            testbed.facebook.perform_action("bob", "post", content="ping")
            testbed.run(100.0)
        finally:
            triggers.send_action_trigger = original
        expected = [stream.stream_id for stream in streams]
        assert sent[:3] == expected

    def test_gate_cache_pays_off_in_a_real_run(self, testbed):
        """End to end: a continuous stream whose cross-user dependency
        never changes evaluates its conditions once; every further
        record rides the cached verdict."""
        alice = testbed.add_user("alice", "Paris")
        alice.mobility.stop()
        testbed.add_user("bob", "Paris")
        # Bob streams nothing, so his activity context never changes —
        # the gate's verdict (False: unobserved never satisfies) is
        # computed once and cached for the whole run.
        stream = testbed.server.create_stream(
            "alice", ModalityType.WIFI, Granularity.RAW,
            stream_filter=_walking_filter("bob"))
        testbed.run(600.0)
        assert stream.records_suppressed > 1
        filters = testbed.server.filters
        assert filters.gate_cache_hits > 0
        total_checks = filters.gate_cache_hits + filters.gate_evaluations
        assert filters.gate_evaluations < total_checks
