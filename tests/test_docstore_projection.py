"""Tests for MongoDB-style projections and lifecycle edge cases."""

import pytest

from repro.docstore import DocumentStore, QueryError


@pytest.fixture
def people():
    collection = DocumentStore()["people"]
    collection.insert_many([
        {"name": "alice", "age": 30, "home": {"city": "Paris", "zip": "75001"},
         "secret": "s1"},
        {"name": "bob", "age": 25, "home": {"city": "Lyon", "zip": "69001"},
         "secret": "s2"},
    ])
    return collection


class TestProjection:
    def test_include_mode_keeps_named_fields_and_id(self, people):
        document = people.find_one({"name": "alice"}, projection={"name": 1})
        assert set(document) == {"name", "_id"}

    def test_include_mode_with_dot_path(self, people):
        document = people.find_one({"name": "alice"},
                                   projection={"home.city": 1})
        assert document["home"] == {"city": "Paris"}
        assert "age" not in document

    def test_exclude_mode_drops_named_fields(self, people):
        document = people.find_one({"name": "alice"},
                                   projection={"secret": 0})
        assert "secret" not in document
        assert document["age"] == 30

    def test_id_can_be_suppressed(self, people):
        document = people.find_one({"name": "alice"},
                                   projection={"name": 1, "_id": 0})
        assert set(document) == {"name"}

    def test_mixed_modes_rejected(self, people):
        with pytest.raises(QueryError):
            people.find({}, projection={"name": 1, "secret": 0}).to_list()

    def test_projection_composes_with_sort_and_limit(self, people):
        rows = people.find({}, projection={"name": 1}).sort(
            "name", -1).limit(1).to_list()
        assert rows == [{"name": "bob", "_id": rows[0]["_id"]}]

    def test_missing_projected_field_omitted(self, people):
        people.insert_one({"name": "carol"})
        document = people.find_one({"name": "carol"}, projection={"age": 1})
        assert "age" not in document

    def test_projection_does_not_mutate_store(self, people):
        people.find_one({"name": "alice"}, projection={"secret": 0})
        assert people.find_one({"name": "alice"})["secret"] == "s1"
