"""Calendar-queue event wheel: equivalence, compaction, self-tuning.

The load-bearing property: the wheel and the heap fire the *identical*
``(time, seq)`` total order under every scheduler behaviour — nested
schedules, exact-time ties, cancellation (including compaction sweeps)
and periodic churn.  ``equivalence_check`` drives one randomized
program through both queues and diffs the complete logs; the suite
sweeps seeds, and ``oracle_gate`` is what ``World(scheduler="wheel")``
runs before trusting the wheel.
"""

from __future__ import annotations

import pytest

from repro.simkit import (
    HeapEventQueue,
    Scheduler,
    SimulationError,
    World,
    build_event_queue,
)
from repro.simkit.wheel import CalendarEventQueue, equivalence_check, oracle_gate


class TestEquivalenceOracle:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_programs_fire_identically(self, seed):
        report = equivalence_check(seed=seed, ops=250)
        assert report["match"], report["divergence"]
        assert report["events"] > 100  # the program actually ran

    def test_narrow_buckets_still_identical(self):
        # Width far below the event spacing: every event its own bucket.
        report = equivalence_check(seed=3, ops=200, bucket_width=0.01)
        assert report["match"], report["divergence"]

    def test_wide_buckets_still_identical(self):
        # Width far above the horizon: the wheel degrades to one heap.
        report = equivalence_check(seed=4, ops=200, bucket_width=1e6)
        assert report["match"], report["divergence"]

    def test_oracle_gate_passes_and_caches(self):
        assert oracle_gate() is True
        assert oracle_gate() is True  # cached verdict

    def test_world_accepts_wheel_selector(self):
        world = World(seed=1, scheduler="wheel")
        assert isinstance(world.scheduler.queue, CalendarEventQueue)

    def test_world_rejects_unknown_selector(self):
        with pytest.raises(SimulationError, match="unknown scheduler"):
            World(scheduler="fibonacci")

    def test_build_event_queue_passthrough(self):
        queue = CalendarEventQueue()
        assert build_event_queue(queue) is queue
        assert build_event_queue("heap") is None
        assert build_event_queue(None) is None


class TestCalendarQueueMechanics:
    def test_pops_in_time_seq_order_across_buckets(self):
        scheduler = Scheduler(queue=CalendarEventQueue(bucket_width=1.0))
        fired = []
        for at in (5.5, 0.25, 3.75, 0.75, 3.25, 5.0, 0.5):
            scheduler.schedule_at(at, fired.append, at)
        scheduler.run()
        assert fired == sorted(fired)

    def test_ties_fire_in_scheduling_order(self):
        scheduler = Scheduler(queue=CalendarEventQueue())
        fired = []
        for label in range(6):
            scheduler.schedule_at(2.0, fired.append, label)
        scheduler.run()
        assert fired == list(range(6))

    def test_rejects_nonpositive_width(self):
        with pytest.raises(SimulationError, match="bucket width"):
            CalendarEventQueue(bucket_width=0.0)

    def test_width_halves_when_one_bucket_overflows(self):
        queue = CalendarEventQueue(bucket_width=1.0)
        scheduler = Scheduler(queue=queue)
        # Spread > MAX_BUCKET distinct times inside one bucket.
        count = queue.MAX_BUCKET + 8
        for index in range(count):
            scheduler.schedule_at(0.4 * index / count, lambda: None)
        assert queue.resizes >= 1
        assert queue.bucket_width < 1.0
        assert queue.live_count() == count

    def test_same_instant_pileup_never_resizes(self):
        queue = CalendarEventQueue(bucket_width=1.0)
        scheduler = Scheduler(queue=queue)
        for _ in range(queue.MAX_BUCKET + 50):
            scheduler.schedule_at(0.5, lambda: None)
        # Narrower buckets cannot split one instant: no rebuild.
        assert queue.resizes == 0
        assert queue.bucket_width == 1.0

    def test_cancellation_compaction_sweep(self):
        queue = CalendarEventQueue()
        scheduler = Scheduler(queue=queue)
        handles = [scheduler.schedule_at(float(index), lambda: None)
                   for index in range(200)]
        for handle in handles[:120]:
            handle.cancel()
        # More than half cancelled => at least one sweep rebuilt the
        # calendar, and dead entries never reach a majority of the
        # physical size afterwards.
        assert queue.compactions >= 1
        assert queue.live_count() == 80
        physical = sum(len(b) for b in queue._buckets.values())
        assert physical < 200
        assert (physical - queue.live_count()) * 2 <= physical

    def test_peek_skips_cancelled_head(self):
        scheduler = Scheduler(queue=CalendarEventQueue())
        first = scheduler.schedule_at(1.0, lambda: None)
        scheduler.schedule_at(2.0, lambda: None)
        first.cancel()
        assert scheduler.peek_time() == 2.0

    def test_empty_buckets_are_reclaimed(self):
        queue = CalendarEventQueue(bucket_width=1.0)
        scheduler = Scheduler(queue=queue)
        for at in (0.5, 10.5, 20.5):
            scheduler.schedule_at(at, lambda: None)
        scheduler.run()
        assert queue.occupied_buckets() == 0
        assert queue.live_count() == 0


class TestHeapCompactionSweep:
    def test_cancelled_majority_triggers_sweep(self):
        queue = HeapEventQueue()
        scheduler = Scheduler(queue=queue)
        handles = [scheduler.schedule_at(float(index), lambda: None)
                   for index in range(128)]
        for handle in handles[:100]:
            handle.cancel()
        assert queue.compactions >= 1
        # The sweep reclaimed the bulk of the dead entries: the heap
        # shrank well below its 128-entry physical peak.
        assert queue.live_count() == 28
        assert len(queue._heap) < 128
        # Residual dead entries are bounded: below COMPACT_MIN the
        # sweep doesn't bother, so the slack never exceeds that floor.
        assert len(queue._heap) - queue.live_count() <= queue.COMPACT_MIN

    def test_small_queues_skip_compaction(self):
        queue = HeapEventQueue()
        scheduler = Scheduler(queue=queue)
        handles = [scheduler.schedule_at(float(index), lambda: None)
                   for index in range(10)]
        for handle in handles:
            handle.cancel()
        assert queue.compactions == 0  # below COMPACT_MIN

    def test_periodic_churn_stays_bounded(self):
        # The original leak: cancelling periodic tasks left their
        # pending occurrences in the heap forever.
        queue = HeapEventQueue()
        scheduler = Scheduler(queue=queue)
        for round_index in range(300):
            task = scheduler.every(1.0, lambda: None, delay=500.0)
            scheduler.schedule_at(float(round_index), lambda: None)
            task.cancel()
        assert len(queue._heap) <= 2 * queue.live_count() + queue.COMPACT_MIN

    def test_firing_order_unaffected_by_sweep(self):
        def run(with_cancels):
            queue = HeapEventQueue()
            scheduler = Scheduler(queue=queue)
            fired = []
            keep = [scheduler.schedule_at(float(i), fired.append, i)
                    for i in range(0, 200, 4)]
            dead = [scheduler.schedule_at(float(i), fired.append, i)
                    for i in range(200) if i % 4]
            if with_cancels:
                for handle in dead:
                    handle.cancel()
                assert queue.compactions >= 1
            scheduler.run()
            return [label for label in fired if label % 4 == 0], keep
        swept, _ = run(True)
        clean, _ = run(False)
        assert swept == clean == list(range(0, 200, 4))


class TestWheelDrivesFullTestbed:
    def test_testbed_fingerprints_identical_on_wheel(self):
        """The strongest end-to-end witness: a full SenSocial testbed
        (phones, MQTT, server ingest) run on heap vs wheel produces the
        same event count and the same docstore fingerprint."""
        from repro import Granularity, ModalityType, SenSocialTestbed
        from repro.durability.codec import fingerprint_store

        def run(scheduler):
            testbed = SenSocialTestbed(seed=11, scheduler=scheduler)
            for index, city in enumerate(("Paris", "Bordeaux")):
                node = testbed.add_user(f"user{index}", home_city=city)
                node.manager.create_stream(ModalityType.ACCELEROMETER,
                                           Granularity.CLASSIFIED,
                                           send_to_server=True)
            testbed.run(600.0)
            return (testbed.world.scheduler.events_processed,
                    fingerprint_store(testbed.server.database.store))

        assert run("heap") == run("wheel")
