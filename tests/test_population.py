"""Population substrate: streaming == eager, hibernation is lossless.

The headline claim of the scale refactor: a streaming run — devices
materialized lazily, hibernated to the columnar store under a tiny
residency cap, rehydrated on their next event — is *bit-identical* to
the eager run that keeps every device object alive.  Witnessed here
through the strongest channel available: records ride the simulated
network into a real server manager, and the docstore fingerprint plus
the server-side delivery order are compared across substrates (and
across heap/wheel schedulers).
"""

from __future__ import annotations

import pytest

from repro.scenarios import (
    SCENARIOS,
    HibernationStore,
    Population,
    ScenarioEngine,
    get_scenario,
    run_scenario,
)
from repro.scenarios.population import ActiveDevice, DeviceRng, splitmix64
from repro.simkit.errors import SimulationError


class TestDeviceRng:
    def test_sequence_depends_only_on_state(self):
        a, b = DeviceRng(12345), DeviceRng(12345)
        assert [a.random() for _ in range(20)] \
            == [b.random() for _ in range(20)]

    def test_state_roundtrip_resumes_sequence(self):
        rng = DeviceRng(999)
        rng.random()
        saved = rng.state
        tail = [rng.random() for _ in range(10)]
        resumed = DeviceRng(saved)
        assert [resumed.random() for _ in range(10)] == tail

    def test_splitmix_known_vector(self):
        # splitmix64(0) first output, per the reference implementation.
        _, out = splitmix64(0)
        assert out == 0xE220A8397B1DCDAF

    def test_uniform_in_range(self):
        rng = DeviceRng(7)
        draws = [rng.uniform(2.0, 5.0) for _ in range(200)]
        assert all(2.0 <= value < 5.0 for value in draws)

    def test_expovariate_positive(self):
        rng = DeviceRng(8)
        assert all(rng.expovariate(10.0) >= 0.0 for _ in range(200))


class TestPopulationGraph:
    def test_friends_symmetric_and_irreflexive(self):
        population = Population(200, seed=5)
        for index in range(200):
            for friend in population.friends(index):
                assert index != friend
                assert index in population.friends(friend), \
                    f"edge {index}->{friend} not symmetric"

    def test_friends_deterministic_without_state(self):
        # Two independent Population objects agree edge-for-edge:
        # nothing about the graph is stored, everything is derived.
        a, b = Population(300, seed=9), Population(300, seed=9)
        for index in range(0, 300, 7):
            assert a.friends(index) == b.friends(index)

    def test_ring_keeps_every_member_connected(self):
        population = Population(64, seed=1)
        for index in range(64):
            assert population.friends(index), f"device {index} isolated"

    def test_initial_state_deterministic(self):
        a, b = Population(50, seed=3), Population(50, seed=3)
        assert [a.initial_state(i) for i in range(50)] \
            == [b.initial_state(i) for i in range(50)]

    def test_home_city_from_shared_registry(self):
        population = Population(40, seed=2)
        names = set(population.cities.names())
        assert {population.home_city(i).name for i in range(40)} <= names

    def test_rejects_bad_sizes(self):
        with pytest.raises(SimulationError):
            Population(0)
        with pytest.raises(SimulationError):
            Population(10, community_size=1)


class TestHibernationRoundtrip:
    def test_exact_scalar_roundtrip(self):
        store = HibernationStore()
        store.append_initial(0xDEADBEEF, 2.34567891234, 48.87654321)
        device = store.rehydrate(0)
        device.rng.random()
        device.lon += 0.0123456789
        device.online = False
        device.emitted, device.buffered, device.dropped = 17, 5, 2
        saved = (device.rng.state, device.lon, device.lat, device.online,
                 device.emitted, device.buffered, device.dropped)
        store.hibernate(device)
        back = store.rehydrate(0)
        assert (back.rng.state, back.lon, back.lat, back.online,
                back.emitted, back.buffered, back.dropped) == saved

    def test_rng_sequence_survives_hibernation(self):
        store = HibernationStore()
        store.append_initial(424242, 0.0, 0.0)
        straight = store.rehydrate(0)
        expected = [straight.rng.random() for _ in range(6)]
        churned = store.rehydrate(0)
        values = []
        for _ in range(6):
            values.append(churned.rng.random())
            store.writeback(churned)
            churned = store.rehydrate(0)
        assert values == expected

    def test_store_bytes_are_columnar(self):
        store = HibernationStore()
        for index in range(1000):
            store.append_initial(index, 0.0, 0.0)
        # 3x8B (rng/lon/lat) + 1B flag + 3x8B counters = 49 B/device.
        assert store.nbytes() == 1000 * 49

    def test_active_device_is_slotted(self):
        device = ActiveDevice(0, 1, 2.0, 3.0)
        with pytest.raises(AttributeError):
            device.surprise = 1


class TestSubstrateIdentity:
    """Eager vs streaming vs wheel: the bit-identity matrix."""

    def _run(self, scenario, substrate, scheduler="heap", cap=8):
        report = run_scenario(scenario, 50, seed=9, substrate=substrate,
                              scheduler=scheduler, sink="server",
                              active_cap=cap)
        assert report["verify_problems"] == []
        return (report["docstore_fingerprint"],
                report["delivery_fingerprint"], report["emitted"],
                report["delivered"], report["acks"])

    def test_city_day_eager_equals_streaming(self):
        eager = self._run("city-day", "eager")
        streaming = self._run("city-day", "streaming")
        assert eager == streaming

    def test_streaming_identical_under_residency_pressure(self):
        # cap=2 forces hibernation churn on nearly every event.
        assert self._run("city-day", "streaming", cap=2) \
            == self._run("city-day", "streaming", cap=32)

    def test_wheel_equals_heap_on_scenario(self):
        assert self._run("city-day", "streaming", scheduler="wheel") \
            == self._run("city-day", "streaming", scheduler="heap")

    def test_dtn_buffering_identical_across_substrates(self):
        eager = self._run("dtn-partition", "eager")
        streaming = self._run("dtn-partition", "streaming", cap=4)
        assert eager == streaming

    def test_cascade_identical_across_substrates(self):
        eager = self._run("viral-cascade", "eager")
        streaming = self._run("viral-cascade", "streaming", cap=4)
        assert eager == streaming


class TestScenarioLibrary:
    def test_four_named_scenarios_ship(self):
        assert {"city-day", "flash-crowd", "viral-cascade",
                "dtn-partition"} <= set(SCENARIOS)

    def test_unknown_scenario_lists_available(self):
        with pytest.raises(SimulationError, match="city-day"):
            get_scenario("block-party")

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_scenario_runs_clean(self, name):
        report = run_scenario(name, 150, seed=4, active_cap=32)
        assert report["verify_problems"] == []
        assert report["activated"] == 150
        assert report["emitted"] == report["delivered"] \
            + report["buffered_residual"] + report["dropped"]
        assert report["events"] > 150

    def test_arrival_times_monotone(self):
        for spec in SCENARIOS.values():
            times = [spec.arrival_time(i, 1000, spec.horizon_s)
                     for i in range(0, 1000, 13)]
            assert times == sorted(times)
            assert all(0.0 <= t <= spec.horizon_s for t in times)

    def test_flash_crowd_burst_raises_event_rate(self):
        flat = run_scenario("city-day", 200, seed=6, active_cap=64)
        crowd = run_scenario("flash-crowd", 200, seed=6, active_cap=64)
        # Same population; the burst window multiplies the crowd's
        # sensing rate, so flash-crowd emits measurably more per
        # horizon-hour than the diurnal day does.
        flat_rate = flat["emitted"] / flat["horizon_s"]
        crowd_rate = crowd["emitted"] / crowd["horizon_s"]
        assert crowd_rate > flat_rate

    def test_cascade_emits_osn_actions(self):
        report = run_scenario("viral-cascade", 400, seed=2, active_cap=64)
        assert report["cascade_actions"] > 0
        assert report["cascade_skipped"] == 0

    def test_dtn_partition_buffers_and_flushes(self):
        report = run_scenario("dtn-partition", 200, seed=8, active_cap=64)
        assert report["flushes"] > 0
        assert report["emitted"] == report["delivered"] \
            + report["buffered_residual"] + report["dropped"]

    def test_chaos_requires_an_episode(self):
        with pytest.raises(SimulationError, match="chaos"):
            ScenarioEngine(get_scenario("city-day"), 10, chaos=True)

    def test_flash_crowd_chaos_partitions_and_recovers(self):
        report = run_scenario("flash-crowd", 300, seed=1, active_cap=64,
                              chaos=True)
        assert report["verify_problems"] == []
        assert report["flushes"] > 0  # partitioned devices rejoined


class TestResidencyBounds:
    def test_streaming_respects_active_cap(self):
        engine = ScenarioEngine(get_scenario("city-day"), 300, seed=3,
                                active_cap=16)
        engine.run()
        assert engine.peak_active <= 16
        assert len(engine._active) <= 16
        assert engine.store.hibernations > 0
        assert engine.verify() == []

    def test_eager_keeps_everyone_resident(self):
        engine = ScenarioEngine(get_scenario("city-day"), 100, seed=3,
                                substrate="eager")
        engine.run()
        assert len(engine._active) == 100
        assert engine.store.hibernations == 0

    def test_cold_bytes_per_device_constant(self):
        small = ScenarioEngine(get_scenario("city-day"), 100, seed=1)
        big = ScenarioEngine(get_scenario("city-day"), 1000, seed=1)
        small.run()
        big.run()
        assert small.report()["store_bytes_per_device"] \
            == big.report()["store_bytes_per_device"] == 49.0
