"""Tests for the context coverage report."""

import pytest

from repro.analysis import CoverageReport
from repro.core.common import Granularity, ModalityType, StreamRecord


def record(user="u", modality=ModalityType.ACCELEROMETER,
           granularity=Granularity.CLASSIFIED, timestamp=0.0, value="still"):
    return StreamRecord(stream_id="s", user_id=user, device_id="d",
                        modality=modality, granularity=granularity,
                        timestamp=timestamp, value=value)


class TestCoverageReport:
    def test_counts_and_span(self):
        report = CoverageReport()
        report.observe(record(timestamp=10.0))
        report.observe(record(timestamp=70.0, value="walking"))
        coverage = report.coverage_of("u")
        assert coverage.records == 2
        assert coverage.observed_span_s == 60.0
        assert report.total_records() == 2

    def test_label_fractions(self):
        report = CoverageReport()
        for value in ["still", "still", "walking", "running"]:
            report.observe(record(value=value))
        coverage = report.coverage_of("u")
        assert coverage.label_fraction("accelerometer", "still") == 0.5
        assert coverage.label_fraction("accelerometer", "walking") == 0.25
        assert coverage.label_fraction("accelerometer", "flying") == 0.0

    def test_raw_records_counted_but_not_labelled(self):
        report = CoverageReport()
        report.observe(record(granularity=Granularity.RAW, value=[1, 2, 3]))
        coverage = report.coverage_of("u")
        assert coverage.records == 1
        assert coverage.label_counts == {}

    def test_unseen_user_has_empty_coverage(self):
        report = CoverageReport()
        coverage = report.coverage_of("nobody")
        assert coverage.records == 0
        assert coverage.observed_span_s == 0.0
        assert coverage.label_fraction("accelerometer", "still") == 0.0

    def test_live_attachment_to_server(self, testbed):
        report = CoverageReport(testbed.server)
        testbed.add_user("alice", "Paris")
        testbed.server.create_stream("alice", ModalityType.MICROPHONE,
                                     Granularity.CLASSIFIED)
        testbed.run(130.0)
        assert report.user_ids() == ["alice"]
        assert report.coverage_of("alice").records >= 1
        audio_labels = report.coverage_of("alice").label_counts["microphone"]
        assert set(audio_labels) <= {"silent", "not_silent"}

    def test_summary_rows_sorted(self):
        report = CoverageReport()
        report.observe(record(user="zed"))
        report.observe(record(user="amy"))
        assert [row[0] for row in report.summary_rows()] == ["amy", "zed"]
