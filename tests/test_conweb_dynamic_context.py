"""Tests for §6.2's dynamic context selection and for running several
applications over one middleware instance (the paper's §7 limitation,
which this implementation does not share)."""

import pytest

from repro.apps.conweb import ConWebBrowser, ConWebServer, ConWebServerApp
from repro.apps.sensor_map import FacebookSensorMapServer, FacebookSensorMapService


class TestDynamicContextSelection:
    @pytest.fixture
    def rig(self, testbed):
        node = testbed.add_user("alice", "Paris")
        web = ConWebServer(testbed.world, testbed.network)
        app = ConWebServerApp(testbed.server, web)
        return testbed, node, web, app

    def test_server_manages_chosen_context_streams(self, rig):
        testbed, node, web, app = rig
        active = app.configure_user_context("alice", ["physical_activity"])
        assert active == ["physical_activity"]
        testbed.run(130.0)
        # Only the activity stream exists on the phone and only that
        # context key is known to the web server.
        assert len(node.manager.streams) == 1
        assert "physical_activity" in web.context_of("alice")
        assert "audio_environment" not in web.context_of("alice")

    def test_reconfiguration_destroys_and_creates(self, rig):
        testbed, node, web, app = rig
        app.configure_user_context("alice", ["physical_activity"])
        testbed.run(5.0)
        first_streams = set(node.manager.streams)
        active = app.configure_user_context("alice", ["audio_environment",
                                                      "place"])
        assert active == ["audio_environment", "place"]
        testbed.run(5.0)
        current = set(node.manager.streams)
        assert first_streams.isdisjoint(current)
        assert len(current) == 2

    def test_empty_selection_tears_everything_down(self, rig):
        testbed, node, web, app = rig
        app.configure_user_context("alice", ["place", "audio_environment"])
        testbed.run(5.0)
        assert app.configure_user_context("alice", []) == []
        testbed.run(5.0)
        assert node.manager.streams == {}

    def test_unknown_context_key_rejected(self, rig):
        _, _, _, app = rig
        with pytest.raises(ValueError):
            app.configure_user_context("alice", ["heart_rate"])


class TestConcurrentApplications:
    def test_sensor_map_and_conweb_share_one_middleware_instance(self, testbed):
        """§7 notes the Android build cannot serve multiple concurrent
        applications from one instance; this implementation can, so the
        limitation is documented as lifted rather than reproduced."""
        node = testbed.add_user("alice", "Paris")
        map_server = FacebookSensorMapServer(testbed.server)
        FacebookSensorMapService(node.manager)
        web = ConWebServer(testbed.world, testbed.network)
        ConWebServerApp(testbed.server, web)
        browser = ConWebBrowser(node.manager).start()
        browser.open("example.org")
        testbed.facebook.perform_action("alice", "post",
                                        content="great football day")
        testbed.run(240.0)
        # Both applications observed their data through the same
        # manager singleton, without interfering.
        assert map_server.markers("alice")
        assert browser.pages_loaded >= 2
        assert "more football for you" in browser.current_page.suggestions
        assert len(node.manager.streams) == 6  # 3 per application
