"""Tests for the mobile middleware half (streams, filters, privacy,
triggers, remote configs) running on the full testbed."""

import pytest

from repro.core.common import (
    Condition,
    Filter,
    Granularity,
    ModalityType,
    ModalityValue,
    Operator,
    StreamMode,
)
from repro.core.mobile import PrivacyPolicy, StreamState
from repro.core.common.errors import StreamStateError
from repro.device import ActivityState, calibration


@pytest.fixture
def alice(testbed):
    return testbed.add_user("alice", "Paris")


class TestContinuousStreams:
    def test_classified_stream_delivers_labels(self, testbed, alice):
        device = alice.manager.get_user("alice").get_device()
        stream = device.get_stream(ModalityType.ACCELEROMETER, "classified")
        records = []
        stream.register_listener(records.append)
        testbed.run(185.0)
        assert len(records) == 3  # default 60 s duty cycle
        assert all(record.value in ("still", "walking", "running")
                   for record in records)

    def test_raw_stream_delivers_windows(self, testbed, alice):
        device = alice.manager.get_user("alice").get_device()
        stream = device.get_stream(ModalityType.ACCELEROMETER, "raw")
        records = []
        stream.register_listener(records.append)
        testbed.run(70.0)
        assert len(records[0].value) == 40

    def test_duty_cycle_reconfiguration(self, testbed, alice):
        device = alice.manager.get_user("alice").get_device()
        stream = device.get_stream(ModalityType.WIFI, "raw")
        stream.configure({"duty_cycle_s": 20.0})
        records = []
        stream.register_listener(records.append)
        testbed.run(65.0)
        assert len(records) >= 3

    def test_pause_and_resume(self, testbed, alice):
        device = alice.manager.get_user("alice").get_device()
        stream = device.get_stream(ModalityType.WIFI, "raw")
        records = []
        stream.register_listener(records.append)
        testbed.run(65.0)
        count = len(records)
        stream.pause()
        testbed.run(120.0)
        assert len(records) == count
        stream.resume()
        testbed.run(65.0)
        assert len(records) > count

    def test_destroy_stops_and_forbids_use(self, testbed, alice):
        device = alice.manager.get_user("alice").get_device()
        stream = device.get_stream(ModalityType.WIFI, "raw")
        stream.destroy()
        assert stream.state is StreamState.DESTROYED
        with pytest.raises(StreamStateError):
            stream.pause()

    def test_stream_heap_accounting(self, testbed, alice):
        before = alice.phone.heap.allocated_mb
        device = alice.manager.get_user("alice").get_device()
        stream = device.get_stream(ModalityType.WIFI, "raw")
        assert alice.phone.heap.allocated_mb == pytest.approx(
            before + calibration.HEAP_PER_STREAM_MB)
        stream.destroy()
        assert alice.phone.heap.allocated_mb == pytest.approx(before)

    def test_local_stream_cpu_cheaper_than_server_stream(self, testbed, alice):
        device = alice.manager.get_user("alice").get_device()
        local = device.get_stream(ModalityType.WIFI, "raw")
        base = alice.phone.cpu.steady_load_pct()
        server_bound = device.get_stream(ModalityType.WIFI, "raw",
                                         send_to_server=True)
        with_server = alice.phone.cpu.steady_load_pct()
        assert (with_server - base) > 5 * calibration.CPU_LOCAL_STREAM_PCT


class TestConditionGating:
    def test_gps_only_when_walking(self, testbed, alice):
        """The §3.1 flagship example: GPS sampled only while walking."""
        manager = alice.manager
        stream = manager.create_stream(
            ModalityType.LOCATION, Granularity.RAW,
            stream_filter=Filter([Condition(
                ModalityType.PHYSICAL_ACTIVITY, Operator.EQUALS,
                ModalityValue.WALKING)]))
        records = []
        stream.register_listener(records.append)
        # Pin the ground truth still; monitor sees "still"; no samples.
        alice.mobility.stop()
        alice.phone.environment.activity = ActivityState.STILL
        testbed.run(300.0)
        assert records == []
        assert stream.cycles_skipped > 0
        # Accelerometer monitor runs continuously regardless.
        assert ModalityType.ACCELEROMETER in \
            manager.filter_manager.active_monitors()
        # Now walk: samples flow.
        alice.phone.environment.activity = ActivityState.WALKING
        testbed.run(300.0)
        assert len(records) > 0

    def test_time_of_day_condition(self, testbed, alice):
        stream = alice.manager.create_stream(
            ModalityType.WIFI, Granularity.RAW,
            stream_filter=Filter([Condition(
                ModalityType.TIME_OF_DAY, Operator.BETWEEN, [1.0, 2.0])]))
        records = []
        stream.register_listener(records.append)
        testbed.run(1800.0)  # hour 0: outside the window
        assert records == []
        testbed.run(3600.0)  # hour 1+: inside the window
        assert len(records) > 0

    def test_monitor_refcounting(self, testbed, alice):
        manager = alice.manager
        walking = Filter([Condition(ModalityType.PHYSICAL_ACTIVITY,
                                    Operator.EQUALS, "walking")])
        first = manager.create_stream(ModalityType.WIFI, Granularity.RAW,
                                      stream_filter=walking)
        second = manager.create_stream(ModalityType.BLUETOOTH, Granularity.RAW,
                                       stream_filter=walking)
        assert manager.filter_manager.active_monitors() == [
            ModalityType.ACCELEROMETER]
        first.destroy()
        assert manager.filter_manager.active_monitors() == [
            ModalityType.ACCELEROMETER]
        second.destroy()
        assert manager.filter_manager.active_monitors() == []


class TestSocialEventStreams:
    def test_osn_action_triggers_sensing(self, testbed, alice):
        stream = alice.manager.create_stream(
            ModalityType.MICROPHONE, Granularity.CLASSIFIED,
            stream_filter=Filter([Condition(
                ModalityType.FACEBOOK_ACTIVITY, Operator.EQUALS,
                ModalityValue.ACTIVE)]))
        records = []
        stream.register_listener(records.append)
        testbed.run(120.0)
        assert records == []  # no OSN action yet
        testbed.facebook.perform_action("alice", "post", content="hi")
        testbed.run(120.0)
        assert len(records) == 1
        assert records[0].osn_action["content"] == "hi"

    def test_action_type_condition(self, testbed, alice):
        stream = alice.manager.create_stream(
            ModalityType.WIFI, Granularity.RAW,
            stream_filter=Filter([Condition(
                ModalityType.FACEBOOK_ACTIVITY, Operator.EQUALS, "like")]))
        records = []
        stream.register_listener(records.append)
        testbed.facebook.perform_action("alice", "post", content="x")
        testbed.run(150.0)
        assert records == []
        testbed.facebook.perform_action("alice", "like", target="page-1")
        testbed.run(150.0)
        assert len(records) == 1

    def test_content_condition(self, testbed, alice):
        """Content-based subscription: 'posts about football' (§3.1)."""
        stream = alice.manager.create_stream(
            ModalityType.WIFI, Granularity.RAW,
            stream_filter=Filter([Condition(
                ModalityType.FACEBOOK_ACTIVITY, Operator.CONTAINS,
                "football")]))
        records = []
        stream.register_listener(records.append)
        testbed.facebook.perform_action("alice", "post",
                                        content="lovely weather")
        testbed.run(150.0)
        assert records == []
        testbed.facebook.perform_action("alice", "post",
                                        content="great FOOTBALL derby")
        testbed.run(150.0)
        assert len(records) == 1

    def test_other_users_actions_do_not_trigger(self, testbed, alice):
        bob = testbed.add_user("bob", "Paris")
        stream = alice.manager.create_stream(
            ModalityType.WIFI, Granularity.RAW, mode=StreamMode.SOCIAL_EVENT)
        records = []
        stream.register_listener(records.append)
        testbed.facebook.perform_action("bob", "post", content="mine")
        testbed.run(150.0)
        assert records == []

    def test_trigger_latency_measured(self, testbed, alice):
        alice.manager.create_stream(ModalityType.WIFI, Granularity.RAW,
                                    mode=StreamMode.SOCIAL_EVENT)
        testbed.facebook.perform_action("alice", "post")
        testbed.run(150.0)
        assert len(alice.manager.trigger_latencies) == 1
        assert 30.0 < alice.manager.trigger_latencies[0] < 80.0


class TestPrivacyIntegration:
    def test_violating_stream_created_paused(self, testbed, alice):
        alice.manager.privacy.set_policy(
            PrivacyPolicy(ModalityType.LOCATION, allow_raw=False))
        stream = alice.manager.create_stream(ModalityType.LOCATION,
                                             Granularity.RAW)
        assert stream.state is StreamState.PAUSED_PRIVACY
        assert alice.manager.privacy_block_reason(stream.stream_id)
        records = []
        stream.register_listener(records.append)
        testbed.run(180.0)
        assert records == []

    def test_policy_change_pauses_active_stream(self, testbed, alice):
        stream = alice.manager.create_stream(ModalityType.LOCATION,
                                             Granularity.RAW)
        assert stream.state is StreamState.ACTIVE
        alice.manager.privacy.set_policy(
            PrivacyPolicy(ModalityType.LOCATION, allow_raw=False))
        assert stream.state is StreamState.PAUSED_PRIVACY

    def test_policy_relaxation_resumes_stream(self, testbed, alice):
        alice.manager.privacy.set_policy(
            PrivacyPolicy(ModalityType.LOCATION, allow_raw=False))
        stream = alice.manager.create_stream(ModalityType.LOCATION,
                                             Granularity.RAW)
        alice.manager.privacy.remove_policy(ModalityType.LOCATION)
        assert stream.state is StreamState.ACTIVE
        records = []
        stream.register_listener(records.append)
        testbed.run(130.0)
        assert len(records) > 0

    def test_classified_allowed_while_raw_denied(self, testbed, alice):
        alice.manager.privacy.set_policy(
            PrivacyPolicy(ModalityType.MICROPHONE, allow_raw=False))
        raw = alice.manager.create_stream(ModalityType.MICROPHONE,
                                          Granularity.RAW)
        classified = alice.manager.create_stream(ModalityType.MICROPHONE,
                                                 Granularity.CLASSIFIED)
        assert raw.state is StreamState.PAUSED_PRIVACY
        assert classified.state is StreamState.ACTIVE


class TestRemoteManagement:
    def test_server_creates_stream_on_device(self, testbed, alice):
        stream = testbed.server.create_stream(
            "alice", ModalityType.MICROPHONE, Granularity.CLASSIFIED)
        testbed.run(2.0)
        assert stream.stream_id in alice.manager.streams
        mobile_stream = alice.manager.streams[stream.stream_id]
        assert mobile_stream.config.created_by == "server"
        assert mobile_stream.config.send_to_server

    def test_server_stream_records_flow_back(self, testbed, alice):
        stream = testbed.server.create_stream(
            "alice", ModalityType.MICROPHONE, Granularity.CLASSIFIED)
        records = []
        stream.add_listener(records.append)
        testbed.run(130.0)
        assert len(records) >= 2
        assert records[0].user_id == "alice"

    def test_server_destroy_removes_mobile_stream(self, testbed, alice):
        stream = testbed.server.create_stream(
            "alice", ModalityType.MICROPHONE, Granularity.CLASSIFIED)
        testbed.run(2.0)
        stream.destroy()
        testbed.run(2.0)
        assert stream.stream_id not in alice.manager.streams

    def test_server_filter_update_reaches_mobile(self, testbed, alice):
        stream = testbed.server.create_stream(
            "alice", ModalityType.LOCATION, Granularity.RAW)
        testbed.run(2.0)
        stream.set_filter(Filter([Condition(
            ModalityType.PHYSICAL_ACTIVITY, Operator.EQUALS, "walking")]))
        testbed.run(2.0)
        mobile_stream = alice.manager.streams[stream.stream_id]
        assert any(condition.modality is ModalityType.PHYSICAL_ACTIVITY
                   for condition in mobile_stream.config.filter.conditions)

    def test_server_settings_update_reaches_mobile(self, testbed, alice):
        stream = testbed.server.create_stream(
            "alice", ModalityType.WIFI, Granularity.RAW)
        testbed.run(2.0)
        stream.configure({"duty_cycle_s": 15.0})
        testbed.run(2.0)
        mobile_stream = alice.manager.streams[stream.stream_id]
        assert mobile_stream.config.settings["duty_cycle_s"] == 15.0

    def test_config_for_other_device_ignored(self, testbed, alice):
        from repro.core.common import StreamConfig
        config = StreamConfig(stream_id="foreign", device_id="not-this-phone",
                              modality=ModalityType.WIFI,
                              granularity=Granularity.RAW)
        alice.manager.handle_config_xml(config.to_xml())
        assert "foreign" not in alice.manager.streams
