"""Unit tests for the sensing manager and the classifiers."""

import pytest

from repro.classify import (
    ActivityClassifier,
    AudioClassifier,
    ClassifierRegistry,
    LocationClassifier,
    ProximityCountClassifier,
)
from repro.device import ActivityState, AudioState, CityRegistry, calibration
from repro.device.battery import EnergyCategory
from repro.sensing import ESSensorManager, SensingConfig
from repro.device.errors import SensorError


@pytest.fixture
def sensing(world, phone):
    return ESSensorManager.get_for(world, phone)


class TestSensingConfig:
    def test_defaults(self):
        config = SensingConfig()
        assert config.duty_cycle_s == calibration.DEFAULT_DUTY_CYCLE_SECONDS
        assert config.sample_rate == 1.0

    def test_from_settings_round_trip(self):
        config = SensingConfig.from_settings(
            {"duty_cycle_s": 30.0, "sample_rate": 2.0})
        assert config.duty_cycle_s == 30.0
        assert config.to_settings()["sample_rate"] == 2.0

    def test_from_empty_settings(self):
        assert SensingConfig.from_settings(None) == SensingConfig()

    def test_unknown_settings_rejected(self):
        with pytest.raises(SensorError):
            SensingConfig.from_settings({"frequency": 1})

    def test_invalid_duty_cycle_rejected(self):
        with pytest.raises(SensorError):
            SensingConfig(duty_cycle_s=0)


class TestOneOffSensing:
    def test_reading_arrives_after_sensor_window(self, world, phone, sensing):
        readings = []
        sensing.sense_once("wifi", readings.append)
        assert readings == []
        world.run_for(calibration.SENSE_WINDOW_SECONDS["wifi"] + 0.1)
        assert len(readings) == 1
        assert readings[0].modality == "wifi"

    def test_one_off_counts(self, world, phone, sensing):
        sensing.sense_once("wifi", lambda r: None)
        sensing.sense_once("bluetooth", lambda r: None)
        assert sensing.one_off_count == 2

    def test_energy_spent_only_per_cycle(self, world, phone, sensing):
        sensing.sense_once("location", lambda r: None)
        world.run_for(60.0)
        spent = phone.battery.consumed_by(
            "location", EnergyCategory.SAMPLING)
        assert spent == pytest.approx(calibration.SAMPLING_MAH["location"])


class TestSubscriptionSensing:
    def test_duty_cycle_controls_rate(self, world, phone, sensing):
        readings = []
        sensing.subscribe("wifi", SensingConfig(duty_cycle_s=10.0),
                          readings.append)
        world.run_for(61.0)
        assert len(readings) == 6  # first at window end, then every 10 s

    def test_unsubscribe_stops_sampling(self, world, phone, sensing):
        readings = []
        subscription = sensing.subscribe(
            "wifi", SensingConfig(duty_cycle_s=10.0), readings.append)
        world.run_for(25.0)
        count = len(readings)
        sensing.unsubscribe(subscription.subscription_id)
        world.run_for(100.0)
        assert len(readings) == count

    def test_sample_rate_scales_payload(self, world, phone, sensing):
        readings = []
        sensing.subscribe("accelerometer",
                          SensingConfig(duty_cycle_s=10.0, sample_rate=0.5),
                          readings.append)
        world.run_for(20.0)
        assert readings[0].wire_bytes == \
            calibration.RAW_PAYLOAD_BYTES["accelerometer"] // 2

    def test_active_subscriptions_listed(self, world, phone, sensing):
        sensing.subscribe("wifi", SensingConfig(), lambda r: None)
        sensing.subscribe("bluetooth", SensingConfig(), lambda r: None)
        assert len(sensing.active_subscriptions()) == 2
        sensing.unsubscribe_all()
        assert sensing.active_subscriptions() == []

    def test_singleton_per_device(self, world, phone):
        assert ESSensorManager.get_for(world, phone) is \
            ESSensorManager.get_for(world, phone)


class TestActivityClassifier:
    def classify_for(self, phone, activity):
        phone.environment.activity = activity
        classifier = ActivityClassifier()
        return classifier.classify(phone.sensor("accelerometer").sample()).label

    def test_still_classified(self, phone):
        assert self.classify_for(phone, ActivityState.STILL) == "still"

    def test_walking_classified(self, phone):
        assert self.classify_for(phone, ActivityState.WALKING) == "walking"

    def test_running_classified(self, phone):
        assert self.classify_for(phone, ActivityState.RUNNING) == "running"

    def test_accuracy_over_many_windows(self, phone):
        correct = total = 0
        for activity in ActivityState:
            for _ in range(30):
                total += 1
                if self.classify_for(phone, activity) == activity.value:
                    correct += 1
        assert correct / total > 0.9

    def test_classification_energy_charged(self, phone):
        classifier = ActivityClassifier(phone.battery, phone.cpu)
        before = phone.battery.consumed_by(
            "accelerometer", EnergyCategory.CLASSIFICATION)
        classifier.classify(phone.sensor("accelerometer").sample())
        delta = phone.battery.consumed_by(
            "accelerometer", EnergyCategory.CLASSIFICATION) - before
        assert delta == pytest.approx(
            calibration.CLASSIFICATION_MAH["accelerometer"])

    def test_wrong_modality_rejected(self, phone):
        classifier = ActivityClassifier()
        with pytest.raises(ValueError):
            classifier.classify(phone.sensor("microphone").sample())


class TestOtherClassifiers:
    def test_audio_silent_vs_noisy(self, phone):
        classifier = AudioClassifier()
        phone.environment.audio = AudioState.SILENT
        assert classifier.classify(
            phone.sensor("microphone").sample()).label == "silent"
        phone.environment.audio = AudioState.NOISY
        assert classifier.classify(
            phone.sensor("microphone").sample()).label == "not_silent"

    def test_location_reverse_geocodes_to_city(self, phone):
        cities = CityRegistry.europe()
        phone.environment.move_to(*cities.get("Paris").center)
        classifier = LocationClassifier(cities)
        assert classifier.classify(
            phone.sensor("location").sample()).label == "Paris"

    def test_location_unknown_outside_cities(self, phone):
        cities = CityRegistry.europe()
        phone.environment.move_to(30.0, 60.0)
        classifier = LocationClassifier(cities)
        assert classifier.classify(
            phone.sensor("location").sample()).label == "unknown"

    def test_proximity_count_labels(self, phone, env_registry):
        classifier = ProximityCountClassifier("wifi")
        for index in range(4):
            env_registry.add_access_point(f"ap{index}", [0.0, 0.0])
        phone.environment.move_to(0.0, 0.0)
        result = classifier.classify(phone.sensor("wifi").sample())
        assert result.label == "crowded"
        assert result.details["count"] == 4

    def test_proximity_rejects_other_modalities(self):
        with pytest.raises(ValueError):
            ProximityCountClassifier("location")


class TestClassifierRegistry:
    def test_builtins_cover_all_sensors(self):
        registry = ClassifierRegistry()
        assert registry.modalities() == [
            "accelerometer", "bluetooth", "location", "microphone", "wifi"]

    def test_custom_classifier_replaces_builtin(self, phone):
        registry = ClassifierRegistry()

        class AlwaysJogging(ActivityClassifier):
            def _infer(self, reading):
                return "jogging", {}

        registry.register("accelerometer",
                          lambda battery, cpu: AlwaysJogging(battery, cpu))
        classifier = registry.create("accelerometer")
        assert classifier.classify(
            phone.sensor("accelerometer").sample()).label == "jogging"

    def test_unknown_modality_rejected(self):
        with pytest.raises(SensorError):
            ClassifierRegistry().create("thermometer")
