"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.core.mobile.manager import MobileSenSocialManager
from repro.device.environment import EnvironmentRegistry
from repro.device.phone import Smartphone
from repro.net.latency import FixedLatency
from repro.net.network import Network
from repro.scenarios.testbed import SenSocialTestbed
from repro.simkit.world import World


@pytest.fixture(autouse=True)
def _reset_singletons():
    """Each test starts with a clean middleware singleton table."""
    MobileSenSocialManager.reset_instances()
    yield
    MobileSenSocialManager.reset_instances()


@pytest.fixture
def world() -> World:
    return World(seed=42)


@pytest.fixture
def network(world) -> Network:
    return Network(world, default_latency=FixedLatency(0.01))


@pytest.fixture
def env_registry() -> EnvironmentRegistry:
    return EnvironmentRegistry()


@pytest.fixture
def phone(world, network, env_registry) -> Smartphone:
    return Smartphone(world, network, env_registry, "test-user")


@pytest.fixture
def testbed() -> SenSocialTestbed:
    return SenSocialTestbed(seed=7)
