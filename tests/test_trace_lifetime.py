"""Tests for workload traces and battery lifetime projection."""

import math

import pytest

from repro.device.battery import Battery
from repro.metrics import lifetime_reduction_factor, projected_lifetime_hours
from repro.osn import ActionWorkloadGenerator, OsnService
from repro.osn.trace import ActionTrace, TraceRecorder, replay_trace
from repro.simkit import SimulationError, World


class TestTraceRecordReplay:
    def record_workload(self, seed=51, hours=2.0):
        world = World(seed=seed)
        service = OsnService(world, "facebook")
        for user in ["a", "b"]:
            service.register_user(user)
            service.authorize_app(user)
        recorder = TraceRecorder(service)
        generator = ActionWorkloadGenerator(world, service,
                                            actions_per_hour=5.0)
        generator.start_all()
        world.run_for(hours * 3600.0)
        recorder.detach()
        return recorder.trace

    def test_trace_captures_every_action(self):
        trace = self.record_workload()
        assert len(trace) > 5
        assert trace.user_ids() == ["a", "b"]

    def test_json_round_trip(self):
        trace = self.record_workload()
        restored = ActionTrace.from_json(trace.to_json())
        assert restored.entries == trace.entries
        assert restored.platform == "facebook"

    def test_replay_reproduces_actions_exactly(self):
        trace = self.record_workload()
        world = World(seed=999)  # different seed: replay must not care
        service = OsnService(world, "facebook")
        seen = []
        service.add_action_tap(
            lambda action: seen.append((action.user_id, action.type.value,
                                        action.content, world.now)))
        assert replay_trace(world, service, trace) == len(trace)
        world.run_for(3 * 3600.0)
        expected = [(entry["user_id"], entry["type"], entry["content"],
                     entry["created_at"]) for entry in trace.entries]
        assert seen == expected

    def test_replay_rejects_past_entries(self):
        trace = self.record_workload(hours=0.5)
        world = World(seed=1)
        world.run_for(10 * 3600.0)  # clock beyond every trace entry
        service = OsnService(world, "facebook")
        with pytest.raises(SimulationError):
            replay_trace(world, service, trace)

    def test_detach_stops_recording(self):
        world = World(seed=5)
        service = OsnService(world, "facebook")
        service.register_user("a")
        recorder = TraceRecorder(service)
        service.perform_action("a", "post")
        recorder.detach()
        service.perform_action("a", "post")
        assert len(recorder.trace) == 1


class TestLifetimeProjection:
    def test_zero_app_drain_is_baseline_lifetime(self):
        battery = Battery(capacity_mah=2400)
        hours = projected_lifetime_hours(battery, 0.0, 3600.0,
                                         baseline_mah_per_hour=100.0)
        assert hours == pytest.approx(24.0)

    def test_app_drain_shortens_lifetime(self):
        battery = Battery(capacity_mah=2400)
        idle = projected_lifetime_hours(battery, 0.0, 3600.0)
        loaded = projected_lifetime_hours(battery, 50.0, 3600.0)
        assert loaded < idle

    def test_reduction_factor_matches_senseless_regime(self):
        """Continuous GPS can cut lifetime ~20x [13]: with a small
        baseline, a heavy GPS drain rate produces that order."""
        battery = Battery(capacity_mah=2500)
        factor = lifetime_reduction_factor(
            battery, idle_mah=0.0, loaded_mah=150.0, duration_s=3600.0,
            baseline_mah_per_hour=8.0)
        assert 15.0 < factor < 25.0

    def test_zero_total_rate_is_infinite(self):
        battery = Battery()
        assert projected_lifetime_hours(
            battery, 0.0, 3600.0, baseline_mah_per_hour=0.0) == math.inf

    def test_invalid_inputs_rejected(self):
        battery = Battery()
        with pytest.raises(ValueError):
            projected_lifetime_hours(battery, 1.0, 0.0)
        with pytest.raises(ValueError):
            projected_lifetime_hours(battery, -1.0, 10.0)
