"""Edge-case tests: trigger manager, aggregation over multicast, stream
listener management, registration callbacks, and energy accounting of
the full trigger path."""

import pytest

from repro.core.common import (
    Condition,
    Filter,
    Granularity,
    ModalityType,
    ModalityValue,
    Operator,
    StreamMode,
)
from repro.core.server import MulticastQuery
from repro.device.battery import EnergyCategory


class TestTriggerManagerObservability:
    def test_configs_pushed_counter(self, testbed):
        testbed.add_user("a", "Paris")
        testbed.server.create_stream("a", ModalityType.WIFI, Granularity.RAW)
        assert testbed.server.triggers.configs_pushed == 1

    def test_triggers_sent_counter(self, testbed):
        testbed.add_user("a", "Paris")
        testbed.facebook.perform_action("a", "post")
        testbed.run(120.0)
        assert testbed.server.triggers.triggers_sent == 1

    def test_no_trigger_for_unregistered_osn_user(self, testbed):
        # The user has a Facebook account and authorised the plug-in
        # but never deployed a SenSocial device.
        testbed.facebook.register_user("ghost")
        testbed.facebook_plugin.register_user("ghost")
        testbed.facebook.perform_action("ghost", "post")
        testbed.run(120.0)
        assert testbed.server.triggers.triggers_sent == 0
        # The action itself is still captured and stored.
        assert len(testbed.server.database.actions_of("ghost")) == 1


class TestRegistrationCallbacks:
    def test_on_registration_fires(self, testbed):
        seen = []
        testbed.server.on_registration(lambda user, device: seen.append(user))
        testbed.add_user("fresh", "Paris")
        assert seen == ["fresh"]

    def test_sync_social_graph_skips_unregistered(self, testbed):
        testbed.add_user("a", "Paris")
        graph = testbed.facebook.graph
        graph.add_user("a")
        graph.add_user("offline-friend")
        graph.add_friendship("a", "offline-friend")
        testbed.server.sync_social_graph(graph)
        assert testbed.server.database.friends_of("a") == []


class TestAggregatedMulticast:
    def test_multicast_members_into_aggregator(self, testbed):
        """§3.1: multiple related streams consolidated into one
        aggregated stream, then treated like any other stream."""
        for user in ["a", "b"]:
            testbed.add_user(user, "Paris")
        testbed.befriend("a", "b")
        testbed.run(400.0)
        multicast = testbed.server.create_multicast_stream(
            ModalityType.MICROPHONE, Granularity.CLASSIFIED,
            MulticastQuery(place="Paris"))
        member_streams = [multicast.member_stream(user)
                          for user in multicast.members()]
        aggregator = testbed.server.create_aggregator("join", member_streams)
        records = []
        aggregator.add_listener(records.append)
        testbed.run(130.0)
        assert {record.user_id for record in records} == {"a", "b"}


class TestListenerManagement:
    def test_remove_mobile_listener(self, testbed):
        node = testbed.add_user("a", "Paris")
        stream = node.manager.create_stream(ModalityType.WIFI, Granularity.RAW)
        records = []
        listener = records.append
        stream.register_listener(listener)
        testbed.run(65.0)
        count = len(records)
        assert count > 0
        stream.remove_listener(listener)
        testbed.run(65.0)
        assert len(records) == count

    def test_multiple_listeners_each_get_records(self, testbed):
        node = testbed.add_user("a", "Paris")
        stream = node.manager.create_stream(ModalityType.WIFI, Granularity.RAW)
        first, second = [], []
        stream.register_listener(first.append)
        stream.register_listener(second.append)
        testbed.run(65.0)
        assert len(first) == len(second) > 0

    def test_listener_count(self, testbed):
        node = testbed.add_user("a", "Paris")
        stream = node.manager.create_stream(ModalityType.WIFI, Granularity.RAW)
        stream.register_listener(lambda record: None)
        assert stream.listener_count() == 1


class TestTriggerPathEnergy:
    @pytest.fixture
    def testbed(self):
        # Periodic location reporting would also sample the GPS;
        # disable it so the ledger isolates the trigger path.
        from repro.scenarios.testbed import SenSocialTestbed
        return SenSocialTestbed(seed=7, location_update_period_s=None)

    def test_social_event_stream_spends_nothing_when_idle(self, testbed):
        node = testbed.add_user("a", "Paris")
        node.manager.create_stream(
            ModalityType.LOCATION, Granularity.RAW,
            stream_filter=Filter([Condition(
                ModalityType.FACEBOOK_ACTIVITY, Operator.EQUALS,
                ModalityValue.ACTIVE)]))
        testbed.run(600.0)
        # No OSN action: the GPS was never sampled.
        assert node.phone.battery.consumed_by(
            "location", EnergyCategory.SAMPLING) == 0.0

    def test_trigger_charges_one_sampling_cycle(self, testbed):
        from repro.device import calibration
        node = testbed.add_user("a", "Paris")
        node.manager.create_stream(ModalityType.LOCATION, Granularity.RAW,
                                   mode=StreamMode.SOCIAL_EVENT)
        testbed.facebook.perform_action("a", "post")
        testbed.run(200.0)
        assert node.phone.battery.consumed_by(
            "location", EnergyCategory.SAMPLING) == pytest.approx(
                calibration.SAMPLING_MAH["location"])


class TestServerRecordPersistence:
    def test_records_stored_and_queryable(self, testbed):
        testbed.add_user("a", "Paris")
        testbed.server.create_stream("a", ModalityType.MICROPHONE,
                                     Granularity.CLASSIFIED)
        testbed.run(130.0)
        stored = testbed.server.database.records_of("a", "microphone")
        assert len(stored) >= 1
        assert stored[0]["granularity"] == "classified"
        timestamps = [record["timestamp"] for record in stored]
        assert timestamps == sorted(timestamps)
