"""Unit tests for the SLO layer: burn-rate evaluation, the alert
state machine, the exactly-once transition log, and the exporters."""

import json

import pytest

from repro.obs import (
    Alert,
    AlertLog,
    FIRING,
    INACTIVE,
    PENDING,
    RESOLVED,
    SEVERITY_PAGE,
    SEVERITY_TICKET,
    SloEvaluator,
    SloSpec,
    alerts_to_prometheus,
)


def spec(**overrides) -> SloSpec:
    base = dict(name="delivery", description="records on time",
                objective=0.05, fast_window_s=60.0, slow_window_s=300.0,
                page_burn=4.0, ticket_burn=1.0, for_s=30.0)
    base.update(overrides)
    return SloSpec(**base)


class TestSloSpec:
    def test_rejects_bad_objective(self):
        with pytest.raises(ValueError):
            spec(objective=0.0)
        with pytest.raises(ValueError):
            spec(objective=1.0)

    def test_rejects_inverted_windows(self):
        with pytest.raises(ValueError):
            spec(fast_window_s=600.0, slow_window_s=60.0)


class TestBurnRates:
    def test_error_at_objective_burns_at_one(self):
        evaluator = SloEvaluator()
        evaluator.register(spec(), lambda: 0.05)
        evaluator.evaluate(10.0)
        state = evaluator.state()["delivery"]
        assert state["burn_fast"] == pytest.approx(1.0)
        assert state["burn_slow"] == pytest.approx(1.0)

    def test_fast_window_sees_recent_samples_only(self):
        evaluator = SloEvaluator()
        errors = iter([1.0, 0.0, 0.0, 0.0, 0.0])
        evaluator.register(spec(), lambda: next(errors))
        for at in (10.0, 100.0, 130.0, 145.0, 160.0):
            evaluator.evaluate(at)
        state = evaluator.state()["delivery"]
        # The 1.0 sample at t=10 left the 60s fast window but still
        # sits in the 300s slow window.
        assert state["burn_fast"] == pytest.approx(0.0)
        assert state["burn_slow"] == pytest.approx((1.0 / 5) / 0.05)

    def test_samples_beyond_slow_window_are_dropped(self):
        evaluator = SloEvaluator()
        errors = iter([1.0, 0.0])
        evaluator.register(spec(), lambda: next(errors))
        evaluator.evaluate(10.0)
        evaluator.evaluate(400.0)
        state = evaluator.state()["delivery"]
        assert state["burn_slow"] == pytest.approx(0.0)

    def test_none_probe_counts_as_full_error(self):
        evaluator = SloEvaluator()
        evaluator.register(spec(), lambda: None)
        evaluator.evaluate(10.0)
        state = evaluator.state()["delivery"]
        assert state["last_error"] == 1.0
        assert state["burn_fast"] == pytest.approx(1.0 / 0.05)

    def test_error_clamped_to_unit_interval(self):
        evaluator = SloEvaluator()
        evaluator.register(spec(), lambda: 7.5)
        evaluator.evaluate(10.0)
        assert evaluator.state()["delivery"]["last_error"] == 1.0

    def test_duplicate_registration_rejected(self):
        evaluator = SloEvaluator()
        evaluator.register(spec(), lambda: 0.0)
        with pytest.raises(ValueError):
            evaluator.register(spec(), lambda: 0.0)


class TestAlertLifecycle:
    def drive(self, errors_by_time, slo=None):
        evaluator = SloEvaluator()
        feed = dict(errors_by_time)
        evaluator.register(slo or spec(), lambda: feed[self._now])
        for at in sorted(feed):
            self._now = at
            evaluator.evaluate(at)
        return evaluator

    def test_pending_then_firing_then_resolved_with_timestamps(self):
        # Page-level burn from t=100; clears at t=400.
        feed = {at: (1.0 if 100.0 <= at < 400.0 else 0.0)
                for at in range(0, 800, 15)}
        evaluator = self.drive(feed, slo=spec(slow_window_s=120.0))
        alert = evaluator.alert("delivery")
        assert alert.state == RESOLVED
        assert alert.firings == 1 and alert.resolutions == 1
        entries = evaluator.log.for_alert("delivery")
        states = [(entry["from"], entry["to"]) for entry in entries]
        assert states == [(INACTIVE, PENDING), (PENDING, FIRING),
                          (FIRING, RESOLVED)]
        pending_at = entries[0]["at"]
        fired_at = entries[1]["at"]
        assert pending_at == 105.0  # first tick with the breach
        assert fired_at - pending_at >= 30.0  # the for-window held
        assert entries[2]["at"] > 400.0  # resolved only after the fault
        assert evaluator.log.verify(evaluator.alerts) == []

    def test_blip_is_a_false_alarm_not_a_firing(self):
        evaluator = SloEvaluator()
        errors = iter([1.0, 0.0, 0.0, 0.0, 0.0, 0.0])
        evaluator.register(spec(fast_window_s=10.0, slow_window_s=20.0),
                           lambda: next(errors))
        for at in (10.0, 40.0, 70.0, 100.0, 130.0, 160.0):
            evaluator.evaluate(at)
        alert = evaluator.alert("delivery")
        assert alert.state == INACTIVE
        assert alert.firings == 0
        states = [(e["from"], e["to"])
                  for e in evaluator.log.for_alert("delivery")]
        assert states == [(INACTIVE, PENDING), (PENDING, INACTIVE)]

    def test_second_episode_reenters_via_pending(self):
        log = AlertLog()
        alert = Alert("a", log)
        alert.observe(0.0, SEVERITY_PAGE, for_s=10.0)
        alert.observe(10.0, SEVERITY_PAGE, for_s=10.0)
        alert.observe(20.0, None, for_s=10.0)
        alert.observe(30.0, SEVERITY_PAGE, for_s=10.0)
        alert.observe(40.0, SEVERITY_PAGE, for_s=10.0)
        assert alert.state == FIRING
        assert alert.firings == 2 and alert.resolutions == 1
        assert log.verify({"a": alert}) == []

    def test_severity_upgrades_to_worst_tier_seen(self):
        log = AlertLog()
        alert = Alert("a", log)
        alert.observe(0.0, SEVERITY_TICKET, for_s=10.0)
        alert.observe(10.0, SEVERITY_PAGE, for_s=10.0)
        assert alert.state == FIRING
        assert alert.severity == SEVERITY_PAGE

    def test_ticket_tier_fires_on_slow_burn_only(self):
        evaluator = SloEvaluator()
        # 10% errors: slow burn 2 >= 1 (ticket) but fast burn 2 < 4.
        evaluator.register(spec(), lambda: 0.10)
        for at in range(0, 120, 15):
            evaluator.evaluate(float(at))
        alert = evaluator.alert("delivery")
        assert alert.state == FIRING
        assert alert.severity == SEVERITY_TICKET


class TestAlertLog:
    def test_verify_flags_illegal_edge_and_broken_chain(self):
        log = AlertLog()
        log.record(1.0, "a", INACTIVE, FIRING, SEVERITY_PAGE)
        problems = log.verify()
        assert any("illegal edge" in problem for problem in problems)

    def test_verify_flags_backwards_timestamps(self):
        log = AlertLog()
        log.record(10.0, "a", INACTIVE, PENDING, SEVERITY_PAGE)
        log.record(5.0, "a", PENDING, FIRING, SEVERITY_PAGE)
        assert any("backwards" in problem for problem in log.verify())

    def test_verify_flags_unbalanced_firings(self):
        log = AlertLog()
        log.record(1.0, "a", INACTIVE, PENDING, SEVERITY_PAGE)
        log.record(2.0, "a", PENDING, FIRING, SEVERITY_PAGE)
        log.record(3.0, "a", FIRING, RESOLVED, SEVERITY_PAGE)
        log.record(4.0, "a", RESOLVED, PENDING, SEVERITY_PAGE)
        log.record(5.0, "a", PENDING, FIRING, SEVERITY_PAGE)
        # Two firings, one resolution, episode still open: balanced.
        assert log.verify() == []
        log.record(6.0, "a", FIRING, RESOLVED, SEVERITY_PAGE)
        log.record(7.0, "a", RESOLVED, PENDING, SEVERITY_PAGE)
        log.record(8.0, "a", PENDING, INACTIVE, None)
        assert log.verify() == []

    def test_fired_and_counts(self):
        log = AlertLog()
        assert not log.fired("a")
        log.record(1.0, "a", INACTIVE, PENDING, SEVERITY_PAGE)
        assert not log.fired("a")
        log.record(2.0, "a", PENDING, FIRING, SEVERITY_PAGE)
        assert log.fired("a")
        assert log.transition_counts()[("a", FIRING)] == 1

    def test_jsonl_round_trips(self):
        log = AlertLog()
        log.record(1.5, "a", INACTIVE, PENDING, SEVERITY_PAGE)
        lines = log.to_jsonl().strip().splitlines()
        doc = json.loads(lines[0])
        assert doc["kind"] == "alert_transition"
        assert doc["alert"] == "a" and doc["at"] == 1.5


class TestAlertsPrometheus:
    def test_active_alerts_render_with_type_once(self):
        log = AlertLog()
        alerts = {"a": Alert("a", log), "b": Alert("b", log)}
        alerts["a"].observe(0.0, SEVERITY_PAGE, for_s=0.0)
        alerts["a"].observe(1.0, SEVERITY_PAGE, for_s=0.0)
        alerts["b"].observe(1.0, SEVERITY_TICKET, for_s=30.0)
        text = alerts_to_prometheus(alerts, log)
        assert text.count("# TYPE ALERTS gauge") == 1
        assert text.count("# TYPE alert_transitions_total counter") == 1
        assert 'ALERTS{alertname="a",alertstate="firing",severity="page"} 1' \
            in text
        assert 'alertstate="pending"' in text  # b is pending

    def test_resolved_alert_not_exported_as_active(self):
        log = AlertLog()
        alert = Alert("a", log)
        alert.observe(0.0, SEVERITY_PAGE, for_s=0.0)
        alert.observe(1.0, SEVERITY_PAGE, for_s=0.0)
        alert.observe(2.0, None, for_s=0.0)
        text = alerts_to_prometheus({"a": alert}, log)
        assert "ALERTS{" not in text
        assert "alert_transitions_total" in text

    def test_hostile_alert_names_are_escaped(self):
        log = AlertLog()
        name = 'evil"alert\\with\nnewline'
        alert = Alert(name, log)
        alert.observe(0.0, SEVERITY_PAGE, for_s=0.0)
        text = alerts_to_prometheus({name: alert}, log)
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        # The raw newline must never split a sample across lines:
        # one TYPE line + one active-alert sample + one TYPE line +
        # one transition counter.
        assert len(text.strip().splitlines()) == 4
        assert 'alertname="evil\\"alert\\\\with\\nnewline"' in text
