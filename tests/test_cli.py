"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_experiments_lists_every_bench(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "figure5" in out
        assert "ablation-db" in out
        assert "pytest benchmarks/" in out

    def test_demo_paris_succeeds(self, capsys):
        assert main(["demo", "paris", "--hours", "2"]) == 0
        out = capsys.readouterr().out
        assert "friends seen in Paris: ['C']" in out

    def test_demo_sensor_map_produces_markers(self, capsys):
        assert main(["demo", "sensor-map", "--users", "2",
                     "--minutes", "45"]) == 0
        out = capsys.readouterr().out
        assert "markers:" in out
        assert "geojson features:" in out

    def test_obs_prints_report_and_writes_exports(self, capsys, tmp_path):
        jsonl = tmp_path / "spans.jsonl"
        prom = tmp_path / "metrics.prom"
        assert main(["obs", "--ticks", "300",
                     "--jsonl", str(jsonl), "--prom", str(prom)]) == 0
        out = capsys.readouterr().out
        assert "observability report" in out
        assert "stage latencies" in out
        import json
        lines = jsonl.read_text().splitlines()
        assert lines and all(json.loads(line) for line in lines)
        assert prom.read_text().strip()

    def test_chaos_obs_flag_attaches_the_section(self, capsys):
        assert main(["chaos", "--plan", "broker-restart",
                     "--minutes", "5", "--obs"]) == 0
        out = capsys.readouterr().out
        assert "observability:" in out
        assert "chain completeness" in out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
