"""The closed loop: a burning delivery-delay SLO pushes a sensing
backoff to devices over MQTT, and resolution restores the rate.

Also pins the disabled-is-identity contract: ``slo=False`` deploys no
control plane, subscribes no rate topic, and a ``scaled(1.0)`` rate
push is an exact no-op (``duty_cycle_s * 1.0`` is IEEE-754 exact)."""

import pytest

from repro.core.common import Granularity, ModalityType
from repro.obs import FIRING, INACTIVE, RESOLVED, SloControlPlane, \
    SloControlPlaneConfig
from repro.obs.control import SLO_DELIVERY_DELAY
from repro.scenarios.testbed import SenSocialTestbed
from repro.device.errors import SensorError
from repro.sensing import SensingConfig

#: Small windows so a ten-minute virtual run sees full episodes.
TUNED = dict(eval_period_s=5.0, fast_window_s=30.0, slow_window_s=60.0,
             for_s=10.0, delivery_delay_threshold_s=10.0,
             backoff_factor=4.0)


def run_loop(seed: int, *, slo, latency_s: float = 12.0):
    """Healthy minute, three slow-storage minutes, three recovery
    minutes.  One user on a 10 s duty cycle: a 12 s write latency
    pushes service time past inter-arrival, so the backlog (and the
    sense-to-server delay) grows until the loop sheds load."""
    config = SloControlPlaneConfig(**TUNED) if slo else False
    testbed = SenSocialTestbed(seed=seed, durability=True,
                               observability=True, slo=config)
    node = testbed.add_user("alice", "Paris")
    node.manager.create_stream(ModalityType.ACCELEROMETER,
                               Granularity.CLASSIFIED,
                               send_to_server=True,
                               settings={"duty_cycle_s": 10.0})
    testbed.run(60.0)
    testbed.durability.medium.write_latency_s = latency_s
    testbed.run(180.0)
    testbed.durability.medium.write_latency_s = 0.0
    testbed.run(180.0)
    return testbed, node


class TestClosedLoop:
    def test_burn_fires_backs_off_and_restores(self):
        testbed, node = run_loop(7, slo=True)
        plane = testbed.slo
        log = plane.log

        # The delivery-delay alert went through a full episode with
        # clean exactly-once accounting.
        assert log.fired(SLO_DELIVERY_DELAY)
        assert log.verify(plane.evaluator.alerts) == []
        alert = plane.evaluator.alert(SLO_DELIVERY_DELAY)
        assert alert.state in (RESOLVED, INACTIVE)

        # Firing pushed a backoff to the device; resolution restored it.
        assert plane.backoffs_pushed >= 1
        assert plane.restores_pushed >= 1
        assert plane.rate_pushes >= 2
        assert node.manager.rate_backoffs_applied >= 2
        assert node.manager.rate_backoff_factor == 1.0  # restored
        assert node.manager.mqtt.rate_updates_received >= 2

        # Transition timestamps are ordered: pending before firing
        # before resolution, with the for-window honoured.
        entries = log.for_alert(SLO_DELIVERY_DELAY)
        fired = [e for e in entries if e["to"] == FIRING]
        assert fired[0]["at"] >= 60.0  # not before the fault
        pending_at = entries[0]["at"]
        assert fired[0]["at"] - pending_at >= TUNED["for_s"]

    def test_backoff_measurably_reduces_publish_rate(self):
        """The same fault without a control plane produces strictly
        more sensed records: the backoff visibly throttled the device."""
        unmanaged, _ = run_loop(7, slo=False)
        managed, node = run_loop(7, slo=True)
        assert managed.slo.backoffs_pushed >= 1
        unmanaged_sent = unmanaged.node("alice").manager.records_transmitted
        managed_sent = node.manager.records_transmitted
        assert managed_sent < unmanaged_sent

    def test_loop_reports_its_actions(self):
        testbed, _ = run_loop(7, slo=True)
        report = testbed.slo.report()
        assert report["accounting_problems"] == []
        assert report["actions"]["backoffs_pushed"] >= 1
        assert report["evaluations"] >= 80  # 420 s / 5 s, minus start-up
        summary = testbed.slo.summary()
        assert SLO_DELIVERY_DELAY in summary["slos"]
        assert summary["backoff_factor"] == 1.0


class TestDisabledIsIdentity:
    def test_no_plane_means_no_machinery(self):
        testbed = SenSocialTestbed(seed=5, durability=True,
                                   observability=True)
        node = testbed.add_user("alice", "Paris")
        assert testbed.slo is None
        assert getattr(testbed.server, "slo_control", None) is None
        assert node.manager.mqtt.rate_updates_received == 0
        assert node.manager.rate_backoff_factor == 1.0

    def test_off_runs_are_reproducible(self):
        first, _ = run_loop(13, slo=False)
        second, _ = run_loop(13, slo=False)
        assert first.network.messages_sent == second.network.messages_sent
        assert first.server.records_received == second.server.records_received

    def test_managed_runs_are_reproducible(self):
        first, _ = run_loop(13, slo=True)
        second, _ = run_loop(13, slo=True)
        assert first.network.messages_sent == second.network.messages_sent
        assert first.slo.report() == second.slo.report()

    def test_scaled_unity_is_exact(self):
        config = SensingConfig(duty_cycle_s=0.1, sample_rate=3.0)
        scaled = config.scaled(1.0)
        assert scaled.duty_cycle_s == config.duty_cycle_s
        with pytest.raises(SensorError):
            config.scaled(0.0)

    def test_unity_rate_push_is_a_no_op(self):
        testbed = SenSocialTestbed(seed=5, durability=True,
                                   observability=True)
        node = testbed.add_user("alice", "Paris")
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
        node.manager.apply_rate_backoff(1.0)
        assert node.manager.rate_backoffs_applied == 0
        assert node.manager.rate_backoff_factor == 1.0


class TestConstruction:
    def test_plane_requires_the_obs_hub(self):
        testbed = SenSocialTestbed(seed=5, durability=True)
        with pytest.raises(ValueError):
            SloControlPlane(testbed.world, testbed.server)
