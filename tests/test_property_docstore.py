"""Property-based tests (hypothesis) for the document store."""

import string

from hypothesis import given, settings, strategies as st

from repro.docstore import DocumentStore, matches
from repro.docstore.paths import MISSING, delete_path, get_path, set_path

field_names = st.text(string.ascii_lowercase, min_size=1, max_size=6)
scalars = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.text(max_size=12),
    st.booleans(),
    st.none(),
)
flat_documents = st.dictionaries(field_names, scalars, max_size=6)


class TestPathProperties:
    @given(flat_documents, field_names, scalars)
    def test_set_then_get_round_trips(self, document, path, value):
        set_path(document, path, value)
        assert get_path(document, path) == value

    @given(field_names, field_names, scalars)
    def test_nested_set_then_get(self, outer, inner, value):
        document = {}
        set_path(document, f"{outer}.{inner}", value)
        assert get_path(document, f"{outer}.{inner}") == value

    @given(flat_documents, field_names)
    def test_delete_makes_path_missing(self, document, path):
        set_path(document, path, 1)
        assert delete_path(document, path)
        assert get_path(document, path) is MISSING

    @given(flat_documents, field_names)
    def test_delete_missing_returns_false(self, document, path):
        document.pop(path, None)
        assert not delete_path(document, path)


class TestQueryProperties:
    @given(flat_documents)
    def test_every_document_matches_empty_query(self, document):
        assert matches(document, {})

    @given(flat_documents)
    def test_document_matches_itself_as_query(self, document):
        assert matches(document, {key: value for key, value in document.items()
                                  if not isinstance(value, list)})

    @given(flat_documents, flat_documents)
    def test_and_of_or_identity(self, document, query):
        """doc matches q  ⟺  doc matches {$and: [q]} ⟺ {$or: [q]}."""
        direct = matches(document, query)
        assert matches(document, {"$and": [query]}) == direct
        assert matches(document, {"$or": [query]}) == direct
        assert matches(document, {"$nor": [query]}) == (not direct)

    @given(st.integers(min_value=-100, max_value=100),
           st.integers(min_value=-100, max_value=100))
    def test_comparison_trichotomy(self, field_value, operand):
        document = {"x": field_value}
        gt = matches(document, {"x": {"$gt": operand}})
        lt = matches(document, {"x": {"$lt": operand}})
        eq = matches(document, {"x": operand})
        assert gt + lt + eq == 1


class TestCollectionProperties:
    @settings(max_examples=50)
    @given(st.lists(flat_documents, max_size=20))
    def test_insert_then_count(self, documents):
        collection = DocumentStore()["c"]
        collection.insert_many(documents)
        assert collection.count() == len(documents)

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                    max_size=30))
    def test_find_partition(self, values):
        """find(q) ∪ find(not q) is the whole collection, disjointly."""
        collection = DocumentStore()["c"]
        collection.insert_many([{"v": value} for value in values])
        low = collection.find({"v": {"$lt": 25}}).count()
        high = collection.find({"v": {"$gte": 25}}).count()
        assert low + high == len(values)

    @settings(max_examples=50)
    @given(st.lists(st.integers(), min_size=1, max_size=30))
    def test_sort_is_ordered(self, values):
        collection = DocumentStore()["c"]
        collection.insert_many([{"v": value} for value in values])
        sorted_values = [doc["v"] for doc in collection.find().sort("v")]
        assert sorted_values == sorted(values)

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                    max_size=30))
    def test_indexed_and_scan_queries_agree(self, values):
        plain = DocumentStore()["plain"]
        indexed = DocumentStore()["indexed"]
        documents = [{"v": value} for value in values]
        plain.insert_many(documents)
        indexed.insert_many(documents)
        indexed.create_index("v")
        for needle in range(10):
            assert (plain.count({"v": needle})
                    == indexed.count({"v": needle}))

    # Every supported query shape, generated over small value domains
    # so collisions (and therefore matches) are common.
    small_values = st.one_of(st.integers(min_value=0, max_value=3),
                             st.sampled_from(["a", "b"]), st.none())
    query_shapes = st.one_of(
        st.builds(lambda v: {"v": v}, small_values),
        st.builds(lambda v: {"v": {"$eq": v}}, small_values),
        st.builds(lambda v: {"v": {"$ne": v}}, small_values),
        st.builds(lambda v: {"v": {"$gt": v}},
                  st.integers(min_value=0, max_value=3)),
        st.builds(lambda lo, hi: {"v": {"$gte": lo, "$lte": hi}},
                  st.integers(min_value=0, max_value=3),
                  st.integers(min_value=0, max_value=3)),
        st.builds(lambda items: {"v": {"$in": items}},
                  st.lists(small_values, max_size=3)),
        st.builds(lambda items: {"v": {"$nin": items}},
                  st.lists(small_values, max_size=3)),
        st.builds(lambda flag: {"v": {"$exists": flag}}, st.booleans()),
        st.builds(lambda v, w: {"v": v, "w": w}, small_values, small_values),
        st.builds(lambda v, w: {"$and": [{"v": v}, {"w": w}]},
                  small_values, small_values),
        st.builds(lambda v, w: {"$or": [{"v": v}, {"w": w}]},
                  small_values, small_values),
        st.builds(lambda v: {"$nor": [{"v": v}]}, small_values),
        st.builds(lambda v: {"v": {"$not": {"$eq": v}}}, small_values),
        st.builds(lambda n: {"v": {"$size": n}},
                  st.integers(min_value=0, max_value=3)),
        st.builds(lambda v: {"v": {"$elemMatch": {"$eq": v}}}, small_values),
    )
    small_documents = st.fixed_dictionaries(
        {},
        optional={
            "v": st.one_of(small_values,
                           st.lists(st.integers(min_value=0, max_value=3),
                                    max_size=3)),
            "w": small_values,
        },
    )

    @settings(max_examples=120)
    @given(st.lists(small_documents, max_size=15), query_shapes)
    def test_indexed_unindexed_same_results_and_order(self, documents, query):
        """The planner must be invisible: any query over any data set
        returns identical documents in identical order with and without
        indexes on the queried paths."""
        plain = DocumentStore()["plain"]
        indexed = DocumentStore()["indexed"]
        plain.insert_many(documents)
        indexed.create_index("v")
        indexed.create_index("w")
        indexed.insert_many(documents)
        # Auto-assigned ids make sorted(ids) == insertion order, so the
        # full result lists — order included — must be equal.
        assert plain.find(query).to_list() == indexed.find(query).to_list()
        assert plain.count(query) == indexed.count(query)

    @settings(max_examples=60)
    @given(st.lists(small_documents, max_size=12), query_shapes)
    def test_compiled_matches_interpreter_per_document(self, documents, query):
        from repro.docstore.compiler import compile_query
        from repro.docstore.query import matches
        compiled = compile_query(query)
        for document in documents:
            assert compiled(document) == matches(document, query)

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                    max_size=20),
           st.integers(min_value=0, max_value=9))
    def test_delete_many_removes_exactly_matches(self, values, needle):
        collection = DocumentStore()["c"]
        collection.insert_many([{"v": value} for value in values])
        deleted = collection.delete_many({"v": needle})
        assert deleted == values.count(needle)
        assert collection.count() == len(values) - deleted
