"""Unit tests for the OSN plug-ins."""

import pytest

from repro.net.latency import FixedLatency
from repro.osn import OsnService
from repro.plugins import FacebookPlugin, TwitterPlugin
from repro.simkit import World


@pytest.fixture
def facebook_rig():
    world = World(seed=29)
    service = OsnService(world, "facebook")
    service.register_user("u1")
    plugin = FacebookPlugin(world, service, notify_delay=FixedLatency(5.0))
    plugin.register_user("u1")
    captured = []
    plugin.add_listener(captured.append)
    return world, service, plugin, captured


@pytest.fixture
def twitter_rig():
    world = World(seed=29)
    service = OsnService(world, "twitter")
    service.register_user("u1")
    plugin = TwitterPlugin(world, service, poll_period_s=10.0)
    plugin.register_user("u1")
    captured = []
    plugin.add_listener(captured.append)
    return world, service, plugin, captured


class TestFacebookPlugin:
    def test_actions_forwarded_after_notify_delay(self, facebook_rig):
        world, service, plugin, captured = facebook_rig
        plugin.start()
        service.perform_action("u1", "post", content="x")
        world.run_for(4.0)
        assert captured == []
        world.run_for(2.0)
        assert len(captured) == 1
        assert plugin.actions_captured == 1

    def test_stopped_plugin_forwards_nothing(self, facebook_rig):
        world, service, plugin, captured = facebook_rig
        plugin.start()
        plugin.stop()
        service.perform_action("u1", "post")
        world.run_for(10.0)
        assert captured == []

    def test_unregistered_user_ignored(self, facebook_rig):
        world, service, plugin, captured = facebook_rig
        plugin.start()
        service.register_user("u2")
        service.authorize_app("u2")
        service.perform_action("u2", "post")
        world.run_for(10.0)
        assert captured == []

    def test_register_user_authorizes_platform(self, facebook_rig):
        _, service, plugin, _ = facebook_rig
        assert service.is_authorized("u1")
        assert plugin.registered_users() == ["u1"]

    def test_start_is_idempotent(self, facebook_rig):
        world, service, plugin, captured = facebook_rig
        plugin.start()
        plugin.start()
        service.perform_action("u1", "post")
        world.run_for(10.0)
        assert len(captured) == 1  # single webhook, not two

    def test_default_delay_matches_table3_regime(self):
        world = World(seed=30)
        service = OsnService(world, "facebook")
        service.register_user("u1")
        plugin = FacebookPlugin(world, service)
        plugin.register_user("u1")
        latencies = []
        plugin.add_listener(
            lambda action: latencies.append(world.now - action.created_at))
        plugin.start()
        for _ in range(20):
            service.perform_action("u1", "post")
            world.run_for(120.0)
        mean = sum(latencies) / len(latencies)
        assert 40.0 < mean < 52.0


class TestTwitterPlugin:
    def test_polling_captures_within_period(self, twitter_rig):
        world, service, plugin, captured = twitter_rig
        capture_times = []
        plugin.add_listener(lambda action: capture_times.append(world.now))
        plugin.start()
        service.perform_action("u1", "tweet", content="t")
        world.run_for(11.0)
        assert len(captured) == 1
        # "Arbitrarily short delay" — bounded by the poll period.
        assert capture_times[0] - captured[0].created_at <= 10.0 + 1e-9

    def test_no_duplicate_captures_across_polls(self, twitter_rig):
        world, service, plugin, captured = twitter_rig
        plugin.start()
        service.perform_action("u1", "tweet")
        world.run_for(60.0)
        assert len(captured) == 1

    def test_stop_cancels_polling(self, twitter_rig):
        world, service, plugin, captured = twitter_rig
        plugin.start()
        world.run_for(25.0)
        polls = plugin.polls_performed
        plugin.stop()
        world.run_for(60.0)
        assert plugin.polls_performed == polls
        service.perform_action("u1", "tweet")
        world.run_for(60.0)
        assert captured == []

    def test_invalid_poll_period_rejected(self):
        world = World(seed=1)
        service = OsnService(world, "twitter")
        with pytest.raises(ValueError):
            TwitterPlugin(world, service, poll_period_s=0)

    def test_polls_counted_per_user(self, twitter_rig):
        world, service, plugin, _ = twitter_rig
        service.register_user("u2")
        plugin.register_user("u2")
        plugin.start()
        world.run_for(30.0)
        assert plugin.polls_performed == 6  # 3 polls x 2 users
