"""Integration tests for the MQTT broker and client."""

import pytest

from repro.mqtt import MqttBroker, MqttClient, MqttProtocolError
from repro.net import FixedLatency, Network
from repro.simkit import World


@pytest.fixture
def stack():
    world = World(seed=13)
    network = Network(world, default_latency=FixedLatency(0.01))
    broker = MqttBroker(world, network)
    return world, network, broker


def make_client(world, network, name, **kwargs):
    return MqttClient(world, network, client_id=name,
                      address=f"host/{name}", **kwargs)


class TestPubSub:
    def test_basic_publish_subscribe(self, stack):
        world, network, broker = stack
        publisher = make_client(world, network, "pub")
        subscriber = make_client(world, network, "sub")
        publisher.connect()
        subscriber.connect()
        world.run_for(0.1)
        inbox = []
        subscriber.subscribe("news/today", lambda t, p: inbox.append((t, p)))
        world.run_for(0.1)
        publisher.publish("news/today", "hello")
        world.run_for(0.1)
        assert inbox == [("news/today", "hello")]

    def test_wildcard_subscription(self, stack):
        world, network, broker = stack
        client = make_client(world, network, "c")
        client.connect()
        world.run_for(0.1)
        inbox = []
        client.subscribe("news/#", lambda t, p: inbox.append(t))
        world.run_for(0.1)
        client.publish("news/sports/football", 1)
        client.publish("weather/today", 2)
        world.run_for(0.1)
        assert inbox == ["news/sports/football"]

    def test_multiple_subscribers_fan_out(self, stack):
        world, network, broker = stack
        publisher = make_client(world, network, "pub")
        publisher.connect()
        inboxes = {}
        for name in ["s1", "s2", "s3"]:
            client = make_client(world, network, name)
            client.connect()
            inboxes[name] = []
            world.run_for(0.05)
            client.subscribe("fan/out", lambda t, p, n=name: inboxes[n].append(p))
        world.run_for(0.1)
        publisher.publish("fan/out", 99)
        world.run_for(0.1)
        assert all(box == [99] for box in inboxes.values())

    def test_unsubscribe_stops_delivery(self, stack):
        world, network, broker = stack
        client = make_client(world, network, "c")
        client.connect()
        world.run_for(0.1)
        inbox = []
        client.subscribe("x", lambda t, p: inbox.append(p))
        world.run_for(0.1)
        client.publish("x", 1)
        world.run_for(0.1)
        client.unsubscribe("x")
        world.run_for(0.1)
        client.publish("x", 2)
        world.run_for(0.1)
        assert inbox == [1]

    def test_publish_requires_connection(self, stack):
        world, network, _ = stack
        client = make_client(world, network, "c")
        with pytest.raises(MqttProtocolError):
            client.publish("x", 1)

    def test_subscribe_requires_connection(self, stack):
        world, network, _ = stack
        client = make_client(world, network, "c")
        with pytest.raises(MqttProtocolError):
            client.subscribe("x", lambda t, p: None)

    def test_subscriber_count(self, stack):
        world, network, broker = stack
        client = make_client(world, network, "c")
        client.connect()
        world.run_for(0.1)
        client.subscribe("a/b", lambda t, p: None)
        world.run_for(0.1)
        assert broker.subscriber_count("a/b") == 1
        assert broker.subscriber_count("a/c") == 0


class TestRetained:
    def test_retained_message_delivered_to_late_subscriber(self, stack):
        world, network, broker = stack
        publisher = make_client(world, network, "pub")
        publisher.connect()
        world.run_for(0.1)
        publisher.publish("config/device1", {"duty": 60}, retain=True)
        world.run_for(0.1)
        late = make_client(world, network, "late")
        late.connect()
        world.run_for(0.1)
        inbox = []
        late.subscribe("config/+", lambda t, p: inbox.append(p))
        world.run_for(0.1)
        assert inbox == [{"duty": 60}]

    def test_retained_message_cleared_by_none_payload(self, stack):
        world, network, broker = stack
        publisher = make_client(world, network, "pub")
        publisher.connect()
        world.run_for(0.1)
        publisher.publish("config/x", "v1", retain=True)
        world.run_for(0.1)
        publisher.publish("config/x", None, retain=True)
        world.run_for(0.1)
        assert broker.retained_topics() == []


class TestQos1:
    def test_qos1_survives_subscriber_partition(self, stack):
        world, network, broker = stack
        publisher = make_client(world, network, "pub")
        subscriber = make_client(world, network, "sub")
        publisher.connect()
        subscriber.connect(clean_session=False)
        world.run_for(0.1)
        inbox = []
        subscriber.subscribe("q/1", lambda t, p: inbox.append(p), qos=1)
        world.run_for(0.1)
        network.set_down("host/sub")
        publisher.publish("q/1", "important", qos=1)
        world.run_for(3.0)
        assert inbox == []
        network.set_down("host/sub", False)
        world.run_for(30.0)
        assert "important" in inbox

    def test_qos1_publisher_ack_callback(self, stack):
        world, network, broker = stack
        client = make_client(world, network, "c")
        client.connect()
        world.run_for(0.1)
        acked = []
        client.publish("x", 1, qos=1, on_ack=lambda: acked.append(True))
        world.run_for(0.5)
        assert acked == [True]

    def test_offline_queue_flushes_on_reconnect(self, stack):
        world, network, broker = stack
        publisher = make_client(world, network, "pub")
        subscriber = make_client(world, network, "sub")
        publisher.connect()
        subscriber.connect(clean_session=False)
        world.run_for(0.1)
        inbox = []
        subscriber.subscribe("q/2", lambda t, p: inbox.append(p), qos=1)
        world.run_for(0.1)
        subscriber.disconnect()
        world.run_for(0.1)
        # Clean disconnect: broker keeps the persistent session and
        # queues while offline.
        publisher.publish("q/2", "queued", qos=1)
        world.run_for(0.5)
        assert inbox == []
        subscriber.connect(clean_session=False)
        subscriber.subscribe("q/2", lambda t, p: inbox.append(p), qos=1)
        world.run_for(1.0)
        assert "queued" in inbox

    def test_clean_session_forgets_subscriptions(self, stack):
        world, network, broker = stack
        client = make_client(world, network, "c")
        client.connect(clean_session=True)
        world.run_for(0.1)
        client.subscribe("x", lambda t, p: None)
        world.run_for(0.1)
        client.disconnect()
        world.run_for(0.1)
        assert broker.session_count() == 0


class TestKeepAliveAndWill:
    def test_pings_flow_with_keepalive(self, stack):
        world, network, broker = stack
        client = make_client(world, network, "c", keepalive=10.0)
        client.connect()
        world.run_for(35.0)
        # 3 pings sent; session still alive.
        assert broker.connected_clients() == ["c"]

    def test_will_not_sent_on_clean_disconnect(self, stack):
        world, network, broker = stack
        watcher = make_client(world, network, "w")
        watcher.connect()
        world.run_for(0.1)
        inbox = []
        watcher.subscribe("wills/#", lambda t, p: inbox.append(p))
        client = make_client(world, network, "c")
        client.connect(will_topic="wills/c", will_payload="died")
        world.run_for(0.1)
        client.disconnect()
        world.run_for(1.0)
        assert inbox == []
