"""Scale smoke tests: the middleware under tens of devices.

Not micro-benchmarks — these assert the system stays correct (no lost
registrations, consistent multicast membership, coupled records per
action) when the deployment grows beyond toy size.
"""

import pytest

from repro.core.common import (
    Condition,
    Filter,
    Granularity,
    ModalityType,
    ModalityValue,
    Operator,
)
from repro.core.server import MulticastQuery
from repro.osn.graph import SocialGraph
from repro.scenarios.testbed import SenSocialTestbed

USERS = 40
CITIES = ["Paris", "Bordeaux", "London", "Lyon"]


@pytest.fixture(scope="module")
def big_testbed():
    testbed = SenSocialTestbed(seed=99, location_update_period_s=120.0)
    user_ids = [f"u{i:02d}" for i in range(USERS)]
    for index, user_id in enumerate(user_ids):
        testbed.add_user(user_id, home_city=CITIES[index % len(CITIES)])
    graph = SocialGraph.barabasi_albert(user_ids, 2,
                                        testbed.world.rng("scale-graph"))
    for user_id in user_ids:
        for friend in graph.friends(user_id):
            if user_id < friend:
                testbed.befriend(user_id, friend)
    testbed.run(300.0)  # location updates flow
    return testbed, user_ids, graph


class TestScale:
    def test_every_device_registered(self, big_testbed):
        testbed, user_ids, _ = big_testbed
        assert testbed.server.registered_users() == sorted(user_ids)

    def test_server_mirror_of_graph_is_consistent(self, big_testbed):
        testbed, user_ids, graph = big_testbed
        for user_id in user_ids:
            assert testbed.server.database.friends_of(user_id) == \
                graph.friends(user_id)

    def test_city_multicasts_partition_population(self, big_testbed):
        testbed, user_ids, _ = big_testbed
        memberships = []
        for city in CITIES:
            multicast = testbed.server.create_multicast_stream(
                ModalityType.WIFI, Granularity.RAW,
                MulticastQuery(place=city), name=f"scale-{city}")
            memberships.extend(multicast.members())
            multicast.destroy()
        # Every user lives in exactly one city's multicast.
        assert sorted(memberships) == sorted(user_ids)

    def test_burst_of_actions_across_users_all_coupled(self, big_testbed):
        testbed, user_ids, _ = big_testbed
        posters = user_ids[:10]
        streams = {}
        for user_id in posters:
            node = testbed.node(user_id)
            streams[user_id] = node.manager.create_stream(
                ModalityType.ACCELEROMETER, Granularity.CLASSIFIED,
                stream_filter=Filter([Condition(
                    ModalityType.FACEBOOK_ACTIVITY, Operator.EQUALS,
                    ModalityValue.ACTIVE)]),
                send_to_server=True)
        received = []
        testbed.server.register_listener(
            lambda record: received.append(record)
            if record.osn_action is not None else None)
        for user_id in posters:
            testbed.facebook.perform_action(user_id, "post",
                                            content=f"from {user_id}")
        testbed.run(240.0)
        coupled_users = {record.user_id for record in received}
        assert coupled_users == set(posters)
        # Each record carries its own user's action, never a neighbour's.
        for record in received:
            assert record.osn_action["user_id"] == record.user_id
        for stream in streams.values():
            stream.destroy()

    def test_broker_sessions_match_population(self, big_testbed):
        testbed, user_ids, _ = big_testbed
        connected = testbed.broker.connected_clients()
        device_sessions = [client for client in connected
                           if client.startswith("sensocial-d")]
        assert len(device_sessions) == USERS
