"""The query compiler must be indistinguishable from the interpreter.

Every behavior here is pinned against :func:`repro.docstore.query.
matches` — same verdicts, same errors, and crucially the same *timing*
of errors: malformed queries stay silent until a document actually
reaches the bad fragment, exactly like per-document interpretation.
"""

import pytest

from repro.docstore import DocumentStore
from repro.docstore.compiler import (
    cache_clear,
    cache_info,
    compile_query,
)
from repro.docstore.errors import QueryError
from repro.docstore.query import matches


@pytest.fixture(autouse=True)
def fresh_cache():
    cache_clear()
    yield
    cache_clear()


def _outcome(callable_, *args):
    """Result or (exception type, message) — for equivalence checks."""
    try:
        return ("ok", callable_(*args))
    except Exception as error:  # noqa: BLE001 - equivalence harness
        return ("err", type(error).__name__, str(error))


DOCUMENTS = [
    {},
    {"x": 1},
    {"x": 1.0},
    {"x": True},
    {"x": "1"},
    {"x": None},
    {"x": [1, 2, 3]},
    {"x": [{"y": 1}, {"y": 2}]},
    {"x": {"y": {"z": 5}}},
    {"x": "hello world"},
    {"x": float("nan")},
    {"y": 7},
]

QUERIES = [
    {},
    {"x": 1},
    {"x": True},
    {"x": "1"},
    {"x": None},
    {"x": {"$eq": 1}},
    {"x": {"$ne": 1}},
    {"x": {"$gt": 0}},
    {"x": {"$gte": 1, "$lt": 3}},
    {"x": {"$in": [1, "1", None]}},
    {"x": {"$in": [[1, 2, 3]]}},
    {"x": {"$in": [float("nan")]}},
    {"x": {"$nin": [1, 2]}},
    {"x": {"$exists": True}},
    {"x": {"$exists": False}},
    {"x": {"$regex": "wor"}},
    {"x": {"$regex": "("}},          # invalid pattern — lazy error
    {"x": {"$size": 3}},
    {"x": {"$elemMatch": {"y": 2}}},
    {"x": {"$elemMatch": {"$gt": 2}}},
    {"x": {"$not": {"$gt": 1}}},
    {"x.y": 1},
    {"x.y.z": 5},
    {"x.0": 1},
    {"x.1.y": 2},
    {"$and": [{"x": {"$gt": 0}}, {"x": {"$lt": 2}}]},
    {"$or": [{"x": 1}, {"y": 7}]},
    {"$nor": [{"x": 1}, {"y": 7}]},
    {"$bogus": 1},                    # unknown top-level operator
    {"x": {"$frobnicate": 1}},        # unknown field operator
    {"x": {"$in": 5}},                # non-list $in operand
]


class TestCompiledEquivalence:
    def test_every_query_agrees_with_interpreter_on_every_document(self):
        for query in QUERIES:
            compiled = compile_query(query)
            for document in DOCUMENTS:
                expected = _outcome(matches, document, query)
                actual = _outcome(compiled, document)
                assert actual == expected, (query, document)

    def test_nan_in_uses_equality_not_set_identity(self):
        """``{"$in": [nan]}`` never matches (nan != nan); a naive
        hash-set membership test would say it does."""
        nan = float("nan")
        compiled = compile_query({"x": {"$in": [nan]}})
        assert not compiled({"x": nan})
        assert not matches({"x": nan}, {"x": {"$in": [nan]}})


class TestLazyErrors:
    def test_bad_query_compiles_silently(self):
        compile_query({"$bogus": 1})
        compile_query({"x": {"$in": "not-a-list"}})
        compile_query({"x": {"$what": 1}})

    def test_bad_query_over_empty_collection_stays_silent(self):
        collection = DocumentStore()["c"]
        assert collection.find({"$bogus": 1}).to_list() == []
        assert collection.count({"x": {"$in": 5}}) == 0

    def test_bad_query_raises_when_a_document_reaches_it(self):
        collection = DocumentStore()["c"]
        collection.insert_one({"x": 1})
        with pytest.raises(QueryError, match="unknown top-level operator"):
            collection.find({"$bogus": 1}).to_list()
        with pytest.raises(QueryError, match="unknown query operator"):
            collection.find({"x": {"$what": 1}}).to_list()
        with pytest.raises(QueryError, match="requires a list operand"):
            collection.find({"x": {"$in": 5}}).to_list()

    def test_non_dict_query_raises_eagerly(self):
        with pytest.raises(QueryError, match="query must be a dict"):
            compile_query(["not", "a", "dict"])


class TestPlanCache:
    def test_repeat_queries_hit_the_cache(self):
        first = compile_query({"a": 1, "b": {"$gt": 2}})
        info = cache_info()
        second = compile_query({"a": 1, "b": {"$gt": 2}})
        assert second is first
        assert cache_info()["hits"] == info["hits"] + 1

    def test_scalar_types_never_share_a_slot(self):
        """1, 1.0, True and "1" compare differently under $gt etc., so
        each must compile to its own plan."""
        plans = {id(compile_query({"x": {"$gte": operand}}))
                 for operand in (1, 1.0, True, "1")}
        assert len(plans) == 4
        assert cache_info()["misses"] >= 4

    def test_key_order_is_significant(self):
        a = compile_query({"a": 1, "b": 2})
        b = compile_query({"b": 2, "a": 1})
        assert a is not b

    def test_unfreezable_queries_compile_uncached(self):
        query = {"x": {"$in": [object()]}}
        size_before = cache_info()["size"]
        compile_query(query)
        assert cache_info()["size"] == size_before

    def test_cache_is_bounded(self):
        for i in range(400):
            compile_query({"x": i})
        assert cache_info()["size"] <= cache_info()["max_size"]


class TestPlannerConstraints:
    def test_equalities_extracted_including_through_and(self):
        plan = compile_query({"a": 1, "b": {"$eq": 2},
                              "$and": [{"c": 3}, {"d": {"$in": [4, 5]}}]})
        assert ("a", 1) in plan.equalities
        assert ("b", 2) in plan.equalities
        assert ("c", 3) in plan.equalities
        assert ("d", (4, 5)) in plan.in_lists

    def test_or_branches_contribute_no_constraints(self):
        """An $or match can come from either branch, so neither branch
        may narrow the candidate set."""
        plan = compile_query({"$or": [{"a": 1}, {"b": 2}]})
        assert plan.equalities == ()
        assert plan.in_lists == ()

    def test_operator_conditions_are_not_equalities(self):
        plan = compile_query({"a": {"$gt": 1}})
        assert plan.equalities == ()

    def test_always_true_only_for_the_empty_query(self):
        assert compile_query({}).always_true
        assert not compile_query({"a": 1}).always_true
        assert not compile_query({"$or": []}).always_true
