"""Property-based tests: record serialisation, latency statistics,
moving averages and energy-ledger invariants."""

import statistics
import string

from hypothesis import given, strategies as st

from repro.analysis import moving_average
from repro.core.common import Granularity, ModalityType, StreamRecord
from repro.device.battery import Battery, EnergyCategory
from repro.metrics import LatencyStats

identifiers = st.text(string.ascii_lowercase + string.digits,
                      min_size=1, max_size=10)
json_values = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.lists(st.integers(min_value=0, max_value=9), max_size=5),
    st.dictionaries(identifiers, st.integers(min_value=0, max_value=9),
                    max_size=4),
)


class TestRecordProperties:
    @given(identifiers, identifiers, identifiers,
           st.sampled_from(list(ModalityType)[:5]),
           st.sampled_from(list(Granularity)),
           st.floats(min_value=0, max_value=1e6, allow_nan=False),
           json_values)
    def test_record_round_trip(self, stream_id, user_id, device_id,
                               modality, granularity, timestamp, value):
        record = StreamRecord(
            stream_id=stream_id, user_id=user_id, device_id=device_id,
            modality=modality, granularity=granularity,
            timestamp=timestamp, value=value)
        restored = StreamRecord.from_dict(record.to_dict())
        assert restored.stream_id == stream_id
        assert restored.modality is modality
        assert restored.granularity is granularity
        assert restored.value == value
        assert restored.osn_action is None


class TestLatencyStatsProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e4, allow_nan=False),
                    min_size=2, max_size=50))
    def test_matches_statistics_module(self, values):
        stats = LatencyStats.of(values)
        assert stats.mean == (
            sum(values) / len(values))
        assert abs(stats.std - statistics.pstdev(values)) < 1e-6
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)

    @given(st.lists(st.floats(min_value=0, max_value=1e4, allow_nan=False),
                    min_size=1, max_size=50))
    def test_bounds_ordering(self, values):
        stats = LatencyStats.of(values)
        epsilon = 1e-9 * max(1.0, stats.maximum)  # summation rounding
        assert stats.minimum - epsilon <= stats.mean <= stats.maximum + epsilon


class TestMovingAverageProperties:
    @given(st.lists(st.floats(min_value=-100, max_value=100,
                              allow_nan=False), min_size=1, max_size=40),
           st.integers(min_value=1, max_value=10))
    def test_same_length_and_bounded(self, values, window):
        averaged = moving_average(values, window)
        assert len(averaged) == len(values)
        low, high = min(values), max(values)
        assert all(low - 1e-9 <= item <= high + 1e-9 for item in averaged)

    @given(st.floats(min_value=-100, max_value=100, allow_nan=False),
           st.integers(min_value=1, max_value=30),
           st.integers(min_value=1, max_value=10))
    def test_constant_series_unchanged(self, value, length, window):
        values = [value] * length
        averaged = moving_average(values, window)
        assert all(abs(item - value) < 1e-9 for item in averaged)


class TestBatteryLedgerProperties:
    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=10, allow_nan=False),
        st.sampled_from(["gps", "radio", "mic"]),
        st.sampled_from(list(EnergyCategory))), max_size=40))
    def test_ledger_sums_to_total(self, drains):
        battery = Battery(capacity_mah=10_000)
        for amount, component, category in drains:
            battery.drain(amount, component, category)
        ledger_total = sum(battery.breakdown().values())
        assert abs(ledger_total - battery.consumed_mah) < 1e-9
        by_component = sum(battery.consumed_by(component=name)
                           for name in ["gps", "radio", "mic"])
        assert abs(by_component - battery.consumed_mah) < 1e-9

    @given(st.lists(st.floats(min_value=0, max_value=100,
                              allow_nan=False), max_size=30))
    def test_remaining_never_negative(self, drains):
        battery = Battery(capacity_mah=50)
        for amount in drains:
            battery.drain(amount, "x", EnergyCategory.IDLE)
        assert battery.remaining_mah >= 0.0
        assert 0.0 <= battery.level <= 1.0
