"""Unit tests for collections, cursors, updates and indexes."""

import pytest

from repro.docstore import (
    DocStoreError,
    DocumentStore,
    DuplicateKeyError,
    UpdateError,
)


@pytest.fixture
def people():
    store = DocumentStore()
    collection = store["people"]
    collection.insert_many([
        {"name": "alice", "age": 30, "city": "Paris"},
        {"name": "bob", "age": 25, "city": "Bordeaux"},
        {"name": "carol", "age": 41, "city": "Paris"},
        {"name": "dave", "age": 35, "city": "Lyon"},
    ])
    return collection


class TestCrud:
    def test_insert_assigns_ids(self, people):
        doc_id = people.insert_one({"name": "eve"})
        assert people.find_one({"_id": doc_id})["name"] == "eve"

    def test_insert_copies_document(self, people):
        original = {"name": "frank", "tags": []}
        people.insert_one(original)
        original["tags"].append("mutated")
        assert people.find_one({"name": "frank"})["tags"] == []

    def test_insert_rejects_non_dict(self, people):
        with pytest.raises(DocStoreError):
            people.insert_one(["not", "a", "doc"])

    def test_insert_rejects_duplicate_id(self, people):
        people.insert_one({"_id": "x"})
        with pytest.raises(DocStoreError):
            people.insert_one({"_id": "x"})

    def test_find_returns_copies(self, people):
        document = people.find_one({"name": "alice"})
        document["age"] = 999
        assert people.find_one({"name": "alice"})["age"] == 30

    def test_count(self, people):
        assert people.count() == 4
        assert people.count({"city": "Paris"}) == 2

    def test_delete_one(self, people):
        assert people.delete_one({"city": "Paris"}) == 1
        assert people.count({"city": "Paris"}) == 1

    def test_delete_many(self, people):
        assert people.delete_many({"city": "Paris"}) == 2
        assert people.count() == 2

    def test_delete_no_match(self, people):
        assert people.delete_one({"city": "Nowhere"}) == 0

    def test_distinct(self, people):
        assert sorted(people.distinct("city")) == ["Bordeaux", "Lyon", "Paris"]

    def test_drop(self, people):
        people.drop()
        assert people.count() == 0


class TestCursor:
    def test_sort_ascending(self, people):
        ages = [doc["age"] for doc in people.find().sort("age")]
        assert ages == sorted(ages)

    def test_sort_descending(self, people):
        ages = [doc["age"] for doc in people.find().sort("age", -1)]
        assert ages == sorted(ages, reverse=True)

    def test_multi_key_sort(self, people):
        rows = list(people.find().sort([("city", 1), ("age", -1)]))
        assert [r["name"] for r in rows] == ["bob", "dave", "carol", "alice"]

    def test_skip_and_limit(self, people):
        names = [doc["name"] for doc in people.find().sort("age").skip(1).limit(2)]
        assert names == ["alice", "dave"]

    def test_count_ignores_limit(self, people):
        assert people.find().limit(1).count() == 4

    def test_to_list(self, people):
        assert len(people.find({"city": "Paris"}).to_list()) == 2

    def test_sort_with_missing_field_orders_first(self, people):
        people.insert_one({"name": "ghost"})
        first = next(iter(people.find().sort("age")))
        assert first["name"] == "ghost"


class TestUpdates:
    def test_set(self, people):
        assert people.update_one({"name": "alice"}, {"$set": {"age": 31}}) == 1
        assert people.find_one({"name": "alice"})["age"] == 31

    def test_set_nested_path(self, people):
        people.update_one({"name": "alice"}, {"$set": {"home.city": "Lyon"}})
        assert people.find_one({"name": "alice"})["home"]["city"] == "Lyon"

    def test_unset(self, people):
        people.update_one({"name": "alice"}, {"$unset": {"city": ""}})
        assert "city" not in people.find_one({"name": "alice"})

    def test_inc(self, people):
        people.update_one({"name": "bob"}, {"$inc": {"age": 5}})
        assert people.find_one({"name": "bob"})["age"] == 30

    def test_inc_creates_missing_field(self, people):
        people.update_one({"name": "bob"}, {"$inc": {"logins": 1}})
        assert people.find_one({"name": "bob"})["logins"] == 1

    def test_inc_non_numeric_rejected(self, people):
        with pytest.raises(UpdateError):
            people.update_one({"name": "bob"}, {"$inc": {"name": 1}})

    def test_push_and_pull(self, people):
        people.update_one({"name": "alice"}, {"$push": {"tags": "x"}})
        people.update_one({"name": "alice"}, {"$push": {"tags": "y"}})
        assert people.find_one({"name": "alice"})["tags"] == ["x", "y"]
        people.update_one({"name": "alice"}, {"$pull": {"tags": "x"}})
        assert people.find_one({"name": "alice"})["tags"] == ["y"]

    def test_push_each(self, people):
        people.update_one({"name": "alice"},
                          {"$push": {"tags": {"$each": [1, 2, 3]}}})
        assert people.find_one({"name": "alice"})["tags"] == [1, 2, 3]

    def test_add_to_set_deduplicates(self, people):
        for _ in range(3):
            people.update_one({"name": "alice"}, {"$addToSet": {"tags": "once"}})
        assert people.find_one({"name": "alice"})["tags"] == ["once"]

    def test_rename(self, people):
        people.update_one({"name": "alice"}, {"$rename": {"city": "town"}})
        document = people.find_one({"name": "alice"})
        assert document["town"] == "Paris"
        assert "city" not in document

    def test_replacement_update_keeps_id(self, people):
        original_id = people.find_one({"name": "alice"})["_id"]
        people.update_one({"name": "alice"}, {"name": "alicia", "age": 1})
        replaced = people.find_one({"name": "alicia"})
        assert replaced["_id"] == original_id
        assert "city" not in replaced

    def test_mixed_update_rejected(self, people):
        with pytest.raises(UpdateError):
            people.update_one({"name": "alice"}, {"$set": {"a": 1}, "b": 2})

    def test_update_many(self, people):
        assert people.update_many({"city": "Paris"},
                                  {"$set": {"country": "FR"}}) == 2
        assert people.count({"country": "FR"}) == 2

    def test_upsert_inserts_when_missing(self, people):
        people.update_one({"name": "zed"}, {"$set": {"age": 1}}, upsert=True)
        assert people.find_one({"name": "zed"})["age"] == 1

    def test_update_no_match_returns_zero(self, people):
        assert people.update_one({"name": "nobody"}, {"$set": {"x": 1}}) == 0


class TestIndexes:
    def test_unique_index_rejects_duplicates(self, people):
        people.create_index("name", unique=True)
        with pytest.raises(DuplicateKeyError):
            people.insert_one({"name": "alice"})

    def test_unique_index_rejects_duplicate_via_update(self, people):
        people.create_index("name", unique=True)
        with pytest.raises(DuplicateKeyError):
            people.update_one({"name": "bob"}, {"$set": {"name": "alice"}})

    def test_index_accelerates_equality(self, people):
        people.create_index("city")
        before = people.scans
        result = people.find({"city": "Paris"}).to_list()
        assert len(result) == 2
        assert people.scans == before
        assert people.index_lookups >= 1

    def test_index_stays_fresh_after_update(self, people):
        people.create_index("city")
        people.update_one({"name": "bob"}, {"$set": {"city": "Paris"}})
        assert people.count({"city": "Paris"}) == 3

    def test_index_stays_fresh_after_delete(self, people):
        people.create_index("city")
        people.delete_one({"name": "alice"})
        assert people.count({"city": "Paris"}) == 1

    def test_create_index_is_idempotent(self, people):
        people.create_index("city")
        people.create_index("city")
        assert people.index_paths() == ["city"]


class TestStore:
    def test_collections_created_on_demand(self):
        store = DocumentStore()
        store["a"].insert_one({"x": 1})
        assert store.collection_names() == ["a"]

    def test_same_collection_returned(self):
        store = DocumentStore()
        assert store["a"] is store["a"]

    def test_drop_collection(self):
        store = DocumentStore()
        store["a"].insert_one({"x": 1})
        store.drop_collection("a")
        assert store["a"].count() == 0
