"""Tests for the store-and-forward outbox, the server's dedup window,
and the record-id/ack loop that makes ingest exactly-once."""

import pytest

from repro.core.common import Granularity, ModalityType
from repro.core.mobile.outbox import Outbox
from repro.core.server.dedup import RecordDeduper
from repro.scenarios.testbed import SenSocialTestbed


class TestOutbox:
    def test_put_and_ack(self):
        outbox = Outbox()
        outbox.put("r1", {"v": 1}, 100, now=0.0)
        assert len(outbox) == 1
        assert outbox.ack("r1")
        assert len(outbox) == 0
        assert outbox.acked == 1

    def test_ack_is_idempotent(self):
        outbox = Outbox()
        outbox.put("r1", {}, 10, now=0.0)
        assert outbox.ack("r1")
        assert not outbox.ack("r1")
        assert not outbox.ack("never-seen")
        assert outbox.acked == 1

    def test_full_outbox_evicts_oldest_and_counts(self):
        outbox = Outbox(capacity=3)
        for index in range(5):
            outbox.put(f"r{index}", {}, 10, now=float(index))
        assert len(outbox) == 3
        assert outbox.pending_ids() == ["r2", "r3", "r4"]
        assert outbox.dropped_oldest == 2
        assert outbox.enqueued == 5

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Outbox(capacity=0)

    def test_due_never_sent_and_stale(self):
        outbox = Outbox()
        outbox.put("fresh", {}, 10, now=0.0)
        outbox.put("stale", {}, 10, now=0.0)
        outbox.put("unsent", {}, 10, now=0.0)
        outbox.mark_sent("fresh", now=95.0)
        outbox.mark_sent("stale", now=10.0)
        due = {entry.record_id for entry in outbox.due(100.0, retry_after=20.0)}
        assert due == {"stale", "unsent"}
        everything = {entry.record_id
                      for entry in outbox.due(100.0, 20.0, force=True)}
        assert everything == {"fresh", "stale", "unsent"}

    def test_retransmissions_counted(self):
        outbox = Outbox()
        outbox.put("r1", {}, 10, now=0.0)
        outbox.mark_sent("r1", now=1.0)
        outbox.mark_sent("r1", now=30.0)
        outbox.mark_sent("r1", now=60.0)
        assert outbox.retransmissions == 2
        assert outbox.stats()["retransmissions"] == 2


class TestRecordDeduper:
    def test_first_sighting_is_fresh(self):
        dedup = RecordDeduper()
        assert not dedup.seen("a")
        assert dedup.seen("a")
        assert dedup.duplicates == 1

    def test_window_bounds_memory(self):
        dedup = RecordDeduper(window=3)
        for record_id in "abcd":
            dedup.seen(record_id)
        assert len(dedup) == 3
        assert "a" not in dedup
        # Beyond the window, an old id reads as fresh again — the
        # documented (and harmless, at window=4096) failure mode.
        assert not dedup.seen("a")

    def test_duplicate_refreshes_recency(self):
        dedup = RecordDeduper(window=2)
        dedup.seen("a")
        dedup.seen("b")
        dedup.seen("a")  # duplicate: 'a' becomes most recent
        dedup.seen("c")  # evicts 'b', not 'a'
        assert "a" in dedup
        assert "b" not in dedup

    def test_window_validated(self):
        with pytest.raises(ValueError):
            RecordDeduper(window=0)


class TestIdempotentIngest:
    def test_records_carry_ids_and_get_acked(self):
        testbed = SenSocialTestbed(seed=11)
        node = testbed.add_user("alice", "Paris")
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
        testbed.run(300.0)
        health = node.manager.health()
        assert health["enqueued"] > 0
        assert health["queued"] == 0  # every record acked and forgotten
        assert health["acked"] == health["enqueued"]
        assert testbed.server.records_received == health["enqueued"]
        assert testbed.server.acks_sent >= health["acked"]

    def test_replayed_record_ingested_once(self):
        testbed = SenSocialTestbed(seed=11)
        node = testbed.add_user("alice", "Paris")
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
        testbed.run(120.0)
        received = testbed.server.records_received
        assert received > 0
        # Simulate a lost ack: the device re-sends a record the server
        # has already ingested.
        payload = dict(testbed.server.database.records_of("alice")[0])
        payload["record_id"] = "alice-device-r1"
        testbed.server.dedup.seen("alice-device-r1")
        before = testbed.server.records_received
        node.phone.send(testbed.server.address, "stream-data", payload)
        testbed.run(5.0)
        assert testbed.server.records_received == before
        assert testbed.server.records_duplicate >= 1

    def test_outbox_absorbs_partition_and_flushes(self):
        testbed = SenSocialTestbed(seed=13)
        node = testbed.add_user("alice", "Paris")
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
        testbed.run(120.0)
        testbed.network.set_down(node.phone.address)
        testbed.network.set_down(node.manager.mqtt.client.address)
        testbed.run(180.0)
        assert node.manager.health()["queued"] > 0  # storing, not losing
        testbed.network.set_down(node.phone.address, False)
        testbed.network.set_down(node.manager.mqtt.client.address, False)
        testbed.run(180.0)
        health = node.manager.health()
        assert health["queued"] == 0
        assert health["acked"] == health["enqueued"]
        # At-least-once underneath, exactly-once on top.
        assert testbed.server.records_received == health["enqueued"]
