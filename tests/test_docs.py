"""Documentation health: the README quickstart runs, and every file
the docs reference exists."""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


class TestReadmeQuickstart:
    def test_quickstart_code_block_runs(self):
        """Execute the first python code block of the README."""
        readme = (REPO / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert blocks, "README has no python code blocks"
        namespace = {}
        exec(blocks[0], namespace)  # raises on any API drift

    def test_second_code_block_runs_in_sequence(self):
        readme = (REPO / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert len(blocks) >= 2
        namespace = {}
        exec(blocks[0], namespace)
        # The second block continues from the first one's testbed and
        # needs a registered "bob".
        namespace["testbed"].add_user("bob", home_city="Paris")
        exec(blocks[1], namespace)


class TestDocReferences:
    @pytest.mark.parametrize("doc", ["README.md", "DESIGN.md",
                                     "EXPERIMENTS.md", "docs/ARCHITECTURE.md",
                                     "docs/CALIBRATION.md", "docs/FAULTS.md",
                                     "docs/OBSERVABILITY.md",
                                     "docs/DURABILITY.md",
                                     "docs/PERFORMANCE.md",
                                     "docs/SCALING.md"])
    def test_referenced_paths_exist(self, doc):
        text = (REPO / doc).read_text()
        referenced = re.findall(
            r"`((?:src|tests|benchmarks|examples)/[\w/.-]+\.(?:py|md))`", text)
        for path in referenced:
            assert (REPO / path).exists(), f"{doc} references missing {path}"

    def test_design_lists_every_benchmark(self):
        design = (REPO / "DESIGN.md").read_text()
        for bench in sorted((REPO / "benchmarks").glob("test_*.py")):
            assert bench.name in design, \
                f"DESIGN.md missing benchmark {bench.name}"

    def test_readme_lists_every_example(self):
        readme = (REPO / "README.md").read_text()
        for example in sorted((REPO / "examples").glob("*.py")):
            assert f"examples/{example.name}" in readme, \
                f"README missing example {example.name}"
