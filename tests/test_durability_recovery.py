"""Corruption-tolerant recovery tests: scan classification (torn tail,
mid-log bit rot, snapshot rot), full-history fallback, the replay
divergence oracle, bounded backfill, and the chaos plans that inject
each damage class end to end."""

import types

import pytest

from repro.core.common import Granularity, ModalityType
from repro.durability import (
    JournalEntry,
    StorageMedium,
    fingerprint_store,
    run_recovery_scan,
)
from repro.durability.recovery import BackfillCheckpoint, JournalBackfill
from repro.faults import ChaosController, FaultPlan
from repro.faults.plans import bitrot_plan, torn_tail_plan
from repro.scenarios.testbed import SenSocialTestbed

from tests.test_durability_journal import make_store, recover


def seed_entries(medium, count, *, start=0, collection="records"):
    for index in range(start, start + count):
        medium.append(JournalEntry(
            seq=index, op="ingest", collection=collection,
            payload={"document": {"user_id": f"u{index % 3}", "n": index},
                     "record_id": f"r{index}"}))


class TestScanClassification:
    def test_clean_log_scans_clean(self):
        medium = StorageMedium()
        seed_entries(medium, 5)
        scan = run_recovery_scan(medium)
        assert scan.clean
        assert scan.scanned_frames == 5
        assert len(scan.entries) == 5
        assert (scan.torn_frames, scan.quarantined_frames) == (0, 0)

    def test_torn_tail_truncated_and_accounted(self):
        medium = StorageMedium()
        seed_entries(medium, 4)
        before = medium.log_bytes
        lost = medium.simulate_torn_append()
        scan = run_recovery_scan(medium, repair=True)
        # The torn frame was never acked: clean, but fully accounted.
        assert scan.clean
        assert scan.torn_frames == 1
        assert scan.truncated_bytes == lost
        assert len(scan.entries) == 4
        # Repair put the log back on a frame boundary.
        assert medium.log_bytes == before
        seed_entries(medium, 1, start=4)
        assert [entry.seq for entry in medium.entries] == [0, 1, 2, 3, 4]

    def test_verify_path_leaves_torn_tail_in_place(self):
        medium = StorageMedium()
        seed_entries(medium, 2)
        medium.simulate_torn_append()
        torn_size = medium.log_bytes
        scan = run_recovery_scan(medium, repair=False)
        assert scan.torn_frames == 1
        assert medium.log_bytes == torn_size  # untouched

    def test_midlog_corruption_quarantines_and_keeps_prefix(self):
        medium = StorageMedium()
        seed_entries(medium, 7)
        assert medium.corrupt_frame()
        scan = run_recovery_scan(medium)
        assert not scan.clean
        assert scan.quarantined_frames == 1
        # Longest valid prefix only; intact frames beyond the damage
        # are discarded (their effects may depend on the lost one).
        assert scan.discarded_frames >= 1
        assert (len(scan.entries) + scan.quarantined_frames
                + scan.discarded_frames == 7)
        seqs = [entry.seq for entry in scan.entries]
        assert seqs == list(range(len(seqs)))
        kinds = {issue.kind for issue in scan.issues}
        assert "crc_mismatch" in kinds

    def test_snapshot_rot_with_full_history_replays_from_genesis(self):
        medium, journal, store = make_store()
        store["users"].insert_one({"user_id": "a"})
        journal.checkpoint()
        store["users"].insert_one({"user_id": "b"})
        medium.corrupt_snapshot()
        scan = run_recovery_scan(medium)
        assert scan.clean
        assert scan.used_full_history
        assert scan.snapshot is None
        # Both inserts are still there: checkpoints retain history.
        assert [entry.op for entry in scan.entries] == ["insert_one"] * 2

    def test_snapshot_rot_without_history_is_unrecoverable(self):
        medium, journal, store = make_store()
        store["users"].insert_one({"user_id": "a"})
        medium.mark_history_incomplete()
        journal.checkpoint()
        store["users"].insert_one({"user_id": "b"})
        medium.corrupt_snapshot()
        scan = run_recovery_scan(medium)
        assert not scan.clean
        assert scan.snapshot_unrecoverable
        # Best-effort: the tail after the checkpoint still replays.
        assert len(scan.entries) == 1


class TestBackfill:
    def make_medium(self):
        medium = StorageMedium()
        seed_entries(medium, 6)
        medium.append(JournalEntry(seq=6, op="create_index",
                                   collection="records",
                                   payload={"key": "n"}))
        seed_entries(medium, 3, start=7, collection="events")
        return medium

    def test_window_filters_op_and_collection(self):
        medium = self.make_medium()
        backfill = JournalBackfill(medium, ops=("ingest",),
                                   collection="records")
        assert [e.seq for e in backfill.window()] == [0, 1, 2, 3, 4, 5]
        assert [e.seq for e in backfill.window(2, 5)] == [2, 3, 4]

    def test_checkpoints_hide_nothing(self):
        medium, journal, store = make_store()
        store["records"].insert_one({"n": 1})
        journal.checkpoint()
        store["records"].insert_one({"n": 2})
        backfill = JournalBackfill(medium, ops=("insert_one",))
        assert len(backfill.window()) == 2  # full retained history

    def test_bounded_batches_resume_without_duplicates(self):
        medium = self.make_medium()
        backfill = JournalBackfill(medium, ops=("ingest",),
                                   collection="records")
        published = []
        checkpoint = None
        rounds = 0
        while checkpoint is None or not checkpoint.exhausted:
            checkpoint = backfill.run(published.append, limit=2,
                                      checkpoint=checkpoint)
            rounds += 1
            assert rounds < 10
        assert [e.seq for e in published] == [0, 1, 2, 3, 4, 5]
        assert checkpoint.published == 6
        assert checkpoint.skipped == 4  # index + 3 foreign-collection
        # Idempotent: re-running an exhausted checkpoint publishes none.
        again = backfill.run(published.append, checkpoint=checkpoint)
        assert again.published == 6 and len(published) == 6

    def test_checkpoint_round_trips_as_dict(self):
        checkpoint = BackfillCheckpoint(next_seq=4, published=3, skipped=1)
        assert (BackfillCheckpoint.from_dict(checkpoint.to_dict())
                == checkpoint)

    def test_negative_limit_rejected(self):
        backfill = JournalBackfill(StorageMedium())
        with pytest.raises(ValueError):
            backfill.run(lambda entry: None, limit=-1)


HORIZON_S = 1200.0
DRAIN_S = 180.0


def run_durable_scenario(plan, *, seed=11, shards=None):
    testbed = SenSocialTestbed(seed=seed, durability=True, shards=shards)
    for user_id in ("alice", "bob"):
        node = testbed.add_user(user_id, "Paris")
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
    controller = ChaosController(testbed)
    if plan is not None:
        controller.apply(plan)
    testbed.run(HORIZON_S)
    testbed.run(DRAIN_S)
    return testbed, controller


class TestChaosPlans:
    def test_torn_tail_zero_acked_loss(self):
        plan = torn_tail_plan(HORIZON_S)
        testbed, controller = run_durable_scenario(plan)
        report = controller.report()
        assert report.records_lost == 0
        counters = testbed.durability.health()["counters"]
        for name, want in plan.expected_recovery().items():
            assert counters[name] == want, name
        assert counters["journal_frames_torn"] == 1
        assert counters["journal_bytes_truncated"] > 0
        # Torn tails are clean damage: health recovers fully.
        assert not testbed.durability.corruption_detected
        # The recovered store still replays bit-identically.
        assert testbed.durability.verify_replay()["match"]

    def test_torn_tail_recovery_matches_clean_run(self):
        clean, _ = run_durable_scenario(None)
        torn, _ = run_durable_scenario(torn_tail_plan(HORIZON_S))
        assert (fingerprint_store(torn.durability.store)
                == fingerprint_store(clean.durability.store))

    def test_bitrot_accounted_and_loudly_degraded(self):
        plan = bitrot_plan(HORIZON_S)
        testbed, controller = run_durable_scenario(plan)
        report = controller.report()
        assert report.records_lost == 0
        counters = testbed.durability.health()["counters"]
        for name, want in plan.expected_recovery().items():
            assert counters[name] == want, name
        assert counters["journal_snapshot_fallbacks"] == 1
        assert counters["journal_frames_quarantined"] == 1
        # Acked data may be gone: sticky degraded health.
        health = testbed.durability.health()
        assert health["status"] == "degraded"
        assert health["counters"]["corruption_detected"] is True

    def test_undeclared_corruption_fails_accounting(self):
        from repro.cli import _check_recovery_expectations

        plan = torn_tail_plan(HORIZON_S)
        testbed, controller = run_durable_scenario(plan)
        report = controller.report()
        assert _check_recovery_expectations(plan, report) is False
        # The same damage against a plan that never declared it: the
        # all-zero derived expectations catch the stray torn frame.
        innocent = FaultPlan("innocent")
        assert _check_recovery_expectations(innocent, report) is True

    def test_accounting_ignores_non_durable_reports(self):
        from repro.cli import _check_recovery_expectations

        report = types.SimpleNamespace(server={})
        assert _check_recovery_expectations(FaultPlan(), report) is False


class TestReplayOracle:
    def test_clean_run_matches(self):
        testbed, _ = run_durable_scenario(None)
        verdict = testbed.durability.verify_replay()
        assert verdict["match"]
        assert verdict["live_fingerprint"] == verdict["replayed_fingerprint"]
        assert verdict["lost_appends"] == 0
        assert verdict["scan"]["clean"]

    def test_dirty_write_diverges(self):
        testbed, _ = run_durable_scenario(None)
        durability = testbed.durability
        # A mutation the journal never saw: the canonical failure the
        # oracle exists to catch.
        with durability.journal.suspended():
            durability.store["records"].insert_one({"smuggled": True})
        verdict = durability.verify_replay()
        assert not verdict["match"]

    def test_cluster_verifies_per_shard(self):
        testbed, _ = run_durable_scenario(None, shards=3)
        verdict = testbed.server.verify_replay()
        assert verdict["match"]
        assert verdict["shards_verified"] == 3
        assert all(doc["match"] for doc in verdict["shards"].values())

    def test_unit_replay_matches_journal_recover(self):
        medium, journal, store = make_store()
        store["users"].insert_one({"user_id": "a"})
        journal.checkpoint()
        store["users"].insert_one({"user_id": "b"})
        recovered, _ = recover(medium)
        scan = run_recovery_scan(medium, repair=False)
        assert scan.snapshot is not None
        assert recovered.snapshot() != {}  # sanity: state exists
