"""Unit tests for the Privacy Policy Manager."""

import pytest

from repro.core.common import (
    Condition,
    Filter,
    Granularity,
    ModalityType,
    Operator,
    StreamConfig,
)
from repro.core.mobile import (
    PrivacyPolicy,
    PrivacyPolicyDescriptor,
    PrivacyPolicyManager,
)


def config_for(modality=ModalityType.LOCATION, granularity=Granularity.RAW,
               conditions=()):
    return StreamConfig(stream_id="s", device_id="d", modality=modality,
                        granularity=granularity, filter=Filter(conditions))


class TestDescriptor:
    def test_default_allows_everything(self):
        descriptor = PrivacyPolicyDescriptor()
        assert descriptor.violation(config_for()) is None

    def test_raw_denied_classified_allowed(self):
        descriptor = PrivacyPolicyDescriptor()
        descriptor.set_policy(PrivacyPolicy(ModalityType.LOCATION,
                                            allow_raw=False))
        assert descriptor.violation(config_for()) is not None
        assert descriptor.violation(
            config_for(granularity=Granularity.CLASSIFIED)) is None

    def test_modality_fully_denied(self):
        descriptor = PrivacyPolicyDescriptor()
        descriptor.set_policy(PrivacyPolicy(
            ModalityType.MICROPHONE, allow_raw=False, allow_classified=False))
        violation = descriptor.violation(
            config_for(modality=ModalityType.MICROPHONE,
                       granularity=Granularity.CLASSIFIED))
        assert "not allowed" in violation

    def test_filter_conditions_screened_too(self):
        descriptor = PrivacyPolicyDescriptor()
        descriptor.set_policy(PrivacyPolicy(
            ModalityType.ACCELEROMETER, allow_raw=False,
            allow_classified=False))
        config = config_for(conditions=[Condition(
            ModalityType.PHYSICAL_ACTIVITY, Operator.EQUALS, "walking")])
        violation = descriptor.violation(config)
        assert "physical_activity" in violation

    def test_cross_user_conditions_not_screened_on_mobile(self):
        descriptor = PrivacyPolicyDescriptor()
        descriptor.set_policy(PrivacyPolicy(
            ModalityType.ACCELEROMETER, allow_raw=False,
            allow_classified=False))
        config = config_for(conditions=[Condition(
            ModalityType.PHYSICAL_ACTIVITY, Operator.EQUALS, "walking",
            user_id="someone-else")])
        assert descriptor.violation(config) is None

    def test_remove_policy_restores_allowance(self):
        descriptor = PrivacyPolicyDescriptor()
        descriptor.set_policy(PrivacyPolicy(ModalityType.LOCATION,
                                            allow_raw=False))
        descriptor.remove_policy(ModalityType.LOCATION)
        assert descriptor.violation(config_for()) is None


class TestManager:
    def test_screen_counts(self):
        manager = PrivacyPolicyManager()
        manager.screen(config_for())
        manager.screen(config_for())
        assert manager.screens_performed == 2

    def test_policy_change_fires_hooks(self):
        manager = PrivacyPolicyManager()
        fired = []
        manager.on_policy_change(lambda: fired.append(True))
        manager.set_policy(PrivacyPolicy(ModalityType.WIFI, allow_raw=False))
        manager.remove_policy(ModalityType.WIFI)
        assert fired == [True, True]
