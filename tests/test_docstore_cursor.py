"""Lazy-cursor behavior pins: streaming, early exit, count/len
semantics, snapshot isolation and projection-aware copying."""

import pytest

from repro.docstore import DocumentStore
from repro.docstore.errors import QueryError


@pytest.fixture
def collection():
    collection = DocumentStore()["c"]
    collection.insert_many([{"v": i, "parity": i % 2} for i in range(100)])
    return collection


class TestLazyStreaming:
    def test_find_alone_examines_nothing(self, collection):
        before = collection.candidates_examined
        collection.find({"v": {"$gte": 0}})
        assert collection.candidates_examined == before

    def test_find_one_stops_at_the_first_match(self, collection):
        before = collection.candidates_examined
        document = collection.find_one({"v": 7})
        assert document["v"] == 7
        # Insertion order: documents 0..7 are examined, nothing after.
        assert collection.candidates_examined - before == 8

    def test_limit_stops_the_scan_early(self, collection):
        before = collection.candidates_examined
        results = collection.find({"parity": 0}).limit(3).to_list()
        assert [doc["v"] for doc in results] == [0, 2, 4]
        assert collection.candidates_examined - before == 5

    def test_cursor_is_reiterable_with_one_scan(self, collection):
        cursor = collection.find({"parity": 1})
        before = collection.candidates_examined
        first = [doc["v"] for doc in cursor]
        second = [doc["v"] for doc in cursor]
        assert first == second
        # The second pass replays the cursor's cache, not the store.
        assert collection.candidates_examined - before == 100

    def test_interleaved_iterators_share_the_stream(self, collection):
        cursor = collection.find({"parity": 0})
        one, two = iter(cursor), iter(cursor)
        assert next(one)["v"] == 0
        assert next(two)["v"] == 0
        assert next(one)["v"] == 2
        assert next(two)["v"] == 2

    def test_candidates_pinned_at_find_time(self, collection):
        cursor = collection.find({"parity": 0})
        collection.insert_one({"v": 100, "parity": 0})
        assert all(doc["v"] < 100 for doc in cursor)
        # A fresh find sees the new document.
        assert collection.find({"v": 100}).count() == 1

    def test_results_are_copies(self, collection):
        document = collection.find_one({"v": 3})
        document["v"] = 999
        assert collection.find_one({"v": 3})["v"] == 3
        assert collection.count({"v": 999}) == 0


class TestCountAndLen:
    def test_count_ignores_skip_and_limit(self, collection):
        cursor = collection.find({"parity": 0}).skip(10).limit(5)
        assert cursor.count() == 50

    def test_len_respects_skip_and_limit(self, collection):
        cursor = collection.find({"parity": 0}).skip(10).limit(5)
        assert len(cursor) == 5
        assert len(collection.find({"parity": 0}).skip(48)) == 2
        assert len(collection.find({"parity": 0}).limit(1000)) == 50

    def test_count_with_sort_does_not_sort(self, collection):
        """Sorting cannot change cardinality; counting a sorted cursor
        must not pay for ordering (or copying)."""
        cursor = collection.find({"parity": 1}).sort("v", -1)
        assert cursor.count() == 50
        assert len(cursor) == 50
        # The cursor still iterates sorted afterwards.
        values = [doc["v"] for doc in cursor]
        assert values == sorted(values, reverse=True)


class TestProjectionCopies:
    @pytest.fixture
    def nested(self):
        collection = DocumentStore()["n"]
        collection.insert_one({
            "name": "alice",
            "secret": "s3cr3t",
            "profile": {"city": "Paris", "token": "t", "tags": ["a", "b"]},
            "history": [{"at": 1, "ip": "x"}, {"at": 2, "ip": "y"}],
        })
        return collection

    def test_include_mode_keeps_only_named_paths(self, nested):
        document = nested.find_one({}, {"name": 1, "profile.city": 1})
        assert document == {"_id": 1, "name": "alice",
                            "profile": {"city": "Paris"}}

    def test_exclude_mode_drops_named_paths(self, nested):
        document = nested.find_one({}, {"secret": 0, "profile.token": 0})
        assert "secret" not in document
        assert document["profile"] == {"city": "Paris", "tags": ["a", "b"]}
        assert document["name"] == "alice"

    def test_id_suppression(self, nested):
        assert "_id" not in nested.find_one({}, {"name": 1, "_id": 0})
        assert "_id" not in nested.find_one({}, {"secret": 0, "_id": 0})

    def test_mixed_projection_rejected(self, nested):
        with pytest.raises(QueryError, match="cannot mix"):
            nested.find({}, {"name": 1, "secret": 0}).to_list()

    def test_exclusion_leaf_on_list_index_is_a_no_op(self, nested):
        """``delete_path`` only removes dict keys; an exclusion leaf
        landing on a list index must not drop the element."""
        document = nested.find_one({}, {"history.0": 0})
        assert len(document["history"]) == 2

    def test_exclusion_descends_through_list_indices(self, nested):
        document = nested.find_one({}, {"history.1.ip": 0})
        assert document["history"] == [{"at": 1, "ip": "x"}, {"at": 2}]

    def test_whole_subtree_exclusion_wins_over_deeper_path(self, nested):
        for projection in ({"profile": 0, "profile.city": 0},
                           {"profile.city": 0, "profile": 0}):
            document = nested.find_one({}, projection)
            assert "profile" not in document

    def test_projected_results_are_deep_copies(self, nested):
        document = nested.find_one({}, {"profile.token": 0})
        document["profile"]["tags"].append("z")
        document["history"][0]["ip"] = "mutated"
        stored = nested.find_one({})
        assert stored["profile"]["tags"] == ["a", "b"]
        assert stored["history"][0]["ip"] == "x"

    def test_include_projection_results_are_deep_copies(self, nested):
        document = nested.find_one({}, {"profile.tags": 1})
        document["profile"]["tags"].append("z")
        assert nested.find_one({})["profile"]["tags"] == ["a", "b"]
