"""Tests for the $mul/$min/$max update operators and OSN feed queries."""

import pytest

from repro.docstore import DocumentStore, UpdateError
from repro.osn import ActionType, OsnService
from repro.simkit import World


class TestNumericUpdateOperators:
    @pytest.fixture
    def docs(self):
        collection = DocumentStore()["d"]
        collection.insert_one({"k": "a", "n": 10})
        return collection

    def test_mul(self, docs):
        docs.update_one({"k": "a"}, {"$mul": {"n": 3}})
        assert docs.find_one({"k": "a"})["n"] == 30

    def test_mul_missing_field_becomes_zero(self, docs):
        docs.update_one({"k": "a"}, {"$mul": {"ghost": 5}})
        assert docs.find_one({"k": "a"})["ghost"] == 0

    def test_mul_non_numeric_rejected(self, docs):
        with pytest.raises(UpdateError):
            docs.update_one({"k": "a"}, {"$mul": {"k": 2}})

    def test_min_lowers_only(self, docs):
        docs.update_one({"k": "a"}, {"$min": {"n": 5}})
        assert docs.find_one({"k": "a"})["n"] == 5
        docs.update_one({"k": "a"}, {"$min": {"n": 99}})
        assert docs.find_one({"k": "a"})["n"] == 5

    def test_max_raises_only(self, docs):
        docs.update_one({"k": "a"}, {"$max": {"n": 99}})
        assert docs.find_one({"k": "a"})["n"] == 99
        docs.update_one({"k": "a"}, {"$max": {"n": 1}})
        assert docs.find_one({"k": "a"})["n"] == 99

    def test_min_max_set_missing_field(self, docs):
        docs.update_one({"k": "a"}, {"$min": {"low": 3}})
        docs.update_one({"k": "a"}, {"$max": {"high": 7}})
        document = docs.find_one({"k": "a"})
        assert document["low"] == 3
        assert document["high"] == 7


class TestFeedQueries:
    @pytest.fixture
    def service(self):
        world = World(seed=71)
        service = OsnService(world, "facebook")
        for user in ["a", "b", "c"]:
            service.register_user(user)
        service.perform_action("a", ActionType.POST, content="p1",
                               target=None)
        post_id = "post-1"
        service.perform_action("b", ActionType.COMMENT, content="c1",
                               target=post_id)
        world.run_for(10.0)
        service.perform_action("c", ActionType.COMMENT, content="c2",
                               target=post_id)
        service.perform_action("b", ActionType.LIKE, target=post_id)
        service.perform_action("c", ActionType.LIKE, target=post_id)
        service.perform_action("b", ActionType.LIKE, target=post_id)  # again
        service.perform_action("a", ActionType.SHARE, target="elsewhere")
        return service

    def test_posts_of_filters_types(self, service):
        posts = service.posts_of("a")
        assert [action.content for action in posts] == ["p1"]

    def test_comments_on_ordered_by_time(self, service):
        comments = service.comments_on("post-1")
        assert [action.content for action in comments] == ["c1", "c2"]

    def test_likes_unique_and_sorted(self, service):
        assert service.likes_of("post-1") == ["b", "c"]

    def test_unknown_target_is_empty(self, service):
        assert service.comments_on("nothing") == []
        assert service.likes_of("nothing") == []
