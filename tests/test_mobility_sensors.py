"""Unit tests for mobility models, environments and sensors."""

import pytest

from repro.device import (
    ActivityState,
    AudioState,
    CityMobility,
    CityRegistry,
    EnvironmentRegistry,
    RandomWaypoint,
    Smartphone,
    UserEnvironment,
)
from repro.device.mobility import City
from repro.docstore import haversine_km
from repro.net.network import Network
from repro.simkit import SimulationError, World


class TestCityRegistry:
    def test_europe_has_paris_and_bordeaux(self):
        cities = CityRegistry.europe()
        assert "Paris" in cities.names()
        assert "Bordeaux" in cities.names()

    def test_city_of_resolves_position(self):
        cities = CityRegistry.europe()
        paris = cities.get("Paris")
        assert cities.city_of(paris.center).name == "Paris"

    def test_city_of_outside_everything(self):
        cities = CityRegistry.europe()
        assert cities.city_of([30.0, 60.0]) is None

    def test_duplicate_city_rejected(self):
        cities = CityRegistry.europe()
        with pytest.raises(SimulationError):
            cities.add(City("Paris", 0, 0))

    def test_unknown_city_rejected(self):
        with pytest.raises(SimulationError):
            CityRegistry.europe().get("Atlantis")

    def test_contains_radius(self):
        city = City("Test", 0.0, 0.0, radius_km=10.0)
        assert city.contains([0.05, 0.0])
        assert not city.contains([1.0, 0.0])


class TestCityMobility:
    def make(self, seed=1):
        world = World(seed=seed)
        registry = EnvironmentRegistry()
        cities = CityRegistry.europe()
        environment = UserEnvironment("u")
        mobility = CityMobility(world, environment, registry, cities, "Paris")
        return world, mobility, environment, cities

    def test_starts_at_home_city_center(self):
        _, mobility, environment, cities = self.make()
        assert environment.position == cities.get("Paris").center
        assert environment.city_name == "Paris"

    def test_user_stays_in_home_city(self):
        world, mobility, environment, cities = self.make()
        mobility.start()
        world.run_for(6 * 3600.0)
        assert cities.get("Paris").contains(environment.position)

    def test_activity_states_visited(self):
        world, mobility, environment, _ = self.make()
        mobility.start()
        seen = set()
        for _ in range(200):
            world.run_for(30.0)
            seen.add(environment.activity)
        assert ActivityState.STILL in seen
        assert ActivityState.WALKING in seen

    def test_travel_reaches_destination(self):
        world, mobility, environment, cities = self.make()
        mobility.start()
        mobility.travel_to("Bordeaux", duration_s=3600.0)
        assert mobility.travelling
        world.run_for(4500.0)
        assert not mobility.travelling
        assert environment.city_name == "Bordeaux"

    def test_travel_progress_is_monotonic(self):
        world, mobility, environment, cities = self.make()
        mobility.start()
        target = cities.get("Bordeaux").center
        mobility.travel_to("Bordeaux", duration_s=7200.0)
        last = haversine_km(environment.position, target)
        for _ in range(20):
            world.run_for(300.0)
            now = haversine_km(environment.position, target)
            assert now <= last + 1e-6
            last = now

    def test_stop_halts_updates(self):
        world, mobility, environment, _ = self.make()
        mobility.start()
        world.run_for(60.0)
        mobility.stop()
        position = list(environment.position)
        activity = environment.activity
        world.run_for(3600.0)
        assert environment.position == position
        assert environment.activity == activity


class TestRandomWaypoint:
    def test_stays_inside_bbox(self):
        world = World(seed=5)
        registry = EnvironmentRegistry()
        environment = UserEnvironment("w")
        bbox = (0.0, 0.0, 0.1, 0.1)
        RandomWaypoint(world, environment, registry, bbox).start()
        for _ in range(100):
            world.run_for(30.0)
            lon, lat = environment.position
            assert 0.0 <= lon <= 0.1
            assert 0.0 <= lat <= 0.1


class TestEnvironmentRegistry:
    def test_duplicate_registration_rejected(self):
        registry = EnvironmentRegistry()
        registry.register(UserEnvironment("u"))
        with pytest.raises(SimulationError):
            registry.register(UserEnvironment("u"))

    def test_nearby_users_sorted_by_distance(self):
        registry = EnvironmentRegistry()
        registry.register(UserEnvironment("a", position=[0.0, 0.0]))
        registry.register(UserEnvironment("b", position=[0.0002, 0.0]))
        registry.register(UserEnvironment("c", position=[0.0001, 0.0]))
        registry.register(UserEnvironment("far", position=[1.0, 1.0]))
        assert registry.nearby_users("a", radius_km=1.0) == ["c", "b"]

    def test_access_point_visibility(self):
        registry = EnvironmentRegistry()
        registry.add_access_point("home", [0.0, 0.0])
        registry.add_access_point("office", [0.5, 0.5])
        assert registry.visible_access_points([0.0001, 0.0]) == ["home"]


class TestSensors:
    @pytest.fixture
    def rig(self):
        world = World(seed=9)
        network = Network(world)
        registry = EnvironmentRegistry()
        phone = Smartphone(world, network, registry, "sensor-user")
        return world, registry, phone

    def test_accelerometer_window_shape(self, rig):
        _, _, phone = rig
        reading = phone.sensor("accelerometer").sample()
        assert len(reading.raw) == 40
        assert all(len(sample) == 3 for sample in reading.raw)

    def test_accelerometer_energy_charged(self, rig):
        _, _, phone = rig
        before = phone.battery.consumed_mah
        phone.sensor("accelerometer").sample()
        from repro.device import calibration
        assert phone.battery.consumed_mah - before == pytest.approx(
            calibration.SAMPLING_MAH["accelerometer"])

    def test_running_has_higher_variance_than_still(self, rig):
        _, _, phone = rig
        import statistics

        def spread(activity):
            phone.environment.activity = activity
            reading = phone.sensor("accelerometer").sample()
            magnitudes = [(x * x + y * y + z * z) ** 0.5
                          for x, y, z in reading.raw]
            return statistics.pstdev(magnitudes)

        assert spread(ActivityState.RUNNING) > 3 * spread(ActivityState.STILL)

    def test_microphone_tracks_audio_scene(self, rig):
        _, _, phone = rig
        phone.environment.audio = AudioState.SILENT
        silent = phone.sensor("microphone").sample()
        phone.environment.audio = AudioState.NOISY
        noisy = phone.sensor("microphone").sample()
        mean = lambda values: sum(values) / len(values)
        assert mean(noisy.raw) > 5 * mean(silent.raw)

    def test_gps_near_true_position(self, rig):
        _, _, phone = rig
        phone.environment.move_to(2.35, 48.85)
        fix = phone.sensor("location").sample().raw
        assert abs(fix["lon"] - 2.35) < 0.01
        assert abs(fix["lat"] - 48.85) < 0.01
        assert fix["accuracy_m"] > 0

    def test_wifi_sees_nearby_access_points(self, rig):
        _, registry, phone = rig
        phone.environment.move_to(0.0, 0.0)
        registry.add_access_point("near-ap", [0.0, 0.0])
        registry.add_access_point("far-ap", [2.0, 2.0])
        assert phone.sensor("wifi").sample().raw == ["near-ap"]

    def test_bluetooth_sees_collocated_devices(self, rig):
        world, registry, phone = rig
        network = Network(world)
        other = Smartphone(world, network, registry, "nearby-user")
        phone.environment.move_to(0.0, 0.0)
        other.environment.move_to(0.0001, 0.0)
        assert phone.sensor("bluetooth").sample().raw == ["bt-nearby-user"]

    def test_samples_counted(self, rig):
        _, _, phone = rig
        sensor = phone.sensor("wifi")
        sensor.sample()
        sensor.sample()
        assert sensor.samples_taken == 2
