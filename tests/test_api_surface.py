"""API surface tests: every public export resolves and the documented
entry points exist."""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.analysis",
    "repro.apps.conweb",
    "repro.apps.conweb_baseline",
    "repro.apps.gar",
    "repro.apps.sensor_map",
    "repro.apps.sensor_map_baseline",
    "repro.classify",
    "repro.cli",
    "repro.core.common",
    "repro.core.mobile",
    "repro.core.server",
    "repro.device",
    "repro.docstore",
    "repro.faults",
    "repro.metrics",
    "repro.mqtt",
    "repro.net",
    "repro.obs",
    "repro.osn",
    "repro.plugins",
    "repro.scenarios",
    "repro.sensing",
    "repro.simkit",
]


class TestApiSurface:
    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_imports(self, module_name):
        importlib.import_module(module_name)

    @pytest.mark.parametrize("module_name", [
        name for name in PUBLIC_MODULES
        if name not in ("repro.apps.gar", "repro.cli")])
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", None)
        if exported is None:
            return
        for name in exported:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_top_level_quickstart_names(self):
        import repro
        for name in ["SenSocialTestbed", "ModalityType", "Granularity",
                     "Filter", "Condition", "Operator", "ModalityValue",
                     "MulticastQuery", "build_paris_scenario"]:
            assert hasattr(repro, name)

    def test_version_is_set(self):
        import repro
        assert repro.__version__

    def test_docstrings_on_public_classes(self):
        """Every public class carries a docstring."""
        for module_name in PUBLIC_MODULES:
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                item = getattr(module, name)
                if isinstance(item, type):
                    assert item.__doc__, f"{module_name}.{name} lacks a docstring"
