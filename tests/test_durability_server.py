"""Server-side satellites of the durability work: the upsert-style
device registration, the dedup-window eviction boundary, the uniform
health schema on the database layers, and dedup telemetry gauges."""

from repro.core.common import Granularity, ModalityType
from repro.core.server.dedup import RecordDeduper
from repro.core.server.storage import ServerDatabase
from repro.docstore import DocumentStore
from repro.obs.health import Healthcheck
from repro.scenarios.testbed import SenSocialTestbed


class TestRegisterDeviceUpsert:
    def test_first_registration_seeds_defaults(self):
        database = ServerDatabase()
        database.register_device("alice", "d1", ["accelerometer"])
        doc = database.users.find_one({"user_id": "alice"})
        assert doc["device_id"] == "d1"
        assert doc["modalities"] == ["accelerometer"]
        assert doc["friends"] == []
        assert doc["location"] is None

    def test_reregistration_replaces_device_and_modalities(self):
        """A re-registration is the device declaring what it senses
        *now*: the modality list is replaced wholesale, not merged."""
        database = ServerDatabase()
        database.register_device("alice", "d1", ["accelerometer", "location"])
        database.register_device("alice", "d2", ["microphone"])
        doc = database.users.find_one({"user_id": "alice"})
        assert doc["device_id"] == "d2"
        assert doc["modalities"] == ["microphone"]
        assert database.users.count() == 1  # upsert, not a second row

    def test_reregistration_preserves_social_state(self):
        database = ServerDatabase()
        database.register_device("alice", "d1", ["accelerometer"])
        database.register_device("bob", "d2", ["accelerometer"])
        database.add_friend("alice", "bob")
        database.update_location("alice", 2.35, 48.85, "Paris", 10.0)
        database.register_device("alice", "d9", ["location"])
        assert database.friends_of("alice") == ["bob"]
        assert database.location_of("alice")["place"] == "Paris"


class TestDedupWindowBoundary:
    def test_replay_within_window_is_caught(self):
        """A replay after ``window - 1`` fresh records still dedups:
        the original id is the oldest entry but has not been evicted."""
        deduper = RecordDeduper(window=8)
        assert deduper.seen("r0") is False
        for index in range(7):  # window - 1 fresh ids; len == window
            deduper.seen(f"fresh-{index}")
        assert deduper.seen("r0") is True
        assert deduper.duplicates == 1

    def test_replay_after_exactly_window_slips_through(self):
        """The documented boundary: ``window`` fresh records evict the
        original id, so the replay is treated as new — the price of a
        bounded window, sized far above any retransmission horizon."""
        deduper = RecordDeduper(window=8)
        assert deduper.seen("r0") is False
        for index in range(8):  # exactly window fresh ids; r0 evicted
            deduper.seen(f"fresh-{index}")
        assert deduper.seen("r0") is False
        assert deduper.duplicates == 0

    def test_duplicate_refreshes_recency(self):
        """A duplicate sighting moves the id to the young end, resetting
        its eviction clock."""
        deduper = RecordDeduper(window=4)
        deduper.seen("r0")
        deduper.seen("a"), deduper.seen("b"), deduper.seen("c")
        assert deduper.seen("r0") is True  # refreshed
        deduper.seen("d"), deduper.seen("e"), deduper.seen("f")
        assert deduper.seen("r0") is True  # survived where it wouldn't have

    def test_remember_does_not_count_duplicates(self):
        deduper = RecordDeduper(window=4)
        deduper.remember("r0")
        deduper.remember("r0")
        assert deduper.duplicates == 0
        assert deduper.seen("r0") is True
        assert deduper.duplicates == 1

    def test_snapshot_roundtrip_preserves_order(self):
        deduper = RecordDeduper(window=4)
        for record_id in ("a", "b", "c"):
            deduper.seen(record_id)
        restored = RecordDeduper(window=4)
        for record_id in deduper.snapshot():
            restored.remember(record_id)
        restored.seen("d")
        restored.seen("e")  # evicts "a", the oldest
        assert "a" not in restored
        assert "b" in restored


class TestHealthSchemas:
    def test_document_store_health_is_uniform(self):
        store = DocumentStore()
        store["users"].insert_one({"user_id": "a"})
        health = store.health()
        assert Healthcheck.is_uniform(health)
        assert health["counters"]["documents"] == 1
        assert health["counters"]["docs_users"] == 1

    def test_server_database_health_is_uniform(self):
        database = ServerDatabase()
        database.register_device("alice", "d1", [])
        health = database.health()
        assert Healthcheck.is_uniform(health)
        assert health["counters"]["docs_users"] == 1

    def test_journaled_store_health_reports_lag(self):
        testbed = SenSocialTestbed(seed=2, durability=True)
        testbed.add_user("alice", "Paris")
        health = testbed.server.database.health()
        assert Healthcheck.is_uniform(health)
        assert "journal_lag" in health["counters"]
        assert health["journal"]["entries_written"] > 0

    def test_server_health_nests_database_and_durability(self):
        testbed = SenSocialTestbed(seed=2, durability=True)
        health = testbed.server.health()
        assert Healthcheck.is_uniform(health)
        assert Healthcheck.is_uniform(health["database"])
        assert Healthcheck.is_uniform(health["durability"])

    def test_plain_server_health_has_no_durability_section(self):
        testbed = SenSocialTestbed(seed=2)
        health = testbed.server.health()
        assert "durability" not in health
        assert Healthcheck.is_uniform(health["database"])


class TestDedupTelemetry:
    def test_gauges_reach_the_registry(self):
        testbed = SenSocialTestbed(seed=4, observability=True)
        node = testbed.add_user("alice", "Paris")
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
        testbed.run(300.0)
        testbed.run(60.0)
        telemetry = testbed.obs.telemetry
        assert telemetry.gauge("dedup_window_size").value \
            == len(testbed.server.dedup)
        assert telemetry.gauge("dedup_window_size").value > 0
        assert telemetry.gauge("dedup_duplicates").value \
            == testbed.server.dedup.duplicates
