"""Unit tests for the network fault models: loss, jitter, partition
windows, flap schedules, and drop accounting."""

import pytest

from repro.net import FixedLatency, Network
from repro.simkit import World


def make_network(seed=1, latency=None):
    world = World(seed=seed)
    return world, Network(world, default_latency=latency or FixedLatency(0.1))


def wire(network, inbox):
    network.register("a", lambda message: None)
    network.register("b", lambda message: inbox.append(message.payload))


class TestPacketLoss:
    def test_default_loss_eats_a_fraction(self):
        world, network = make_network()
        inbox = []
        wire(network, inbox)
        network.set_default_loss(0.5)
        for index in range(200):
            network.send("a", "b", index)
        world.run_for(5.0)
        assert 40 < len(inbox) < 160
        assert network.loss_drops == 200 - len(inbox)
        assert network.messages_dropped == network.loss_drops
        assert network.drop_count("b") == network.loss_drops

    def test_loss_one_drops_everything(self):
        world, network = make_network()
        inbox = []
        wire(network, inbox)
        network.set_endpoint_loss("b", 1.0)
        for index in range(20):
            network.send("a", "b", index)
        world.run_for(5.0)
        assert inbox == []
        assert network.loss_drops == 20

    def test_endpoint_loss_is_bidirectional(self):
        world, network = make_network()
        inbox = []
        wire(network, inbox)
        # Loss configured on the *source* eats its outbound traffic too:
        # a flaky radio fails both ways.
        network.set_endpoint_loss("a", 1.0)
        network.send("a", "b", "gone")
        world.run_for(1.0)
        assert inbox == []

    def test_link_loss_overrides_endpoint_loss(self):
        world, network = make_network()
        inbox = []
        wire(network, inbox)
        network.set_endpoint_loss("b", 1.0)
        network.set_link_loss("a", "b", 0.0)
        network.send("a", "b", "survives")
        world.run_for(1.0)
        assert inbox == ["survives"]

    def test_loss_rate_validated(self):
        _, network = make_network()
        with pytest.raises(ValueError):
            network.set_default_loss(1.5)
        with pytest.raises(ValueError):
            network.set_endpoint_loss("b", -0.1)

    def test_zero_loss_draws_nothing_from_fault_rng(self):
        # Fault-free runs must not consume fault randomness, so adding
        # the fault machinery can never perturb an existing scenario.
        world, network = make_network()
        inbox = []
        wire(network, inbox)
        before = network._fault_rng.getstate()
        network.send("a", "b", "x")
        world.run_for(1.0)
        assert network._fault_rng.getstate() == before


class TestJitter:
    def test_endpoint_jitter_delays_delivery(self):
        world, network = make_network()
        inbox = []
        wire(network, inbox)
        network.set_endpoint_jitter("b", FixedLatency(2.0))
        network.send("a", "b", "late")
        world.run_for(1.0)
        assert inbox == []
        world.run_for(1.5)
        assert inbox == ["late"]

    def test_link_jitter_overrides_endpoint_jitter(self):
        world, network = make_network()
        inbox = []
        wire(network, inbox)
        network.set_endpoint_jitter("b", FixedLatency(10.0))
        network.set_link_jitter("a", "b", FixedLatency(0.5))
        network.send("a", "b", "x")
        world.run_for(1.0)
        assert inbox == ["x"]

    def test_jitter_cleared_with_none(self):
        world, network = make_network()
        inbox = []
        wire(network, inbox)
        network.set_endpoint_jitter("b", FixedLatency(10.0))
        network.set_endpoint_jitter("b", None)
        network.send("a", "b", "x")
        world.run_for(1.0)
        assert inbox == ["x"]


class TestPartitionWindows:
    def test_scheduled_partition_opens_and_closes(self):
        world, network = make_network()
        inbox = []
        wire(network, inbox)
        network.schedule_partition("b", start=10.0, duration=5.0)
        world.run_for(9.0)
        assert not network.is_down("b")
        network.send("a", "b", "before")  # lands at t≈9.1, before start
        world.run_for(3.0)  # now t=12, inside the window
        assert network.is_down("b")
        network.send("a", "b", "during")
        world.run_for(4.0)  # now t=16, window closed
        assert not network.is_down("b")
        network.send("a", "b", "after")
        world.run_for(1.0)
        assert inbox == ["before", "after"]
        assert network.partition_drops == 1

    def test_flap_schedule_cycles(self):
        world, network = make_network()
        inbox = []
        wire(network, inbox)
        network.schedule_flaps("b", start=10.0, cycles=3,
                               down_for=5.0, up_for=5.0)
        down_samples = []
        for t in (12.0, 17.0, 22.0, 27.0, 32.0, 37.0, 42.0):
            world.run_until(t)
            down_samples.append(network.is_down("b"))
        assert down_samples == [True, False, True, False, True, False, False]


class TestDropAccounting:
    def test_drop_counts_split_by_cause(self):
        world, network = make_network()
        inbox = []
        wire(network, inbox)
        network.set_down("b")
        network.send("a", "b", "partitioned")
        network.set_down("b", False)
        network.set_link_loss("a", "b", 1.0)
        network.send("a", "b", "lossy")
        world.run_for(1.0)
        assert network.partition_drops == 1
        assert network.loss_drops == 1
        assert network.messages_dropped == 2
        assert network.bytes_dropped > 0
        assert network.drop_counts() == {"b": 2}
