"""Unit tests for the network substrate."""

import pytest

from repro.net import (
    DuplicateEndpointError,
    FixedLatency,
    GaussianLatency,
    Network,
    UniformLatency,
    UnknownEndpointError,
    estimate_size,
)
from repro.simkit import World


def make_network(seed=1, latency=None):
    world = World(seed=seed)
    return world, Network(world, default_latency=latency or FixedLatency(0.1))


class TestLatencyModels:
    def test_fixed_latency_is_constant(self, world):
        model = FixedLatency(0.5)
        rng = world.rng("x")
        assert all(model.sample(rng) == 0.5 for _ in range(10))

    def test_fixed_latency_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedLatency(-1.0)

    def test_uniform_latency_within_bounds(self, world):
        model = UniformLatency(0.1, 0.3)
        rng = world.rng("x")
        samples = [model.sample(rng) for _ in range(100)]
        assert all(0.1 <= sample <= 0.3 for sample in samples)
        assert model.mean() == pytest.approx(0.2)

    def test_uniform_latency_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(0.3, 0.1)

    def test_gaussian_latency_respects_floor(self, world):
        model = GaussianLatency(0.0, 10.0, floor=1.0)
        rng = world.rng("x")
        assert all(model.sample(rng) >= 1.0 for _ in range(100))

    def test_gaussian_latency_mean_is_mu(self):
        assert GaussianLatency(46.0, 2.8).mean() == 46.0

    def test_gaussian_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            GaussianLatency(1.0, -1.0)


class TestSizeEstimation:
    def test_string_size_tracks_length(self):
        assert estimate_size("abcd") > estimate_size("ab")

    def test_dict_size_includes_keys_and_values(self):
        assert estimate_size({"key": "value"}) > estimate_size("value")

    def test_list_size_sums_elements(self):
        assert estimate_size([1, 2, 3]) >= 3

    def test_none_has_small_size(self):
        assert estimate_size(None) == 4

    def test_bytes_size_is_length(self):
        assert estimate_size(b"12345") == 5


class TestDelivery:
    def test_message_arrives_after_latency(self):
        world, network = make_network()
        inbox = []
        network.register("a", lambda message: None)
        network.register("b", inbox.append)
        network.send("a", "b", {"hello": 1})
        assert inbox == []
        world.run_for(0.2)
        assert len(inbox) == 1
        assert inbox[0].payload == {"hello": 1}
        assert inbox[0].latency == pytest.approx(0.1)

    def test_unknown_destination_rejected(self):
        _, network = make_network()
        network.register("a", lambda message: None)
        with pytest.raises(UnknownEndpointError):
            network.send("a", "ghost", {})

    def test_duplicate_registration_rejected(self):
        _, network = make_network()
        network.register("a", lambda message: None)
        with pytest.raises(DuplicateEndpointError):
            network.register("a", lambda message: None)

    def test_unregister_then_reuse_address(self):
        _, network = make_network()
        network.register("a", lambda message: None)
        network.unregister("a")
        network.register("a", lambda message: None)

    def test_per_link_fifo_ordering(self):
        world = World(seed=3)
        network = Network(world, default_latency=UniformLatency(0.01, 0.5))
        inbox = []
        network.register("a", lambda message: None)
        network.register("b", lambda message: inbox.append(message.payload))
        for index in range(50):
            network.send("a", "b", index)
        world.run_for(5.0)
        assert inbox == list(range(50))

    def test_link_latency_override(self):
        world, network = make_network()
        inbox = []
        network.register("a", lambda message: None)
        network.register("b", inbox.append)
        network.set_link_latency("a", "b", FixedLatency(2.0))
        network.send("a", "b", "x")
        world.run_for(1.0)
        assert inbox == []
        world.run_for(1.5)
        assert len(inbox) == 1

    def test_endpoint_latency_override(self):
        world, network = make_network()
        inbox = []
        network.register("a", lambda message: None)
        network.register("b", inbox.append)
        network.set_endpoint_latency("b", FixedLatency(3.0))
        network.send("a", "b", "x")
        world.run_for(2.9)
        assert inbox == []
        world.run_for(0.2)
        assert len(inbox) == 1

    def test_counters(self):
        world, network = make_network()
        network.register("a", lambda message: None)
        network.register("b", lambda message: None)
        network.send("a", "b", "xyz")
        assert network.messages_sent == 1
        assert network.bytes_sent > 0


class TestPartitions:
    def test_messages_to_down_endpoint_are_dropped(self):
        world, network = make_network()
        inbox = []
        network.register("a", lambda message: None)
        network.register("b", inbox.append)
        network.set_down("b")
        network.send("a", "b", "lost")
        world.run_for(1.0)
        assert inbox == []
        assert network.messages_dropped == 1
        assert network.partition_drops == 1
        assert network.drop_count("b") == 1

    def test_endpoint_recovers_after_partition(self):
        world, network = make_network()
        inbox = []
        network.register("a", lambda message: None)
        network.register("b", inbox.append)
        network.set_down("b")
        network.send("a", "b", "lost")
        network.set_down("b", False)
        network.send("a", "b", "found")
        world.run_for(1.0)
        assert [message.payload for message in inbox] == ["found"]

    def test_in_flight_message_dropped_if_destination_goes_down(self):
        world, network = make_network()
        inbox = []
        network.register("a", lambda message: None)
        network.register("b", inbox.append)
        network.send("a", "b", "in-flight")
        network.set_down("b")
        world.run_for(1.0)
        assert inbox == []
        assert network.messages_dropped == 1
        assert network.drop_count("b") == 1
