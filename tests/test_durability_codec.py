"""Durable wire-format tests: canonical value round-trips, frame
classification, and fingerprint behaviour."""

import zlib

import pytest

from repro.durability import codec
from repro.durability.errors import CodecError
from repro.durability.journal import JournalEntry


ROUND_TRIP_VALUES = [
    None,
    True,
    False,
    0,
    1,
    -1,
    127,
    128,
    -128,
    -129,
    2 ** 80,            # arbitrary precision survives
    -(2 ** 80),
    0.0,
    -0.0,
    3.141592653589793,
    float("inf"),
    float("-inf"),
    "",
    "hello",
    "naïve café ☕",
    b"",
    b"\x00\xff\xd7j",
    [],
    [1, "two", None],
    (),
    (1, 2.5),
    {},
    {"a": 1, "b": [True, {"nested": (1, 2)}]},
]


class TestValueCodec:
    @pytest.mark.parametrize("value", ROUND_TRIP_VALUES,
                             ids=[repr(v)[:40] for v in ROUND_TRIP_VALUES])
    def test_round_trip_exact(self, value):
        decoded = codec.loads(codec.dumps(value))
        assert decoded == value
        assert type(decoded) is type(value)

    def test_tuples_stay_tuples_inside_containers(self):
        value = {"point": (48.85, 2.35), "path": [(0, 0), (1, 1)]}
        decoded = codec.loads(codec.dumps(value))
        assert decoded["point"] == (48.85, 2.35)
        assert all(type(p) is tuple for p in decoded["path"])

    def test_dict_insertion_order_preserved(self):
        value = {"z": 1, "a": 2, "m": 3}
        assert list(codec.loads(codec.dumps(value))) == ["z", "a", "m"]

    def test_bools_do_not_collapse_to_ints(self):
        decoded = codec.loads(codec.dumps([True, 1, False, 0]))
        assert [type(v) for v in decoded] == [bool, int, bool, int]

    def test_negative_zero_float_preserved(self):
        import math
        assert math.copysign(1.0, codec.loads(codec.dumps(-0.0))) == -1.0

    def test_unsupported_type_raises(self):
        with pytest.raises(CodecError, match="object"):
            codec.dumps({"bad": object()})

    def test_trailing_garbage_rejected(self):
        with pytest.raises(CodecError, match="trailing"):
            codec.loads(codec.dumps(1) + b"x")

    def test_truncated_encoding_rejected(self):
        data = codec.dumps("hello world")
        with pytest.raises(CodecError):
            codec.loads(data[:-3])

    def test_canonical_same_value_same_bytes(self):
        value = {"user": "a", "v": [1, 2.5, ("x", None)]}
        assert codec.dumps(value) == codec.dumps(dict(value))


class TestFraming:
    def test_frame_round_trip(self):
        body = codec.dumps({"n": 42})
        status, out, end = codec.read_frame(codec.frame(body), 0)
        assert status == codec.FRAME_OK
        assert out == body
        assert end == codec.FRAME_HEADER.size + len(body)

    def test_torn_frame_classified(self):
        data = codec.frame(codec.dumps({"n": 42}))
        for cut in (1, codec.FRAME_HEADER.size + 1, len(data) - 1):
            status, _, end = codec.read_frame(data[:cut], 0)
            assert status == codec.FRAME_TORN
            assert end == cut

    def test_flipped_bit_classified_corrupt(self):
        data = bytearray(codec.frame(codec.dumps({"n": 42})))
        data[codec.FRAME_HEADER.size + 2] ^= 0xFF
        status, _, end = codec.read_frame(data, 0)
        assert status == codec.FRAME_CORRUPT
        assert end == len(data)  # frame boundary still known: resyncable

    def test_bad_magic_classified_corrupt(self):
        data = bytearray(codec.frame(b"body"))
        data[0] ^= 0xFF
        status, _, _ = codec.read_frame(data, 0)
        assert status == codec.FRAME_CORRUPT

    def test_crc_actually_covers_body(self):
        body = codec.dumps({"n": 42})
        framed = codec.frame(body)
        _, _, crc = codec.FRAME_HEADER.unpack_from(framed, 0)
        assert crc == zlib.crc32(body)

    def test_consecutive_frames_scan(self):
        log = b"".join(codec.frame(codec.dumps(i)) for i in range(5))
        offset, seen = 0, []
        while offset < len(log):
            status, body, offset = codec.read_frame(log, offset)
            assert status == codec.FRAME_OK
            seen.append(codec.loads(body))
        assert seen == [0, 1, 2, 3, 4]


class TestEntryCodec:
    def test_entry_round_trip(self):
        entry = JournalEntry(seq=7, op="ingest", collection="records",
                             payload={"document": {"v": (1, 2)},
                                      "record_id": "r1"})
        decoded = codec.decode_entry(
            codec.read_frame(codec.encode_entry(entry), 0)[1])
        assert decoded == entry

    def test_from_dict_pairs_to_dict(self):
        entry = JournalEntry(seq=1, op="drop", collection="x")
        assert JournalEntry.from_dict(entry.to_dict()) == entry


class TestFingerprint:
    def test_equal_values_equal_fingerprints(self):
        a = {"users": [{"_id": 1, "name": "a"}]}
        assert codec.fingerprint(a) == codec.fingerprint(dict(a))

    def test_any_difference_changes_fingerprint(self):
        base = {"users": [{"_id": 1, "n": 1}]}
        for other in ({"users": [{"_id": 1, "n": 2}]},
                      {"users": [{"_id": 2, "n": 1}]},
                      {"users": [{"_id": 1, "n": 1.0}]},  # type change
                      {"users": [{"n": 1, "_id": 1}]}):   # key order
            assert codec.fingerprint(base) != codec.fingerprint(other)

    def test_store_fingerprint_tracks_state(self):
        from repro.docstore import DocumentStore
        store, twin = DocumentStore(), DocumentStore()
        for target in (store, twin):
            target["users"].insert_one({"user_id": "a"})
        assert (codec.fingerprint_store(store)
                == codec.fingerprint_store(twin))
        store["users"].insert_one({"user_id": "b"})
        assert (codec.fingerprint_store(store)
                != codec.fingerprint_store(twin))