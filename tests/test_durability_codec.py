"""Durable wire-format tests: canonical value round-trips, frame
classification, and fingerprint behaviour."""

import zlib

import pytest

from repro.durability import codec
from repro.durability.errors import CodecError
from repro.durability.journal import JournalEntry


ROUND_TRIP_VALUES = [
    None,
    True,
    False,
    0,
    1,
    -1,
    127,
    128,
    -128,
    -129,
    2 ** 80,            # arbitrary precision survives
    -(2 ** 80),
    0.0,
    -0.0,
    3.141592653589793,
    float("inf"),
    float("-inf"),
    "",
    "hello",
    "naïve café ☕",
    b"",
    b"\x00\xff\xd7j",
    [],
    [1, "two", None],
    (),
    (1, 2.5),
    {},
    {"a": 1, "b": [True, {"nested": (1, 2)}]},
]


class TestValueCodec:
    @pytest.mark.parametrize("value", ROUND_TRIP_VALUES,
                             ids=[repr(v)[:40] for v in ROUND_TRIP_VALUES])
    def test_round_trip_exact(self, value):
        decoded = codec.loads(codec.dumps(value))
        assert decoded == value
        assert type(decoded) is type(value)

    def test_tuples_stay_tuples_inside_containers(self):
        value = {"point": (48.85, 2.35), "path": [(0, 0), (1, 1)]}
        decoded = codec.loads(codec.dumps(value))
        assert decoded["point"] == (48.85, 2.35)
        assert all(type(p) is tuple for p in decoded["path"])

    def test_dict_insertion_order_preserved(self):
        value = {"z": 1, "a": 2, "m": 3}
        assert list(codec.loads(codec.dumps(value))) == ["z", "a", "m"]

    def test_bools_do_not_collapse_to_ints(self):
        decoded = codec.loads(codec.dumps([True, 1, False, 0]))
        assert [type(v) for v in decoded] == [bool, int, bool, int]

    def test_negative_zero_float_preserved(self):
        import math
        assert math.copysign(1.0, codec.loads(codec.dumps(-0.0))) == -1.0

    def test_unsupported_type_raises(self):
        with pytest.raises(CodecError, match="object"):
            codec.dumps({"bad": object()})

    def test_trailing_garbage_rejected(self):
        with pytest.raises(CodecError, match="trailing"):
            codec.loads(codec.dumps(1) + b"x")

    def test_truncated_encoding_rejected(self):
        data = codec.dumps("hello world")
        with pytest.raises(CodecError):
            codec.loads(data[:-3])

    def test_canonical_same_value_same_bytes(self):
        value = {"user": "a", "v": [1, 2.5, ("x", None)]}
        assert codec.dumps(value) == codec.dumps(dict(value))


class TestFraming:
    def test_frame_round_trip(self):
        body = codec.dumps({"n": 42})
        status, out, end = codec.read_frame(codec.frame(body), 0)
        assert status == codec.FRAME_OK
        assert out == body
        assert end == codec.FRAME_HEADER.size + len(body)

    def test_torn_frame_classified(self):
        data = codec.frame(codec.dumps({"n": 42}))
        for cut in (1, codec.FRAME_HEADER.size + 1, len(data) - 1):
            status, _, end = codec.read_frame(data[:cut], 0)
            assert status == codec.FRAME_TORN
            assert end == cut

    def test_flipped_bit_classified_corrupt(self):
        data = bytearray(codec.frame(codec.dumps({"n": 42})))
        data[codec.FRAME_HEADER.size + 2] ^= 0xFF
        status, _, end = codec.read_frame(data, 0)
        assert status == codec.FRAME_CORRUPT
        assert end == len(data)  # frame boundary still known: resyncable

    def test_bad_magic_classified_corrupt(self):
        data = bytearray(codec.frame(b"body"))
        data[0] ^= 0xFF
        status, _, _ = codec.read_frame(data, 0)
        assert status == codec.FRAME_CORRUPT

    def test_crc_actually_covers_body(self):
        body = codec.dumps({"n": 42})
        framed = codec.frame(body)
        _, _, crc = codec.FRAME_HEADER.unpack_from(framed, 0)
        assert crc == zlib.crc32(body)

    def test_consecutive_frames_scan(self):
        log = b"".join(codec.frame(codec.dumps(i)) for i in range(5))
        offset, seen = 0, []
        while offset < len(log):
            status, body, offset = codec.read_frame(log, offset)
            assert status == codec.FRAME_OK
            seen.append(codec.loads(body))
        assert seen == [0, 1, 2, 3, 4]


class TestEntryCodec:
    def test_entry_round_trip(self):
        entry = JournalEntry(seq=7, op="ingest", collection="records",
                             payload={"document": {"v": (1, 2)},
                                      "record_id": "r1"})
        decoded = codec.decode_entry(
            codec.read_frame(codec.encode_entry(entry), 0)[1])
        assert decoded == entry

    def test_from_dict_pairs_to_dict(self):
        entry = JournalEntry(seq=1, op="drop", collection="x")
        assert JournalEntry.from_dict(entry.to_dict()) == entry


def _sample_batch(n: int, offset: int = 0):
    """A RecordBatch of ``n`` wire documents (ISSUE 9 envelope)."""
    from repro.core.common.batch import RecordBatch
    return RecordBatch.from_documents([
        {"stream_id": "s1", "user_id": "u1", "device_id": "d1",
         "modality": "accelerometer", "granularity": "classified",
         "timestamp": float(offset + i), "value": {"x": offset + i},
         "details": {}, "osn_action": None,
         "record_id": f"r{offset + i}"}
        for i in range(n)])


class TestBatchFrames:
    """The ``ingest_batch`` journal frame: one columnar envelope whose
    replay is record-for-record identical to N singleton frames."""

    def test_batch_envelope_round_trips_canonically(self):
        batch = _sample_batch(5)
        decoded = type(batch).decode(batch.encode())
        assert decoded.to_payload() == batch.to_payload()
        assert decoded.store_documents() == batch.store_documents()
        # Canonical: same batch, same bytes (usable as a fingerprint).
        assert _sample_batch(5).encode() == batch.encode()

    def test_ingest_batch_entry_round_trip(self):
        batch = _sample_batch(3)
        entry = JournalEntry(seq=9, op="ingest_batch",
                             collection="records",
                             payload={"batch": batch.to_payload()})
        decoded = codec.decode_entry(
            codec.read_frame(codec.encode_entry(entry), 0)[1])
        assert decoded == entry
        from repro.core.common.batch import RecordBatch
        replayed = RecordBatch.from_payload(decoded.payload["batch"])
        assert replayed.store_documents() == batch.store_documents()
        assert replayed.record_ids == batch.record_ids

    def test_torn_tail_truncates_on_batch_boundary(self):
        """A crash mid-append tears the *last* frame only: the scan
        keeps every whole batch before it and classifies the partial
        one torn — a batch is atomic on the medium, never half-kept."""
        entries = [
            JournalEntry(seq=seq, op="ingest_batch", collection="records",
                         payload={"batch": _sample_batch(
                             4, offset=4 * seq).to_payload()})
            for seq in range(3)
        ]
        frames = [codec.encode_entry(entry) for entry in entries]
        log = b"".join(frames)
        for cut in (len(log) - 1,                       # tail ragged
                    len(frames[0]) + len(frames[1]) + 5):  # mid-header
            data, offset, recovered = log[:cut], 0, []
            statuses = []
            while offset < len(data):
                status, body, offset = codec.read_frame(data, offset)
                statuses.append(status)
                if status == codec.FRAME_OK:
                    recovered.append(codec.decode_entry(body))
            # Every complete frame survives; the torn one vanishes
            # whole — recovery resumes exactly at a batch boundary.
            assert statuses[:-1] == [codec.FRAME_OK] * (len(statuses) - 1)
            assert statuses[-1] == codec.FRAME_TORN
            assert recovered == entries[:len(recovered)]
            assert all(entry.payload["batch"]["n"] == 4
                       for entry in recovered)


class TestFingerprint:
    def test_equal_values_equal_fingerprints(self):
        a = {"users": [{"_id": 1, "name": "a"}]}
        assert codec.fingerprint(a) == codec.fingerprint(dict(a))

    def test_any_difference_changes_fingerprint(self):
        base = {"users": [{"_id": 1, "n": 1}]}
        for other in ({"users": [{"_id": 1, "n": 2}]},
                      {"users": [{"_id": 2, "n": 1}]},
                      {"users": [{"_id": 1, "n": 1.0}]},  # type change
                      {"users": [{"n": 1, "_id": 1}]}):   # key order
            assert codec.fingerprint(base) != codec.fingerprint(other)

    def test_store_fingerprint_tracks_state(self):
        from repro.docstore import DocumentStore
        store, twin = DocumentStore(), DocumentStore()
        for target in (store, twin):
            target["users"].insert_one({"user_id": "a"})
        assert (codec.fingerprint_store(store)
                == codec.fingerprint_store(twin))
        store["users"].insert_one({"user_id": "b"})
        assert (codec.fingerprint_store(store)
                != codec.fingerprint_store(twin))