"""Unit tests for conditions, filters, records and stream configs."""

import pytest

from repro.core.common import (
    Condition,
    Filter,
    Granularity,
    MiddlewareError,
    ModalityType,
    ModalityValue,
    Operator,
    StreamConfig,
    StreamMode,
    StreamRecord,
    merge_configs,
    sensor_for_modality,
)


class TestModalities:
    def test_sensor_modalities_map_to_themselves(self):
        assert sensor_for_modality(ModalityType.LOCATION) is ModalityType.LOCATION

    def test_virtual_modalities_map_to_backing_sensor(self):
        assert sensor_for_modality(
            ModalityType.PHYSICAL_ACTIVITY) is ModalityType.ACCELEROMETER
        assert sensor_for_modality(
            ModalityType.AUDIO_ENVIRONMENT) is ModalityType.MICROPHONE
        assert sensor_for_modality(ModalityType.PLACE) is ModalityType.LOCATION

    def test_osn_and_time_need_no_sensor(self):
        assert sensor_for_modality(ModalityType.FACEBOOK_ACTIVITY) is None
        assert sensor_for_modality(ModalityType.TIME_OF_DAY) is None

    def test_granularity_parse(self):
        assert Granularity.parse("raw") is Granularity.RAW
        assert Granularity.parse("CLASSIFIED") is Granularity.CLASSIFIED
        assert Granularity.parse(Granularity.RAW) is Granularity.RAW


class TestConditions:
    def test_equals(self):
        condition = Condition(ModalityType.PHYSICAL_ACTIVITY,
                              Operator.EQUALS, "walking")
        assert condition.evaluate("walking")
        assert not condition.evaluate("still")

    def test_none_never_satisfies(self):
        condition = Condition(ModalityType.PHYSICAL_ACTIVITY,
                              Operator.NOT_EQUALS, "walking")
        assert not condition.evaluate(None)

    @pytest.mark.parametrize("operator,value,observed,expected", [
        (Operator.NOT_EQUALS, "a", "b", True),
        (Operator.GREATER_THAN, 5, 6, True),
        (Operator.GREATER_THAN, 5, 5, False),
        (Operator.GREATER_EQUAL, 5, 5, True),
        (Operator.LESS_THAN, 5, 4, True),
        (Operator.LESS_EQUAL, 5, 6, False),
        (Operator.IN, ["a", "b"], "a", True),
        (Operator.IN, ["a", "b"], "c", False),
        (Operator.CONTAINS, "foot", "football talk", True),
        (Operator.CONTAINS, "golf", "football talk", False),
        (Operator.BETWEEN, [9, 17], 12, True),
        (Operator.BETWEEN, [9, 17], 20, False),
    ])
    def test_operator_table(self, operator, value, observed, expected):
        condition = Condition(ModalityType.TIME_OF_DAY, operator, value)
        assert condition.evaluate(observed) is expected

    def test_incomparable_comparison_is_false(self):
        condition = Condition(ModalityType.TIME_OF_DAY,
                              Operator.GREATER_THAN, 5)
        assert not condition.evaluate("noon")

    def test_between_requires_pair(self):
        with pytest.raises(MiddlewareError):
            Condition(ModalityType.TIME_OF_DAY, Operator.BETWEEN, 5)

    def test_in_requires_collection(self):
        with pytest.raises(MiddlewareError):
            Condition(ModalityType.TIME_OF_DAY, Operator.IN, 5)

    def test_cross_user_flag(self):
        own = Condition(ModalityType.PLACE, Operator.EQUALS, "Paris")
        other = Condition(ModalityType.PLACE, Operator.EQUALS, "Paris",
                          user_id="bob")
        assert not own.is_cross_user
        assert other.is_cross_user

    def test_dict_round_trip(self):
        condition = Condition(ModalityType.PLACE, Operator.IN,
                              ["Paris", "Lyon"], user_id="bob")
        restored = Condition.from_dict(condition.to_dict())
        assert restored.modality is ModalityType.PLACE
        assert restored.user_id == "bob"
        assert restored.evaluate("Lyon")


class TestFilters:
    def activity_condition(self, user_id=None):
        return Condition(ModalityType.PHYSICAL_ACTIVITY, Operator.EQUALS,
                         ModalityValue.WALKING, user_id=user_id)

    def osn_condition(self, user_id=None):
        return Condition(ModalityType.FACEBOOK_ACTIVITY, Operator.EQUALS,
                         ModalityValue.ACTIVE, user_id=user_id)

    def test_local_vs_server_split(self):
        stream_filter = Filter([self.activity_condition(),
                                self.activity_condition("bob")])
        assert len(stream_filter.local_conditions()) == 1
        assert len(stream_filter.server_conditions()) == 1

    def test_social_event_detection(self):
        assert Filter([self.osn_condition()]).is_social_event_based()
        assert not Filter([self.activity_condition()]).is_social_event_based()
        # A cross-user OSN condition does not make the *mobile* side
        # event-based — the server marks the mode explicitly.
        assert not Filter([self.osn_condition("bob")]).is_social_event_based()

    def test_conditional_sensors(self):
        stream_filter = Filter([
            self.activity_condition(),
            Condition(ModalityType.PLACE, Operator.EQUALS, "Paris"),
            self.osn_condition(),
        ])
        assert stream_filter.conditional_sensors() == {
            ModalityType.ACCELEROMETER, ModalityType.LOCATION}

    def test_merge_deduplicates(self):
        a = Filter([self.activity_condition()])
        b = Filter([self.activity_condition(), self.osn_condition()])
        merged = a.merged_with(b)
        assert len(merged) == 2

    def test_with_condition_is_immutable(self):
        base = Filter()
        extended = base.with_condition(self.activity_condition())
        assert len(base) == 0
        assert len(extended) == 1

    def test_dict_round_trip(self):
        original = Filter([self.activity_condition(), self.osn_condition("x")])
        restored = Filter.from_dict(original.to_dict())
        assert restored.conditions == original.conditions


class TestStreamConfig:
    def make_config(self, **overrides):
        defaults = dict(
            stream_id="s1", device_id="d1",
            modality=ModalityType.ACCELEROMETER,
            granularity=Granularity.CLASSIFIED,
            mode=StreamMode.CONTINUOUS,
            filter=Filter([Condition(ModalityType.PHYSICAL_ACTIVITY,
                                     Operator.EQUALS, "walking"),
                           Condition(ModalityType.TIME_OF_DAY,
                                     Operator.BETWEEN, [9, 17])]),
            settings={"duty_cycle_s": 30.0},
            send_to_server=True,
            created_by="server",
        )
        defaults.update(overrides)
        return StreamConfig(**defaults)

    def test_virtual_modality_stream_rejected(self):
        with pytest.raises(MiddlewareError):
            self.make_config(modality=ModalityType.PHYSICAL_ACTIVITY)

    def test_xml_round_trip(self):
        config = self.make_config()
        restored = StreamConfig.from_xml(config.to_xml())
        assert restored == config

    def test_xml_round_trip_with_cross_user_condition(self):
        config = self.make_config(filter=Filter([
            Condition(ModalityType.FACEBOOK_ACTIVITY, Operator.EQUALS,
                      "active", user_id="bob")]))
        restored = StreamConfig.from_xml(config.to_xml())
        assert restored.filter.conditions[0].user_id == "bob"

    def test_malformed_xml_rejected(self):
        with pytest.raises(MiddlewareError):
            StreamConfig.from_xml("<not-even-close")

    def test_wrong_root_rejected(self):
        with pytest.raises(MiddlewareError):
            StreamConfig.from_xml("<other/>")

    def test_effective_mode_osn_filter_forces_event(self):
        config = self.make_config(filter=Filter([
            Condition(ModalityType.FACEBOOK_ACTIVITY, Operator.EQUALS,
                      "active")]))
        assert config.effective_mode() is StreamMode.SOCIAL_EVENT

    def test_effective_mode_plain_continuous(self):
        config = self.make_config(filter=Filter())
        assert config.effective_mode() is StreamMode.CONTINUOUS

    def test_merge_appends_new_stream(self):
        existing = [self.make_config()]
        incoming = self.make_config(stream_id="s2")
        merged = merge_configs(existing, incoming)
        assert [config.stream_id for config in merged] == ["s1", "s2"]

    def test_merge_replaces_and_merges_filters(self):
        existing = self.make_config()
        incoming = self.make_config(
            granularity=Granularity.RAW,
            filter=Filter([Condition(ModalityType.FACEBOOK_ACTIVITY,
                                     Operator.EQUALS, "active")]))
        merged = merge_configs([existing], incoming)
        assert len(merged) == 1
        assert merged[0].granularity is Granularity.RAW
        assert len(merged[0].filter) == 3  # two old + one new condition


class TestStreamRecord:
    def test_dict_round_trip(self):
        record = StreamRecord(
            stream_id="s1", user_id="u", device_id="d",
            modality=ModalityType.LOCATION, granularity=Granularity.RAW,
            timestamp=12.5, value={"lon": 1.0, "lat": 2.0},
            osn_action={"action_id": 7, "type": "post"})
        restored = StreamRecord.from_dict(record.to_dict())
        assert restored.modality is ModalityType.LOCATION
        assert restored.osn_action["action_id"] == 7
        assert restored.value == {"lon": 1.0, "lat": 2.0}

    def test_plain_record_has_no_action(self):
        record = StreamRecord(
            stream_id="s1", user_id="u", device_id="d",
            modality=ModalityType.WIFI, granularity=Granularity.RAW,
            timestamp=0.0, value=[])
        assert StreamRecord.from_dict(record.to_dict()).osn_action is None
