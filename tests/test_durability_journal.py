"""Write-ahead journal unit tests: append-before-apply, nested-op
suppression, checkpoints, replay equivalence, and fault injection."""

import pytest

from repro.docstore import DocumentStore, JournaledDocumentStore
from repro.docstore.errors import DuplicateKeyError
from repro.durability import (
    DurabilityError,
    JournalEntry,
    StorageMedium,
    StorageWriteError,
    WriteAheadJournal,
    replay,
)


def make_store(checkpoint_interval=1_000_000):
    medium = StorageMedium()
    journal = WriteAheadJournal(medium, checkpoint_interval)
    store = JournaledDocumentStore(journal)
    journal.state_provider = lambda: {"store": store.snapshot()}
    return medium, journal, store


def recover(medium):
    """Fresh store rebuilt from the medium: snapshot + journal tail."""
    fresh_medium = StorageMedium()
    journal = WriteAheadJournal(fresh_medium, 1_000_000)
    store = JournaledDocumentStore(journal)
    snapshot = medium.load_snapshot()
    with journal.suspended():
        if snapshot is not None:
            store.restore(snapshot["store"])
        result = replay(store, list(medium.entries))
    return store, result


class TestJournaling:
    def test_append_before_apply(self):
        medium, journal, store = make_store()
        store["users"].insert_one({"user_id": "a"})
        assert [entry.op for entry in medium.entries][-1] == "insert_one"

    def test_every_mutating_op_journaled(self):
        medium, journal, store = make_store()
        users = store["users"]
        users.create_index("user_id", unique=True)
        users.insert_one({"user_id": "a"})
        users.update_one({"user_id": "a"}, {"$set": {"x": 1}})
        users.update_many({}, {"$set": {"y": 2}})
        users.delete_one({"user_id": "missing"})
        users.delete_many({"user_id": "missing"})
        ops = [entry.op for entry in medium.entries]
        assert ops == ["create_index", "insert_one", "update_one",
                       "update_many", "delete_one", "delete_many"]

    def test_upsert_journals_one_entry(self):
        medium, journal, store = make_store()
        store["users"].update_one({"user_id": "a"},
                                  {"$set": {"x": 1}}, upsert=True)
        # The upsert's internal insert is suppressed by the depth guard.
        assert [entry.op for entry in medium.entries] == ["update_one"]

    def test_index_recreation_not_journaled(self):
        medium, journal, store = make_store()
        store["users"].create_index("user_id")
        store["users"].create_index("user_id")
        assert [entry.op for entry in medium.entries] == ["create_index"]

    def test_suspended_ops_not_journaled(self):
        medium, journal, store = make_store()
        with journal.suspended():
            store["users"].insert_one({"user_id": "a"})
        assert len(medium.entries) == 0
        assert store["users"].count() == 1

    def test_payload_deep_copied(self):
        medium, journal, store = make_store()
        doc = {"user_id": "a", "tags": ["x"]}
        store["users"].insert_one(doc)
        doc["tags"].append("y")
        assert medium.entries[0].payload["document"]["tags"] == ["x"]


class TestReplay:
    def test_replay_reproduces_state(self):
        medium, journal, store = make_store()
        users = store["users"]
        users.create_index("user_id", unique=True)
        users.insert_one({"user_id": "a", "n": 0})
        users.update_one({"user_id": "a"}, {"$inc": {"n": 5}})
        users.update_one({"user_id": "b"}, {"$set": {"n": 9}}, upsert=True)
        users.delete_one({"user_id": "a"})
        recovered, result = recover(medium)
        assert result.failed == 0
        assert sorted(d["user_id"] for d in recovered["users"].find()) == ["b"]
        assert recovered["users"].find_one({"user_id": "b"})["n"] == 9

    def test_replay_preserves_ids(self):
        medium, journal, store = make_store()
        store["users"].insert_one({"user_id": "a"})
        store["users"].insert_one({"user_id": "b"})
        original = {d["user_id"]: d["_id"] for d in store["users"].find()}
        recovered, _ = recover(medium)
        assert {d["user_id"]: d["_id"]
                for d in recovered["users"].find()} == original

    def test_failed_op_fails_identically_on_replay(self):
        medium, journal, store = make_store()
        users = store["users"]
        users.create_index("user_id", unique=True)
        users.insert_one({"user_id": "a"})
        with pytest.raises(DuplicateKeyError):
            users.insert_one({"user_id": "a"})
        recovered, result = recover(medium)
        assert result.failed == 1
        assert recovered["users"].count() == 1

    def test_ingest_entry_restores_dedup_ids(self):
        medium, journal, store = make_store()
        with journal.op("ingest", "records", document={"value": 1},
                        record_id="r1"):
            store["records"].insert_one({"value": 1})
        recovered, result = recover(medium)
        assert result.dedup_ids == ["r1"]
        assert recovered["records"].count() == 1

    def test_unknown_op_raises(self):
        store = DocumentStore()
        entry = JournalEntry(seq=0, op="explode", collection="x")
        with pytest.raises(DurabilityError):
            replay(store, [entry])


class TestCheckpoints:
    def test_checkpoint_truncates_and_recovery_survives(self):
        medium, journal, store = make_store(checkpoint_interval=3)
        for index in range(7):
            store["users"].insert_one({"n": index})
        assert medium.checkpoints >= 1
        assert len(medium.entries) < 7
        recovered, _ = recover(medium)
        assert recovered["users"].count() == 7

    def test_lag_returns_to_zero_after_checkpoint(self):
        medium, journal, store = make_store()
        store["users"].insert_one({"n": 1})
        assert journal.lag == 1
        journal.checkpoint()
        assert journal.lag == 0
        recovered, _ = recover(medium)
        assert recovered["users"].count() == 1

    def test_checkpoint_without_provider_raises(self):
        journal = WriteAheadJournal(StorageMedium(), 10)
        with pytest.raises(DurabilityError):
            journal.checkpoint()


class TestSnapshotRestore:
    def test_collection_roundtrip_preserves_next_id(self):
        store = DocumentStore()
        store["users"].create_index("user_id", unique=True)
        store["users"].insert_one({"user_id": "a"})
        state = store.snapshot()
        other = DocumentStore()
        other.restore(state)
        # The id allocator position must survive: the next insert on
        # the restored store gets the same _id the original would.
        original_id = store["users"].insert_one({"user_id": "b"})
        restored_id = other["users"].insert_one({"user_id": "b"})
        assert original_id == restored_id
        with pytest.raises(DuplicateKeyError):
            other["users"].insert_one({"user_id": "a"})


class TestWriteFaults:
    def test_strict_failure_raises_without_apply(self):
        medium, journal, store = make_store()
        medium.inject_write_failures(1)
        with pytest.raises(StorageWriteError):
            with journal.op("ingest", "records", strict=True,
                            document={"v": 1}, record_id="r1"):
                raise AssertionError("body must not run")
        assert store["records"].count() == 0
        assert medium.append_failures == 1

    def test_nonstrict_failure_applies_in_memory_only(self):
        medium, journal, store = make_store()
        medium.inject_write_failures(1)
        store["users"].insert_one({"user_id": "a"})
        assert store["users"].count() == 1  # dirty write, visible now
        assert journal.lost_appends == 1
        recovered, _ = recover(medium)
        assert recovered["users"].count() == 0  # ...and lost by a crash

    def test_failures_burn_down(self):
        medium = StorageMedium()
        medium.inject_write_failures(2)
        for _ in range(2):
            with pytest.raises(StorageWriteError):
                medium.append(JournalEntry(0, "insert_one", "x"))
        medium.append(JournalEntry(0, "insert_one", "x", {"document": {}}))
        assert medium.pending_write_failures == 0
        assert len(medium.entries) == 1


class TestApplyCoverage:
    """Replay coverage for the less-travelled ``_apply`` branches."""

    def test_drop_collection_replays(self):
        medium, journal, store = make_store()
        store["users"].insert_one({"user_id": "a"})
        store["stale"].insert_one({"user_id": "b"})
        store.drop_collection("stale")
        recovered, result = recover(medium)
        assert result.failed == 0
        assert "stale" not in recovered.collection_names()
        assert recovered["users"].count() == 1

    def test_drop_replays_and_leaves_collection_usable(self):
        medium, journal, store = make_store()
        store["users"].insert_one({"user_id": "a"})
        store["users"].drop()
        store["users"].insert_one({"user_id": "b"})
        recovered, result = recover(medium)
        assert result.failed == 0
        assert [d["user_id"] for d in recovered["users"].find()] == ["b"]
        # The id allocator restarted with the drop on both sides.
        assert ({d["_id"] for d in recovered["users"].find()}
                == {d["_id"] for d in store["users"].find()})

    def test_create_index_replays_with_uniqueness(self):
        medium, journal, store = make_store()
        store["users"].create_index("user_id", unique=True)
        store["users"].insert_one({"user_id": "a"})
        recovered, result = recover(medium)
        assert result.failed == 0
        with pytest.raises(DuplicateKeyError):
            recovered["users"].insert_one({"user_id": "a"})

    def test_unknown_op_identifies_itself(self):
        store = DocumentStore()
        entry = JournalEntry(seq=3, op="explode", collection="x")
        with pytest.raises(DurabilityError, match="explode"):
            replay(store, [entry])

    def test_failed_entry_taxonomy_and_replay_idempotence(self):
        medium, journal, store = make_store()
        users = store["users"]
        users.create_index("user_id", unique=True)
        users.insert_one({"user_id": "a"})
        with pytest.raises(DuplicateKeyError):
            users.insert_one({"user_id": "a"})
        users.insert_one({"user_id": "b"})  # life goes on after the fail
        recovered, result = recover(medium)
        # The failed entry fails identically on replay and is skipped...
        assert result.failed == 1
        assert sorted(d["user_id"]
                      for d in recovered["users"].find()) == ["a", "b"]
        # ...and the taxonomy names the op, collection and error.
        [failure] = result.failures
        assert failure["op"] == "insert_one"
        assert failure["collection"] == "users"
        assert failure["seq"] == 2  # create_index=0, insert a=1, dup=2
        assert "DuplicateKeyError" in failure["error"]
        # Replaying the same journal twice is deterministic: identical
        # taxonomy, identical state.
        recovered2, result2 = recover(medium)
        assert result2.failures == result.failures
        assert recovered2.snapshot() == recovered.snapshot()
