"""Tests for the offline analysis package."""

import pytest

from repro.analysis import (
    EmotionStudy,
    TimeBinnedSeries,
    markers_to_geojson,
    moving_average,
    pearson,
)
from repro.apps.sensor_map.server import MapMarker
from repro.core.common import (
    Condition,
    Filter,
    Granularity,
    ModalityType,
    ModalityValue,
    Operator,
)
from repro.device import ActivityState


class TestTimeBinnedSeries:
    def test_bin_means(self):
        series = TimeBinnedSeries(10.0)
        series.add(1.0, 2.0)
        series.add(5.0, 4.0)
        series.add(15.0, 10.0)
        assert series.bin_means() == [(0.0, 3.0), (10.0, 10.0)]
        assert series.bin_counts() == [(0.0, 2), (10.0, 1)]
        assert len(series) == 3

    def test_overall_mean(self):
        series = TimeBinnedSeries(10.0)
        for time, value in [(0, 1.0), (20, 3.0)]:
            series.add(time, value)
        assert series.mean() == 2.0

    def test_empty_mean_is_zero(self):
        assert TimeBinnedSeries(1.0).mean() == 0.0

    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            TimeBinnedSeries(0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            TimeBinnedSeries(1.0).add(-1.0, 0.0)


class TestMovingAverage:
    def test_window_of_one_is_identity(self):
        assert moving_average([1.0, 2.0, 3.0], 1) == [1.0, 2.0, 3.0]

    def test_trailing_window(self):
        assert moving_average([2.0, 4.0, 6.0, 8.0], 2) == [2.0, 3.0, 5.0, 7.0]

    def test_prefix_uses_shorter_window(self):
        assert moving_average([4.0, 8.0], 5) == [4.0, 6.0]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_is_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_too_short_is_zero(self):
        assert pearson([1], [2]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1])


class TestGeoJson:
    def make_marker(self, **overrides):
        defaults = dict(user_id="u", action_id=1, action_type="post",
                        content="hi", timestamp=5.0, lon=2.35, lat=48.85,
                        activity="still", audio="silent")
        defaults.update(overrides)
        return MapMarker(**defaults)

    def test_feature_collection_shape(self):
        geojson = markers_to_geojson([self.make_marker()])
        assert geojson["type"] == "FeatureCollection"
        feature = geojson["features"][0]
        assert feature["geometry"]["coordinates"] == [2.35, 48.85]
        assert feature["properties"]["activity"] == "still"

    def test_incomplete_markers_skipped_by_default(self):
        geojson = markers_to_geojson([self.make_marker(lon=None, lat=None)])
        assert geojson["features"] == []

    def test_incomplete_markers_included_on_request(self):
        geojson = markers_to_geojson([self.make_marker(lon=None, lat=None)],
                                     include_incomplete=True)
        assert geojson["features"][0]["geometry"] is None

    def test_extra_fields_in_properties(self):
        marker = self.make_marker(extra={"place": "Paris"})
        geojson = markers_to_geojson([marker])
        assert geojson["features"][0]["properties"]["place"] == "Paris"


class TestEmotionStudy:
    def test_end_to_end_mood_statistics(self, testbed):
        alice = testbed.add_user("alice", "Paris")
        bob = testbed.add_user("bob", "Paris")
        testbed.befriend("alice", "bob")
        alice.mobility.stop()
        alice.phone.environment.activity = ActivityState.STILL
        # Couple posts with classified activity.
        on_post = Filter([Condition(ModalityType.FACEBOOK_ACTIVITY,
                                    Operator.EQUALS, ModalityValue.ACTIVE)])
        alice.manager.create_stream(ModalityType.ACCELEROMETER,
                                    Granularity.CLASSIFIED,
                                    stream_filter=on_post,
                                    send_to_server=True)
        study = EmotionStudy(testbed.server)
        testbed.facebook.perform_action("alice", "post",
                                        content="absolutely loving this day")
        testbed.facebook.perform_action("bob", "post",
                                        content="terrible awful miserable rain")
        testbed.run(200.0)

        assert study.observed_users() == ["alice", "bob"]
        assert study.mood_of("alice") > 0
        assert study.mood_of("bob") < 0
        # Neighbourhood mood: alice's circle is bob, and vice versa.
        assert study.neighbourhood_mood_of("alice") == study.mood_of("bob")
        summaries = {summary.user_id: summary for summary in study.summaries()}
        assert summaries["alice"].posts == 1
        # The coupled context crosstab saw alice's "still" post.
        assert "still" in study.mood_by_context()
        assert study.mood_by_context()["still"] > 0
        # The global series has one bin with both posts.
        series = study.global_mood_series()
        assert len(series) == 1

    def test_assortativity_degenerate_cases(self, testbed):
        study = EmotionStudy(testbed.server)
        assert study.mood_assortativity() == 0.0
        assert study.mood_of("nobody") == 0.0
