"""Geographic edge cases: haversine extremes, antimeridian, poles,
mobility at high latitude, and geo query boundaries."""

import pytest

from repro.core.server import MulticastQuery
from repro.docstore import DocumentStore, haversine_km, matches
from repro.docstore.geo import EARTH_RADIUS_KM
import math


class TestHaversineExtremes:
    def test_antipodal_points(self):
        distance = haversine_km([0.0, 0.0], [180.0, 0.0])
        assert distance == pytest.approx(math.pi * EARTH_RADIUS_KM, rel=1e-6)

    def test_pole_to_pole(self):
        distance = haversine_km([0.0, 90.0], [0.0, -90.0])
        assert distance == pytest.approx(math.pi * EARTH_RADIUS_KM, rel=1e-6)

    def test_across_antimeridian_is_short(self):
        # 179.9°E to 179.9°W is ~22 km at the equator, not ~39 000 km.
        distance = haversine_km([179.9, 0.0], [-179.9, 0.0])
        assert distance < 25.0

    def test_same_meridian_latitude_degree(self):
        # One degree of latitude is ~111 km everywhere.
        distance = haversine_km([10.0, 40.0], [10.0, 41.0])
        assert distance == pytest.approx(111.2, rel=0.01)

    def test_longitude_degree_shrinks_with_latitude(self):
        at_equator = haversine_km([0.0, 0.0], [1.0, 0.0])
        at_60_north = haversine_km([0.0, 60.0], [1.0, 60.0])
        assert at_60_north == pytest.approx(at_equator / 2, rel=0.01)

    def test_dict_point_form_supported(self):
        assert matches({"p": {"lon": 0.0, "lat": 0.0}},
                       {"p": {"$near": {"$point": [0.0, 0.0],
                                        "$maxDistance": 1.0}}})


class TestGeoQueryBoundaries:
    def test_near_exact_boundary_inclusive(self):
        store = DocumentStore()["places"]
        # ~111.2 km north of origin.
        store.insert_one({"p": [0.0, 1.0]})
        boundary = haversine_km([0.0, 0.0], [0.0, 1.0])
        assert store.count({"p": {"$near": {"$point": [0.0, 0.0],
                                            "$maxDistance": boundary}}}) == 1
        assert store.count({"p": {"$near": {"$point": [0.0, 0.0],
                                            "$maxDistance": boundary - 0.1}}}) == 0

    def test_box_with_reversed_corners(self):
        store = DocumentStore()["places"]
        store.insert_one({"p": [0.5, 0.5]})
        # Corners in "wrong" order still describe the same box.
        assert store.count({"p": {"$within": {
            "$box": [[1.0, 1.0], [0.0, 0.0]]}}}) == 1

    def test_non_point_field_never_matches_geo(self):
        store = DocumentStore()["places"]
        store.insert_many([{"p": "not a point"}, {"p": [1.0]},
                           {"p": [1.0, 2.0, 3.0]}])
        assert store.count({"p": {"$near": {"$point": [0.0, 0.0],
                                            "$maxDistance": 1e9}}}) == 0


class TestHighLatitudeMobility:
    def test_wander_step_distance_respected_at_high_latitude(self):
        from repro.device.mobility import _offset_position
        start = [10.0, 69.0]  # Tromsø-ish
        moved = _offset_position(start, bearing_rad=math.pi / 2,
                                 distance_km=1.0)
        assert haversine_km(start, moved) == pytest.approx(1.0, rel=0.05)

    def test_city_registry_at_high_latitude(self):
        from repro.device.mobility import City, CityRegistry
        registry = CityRegistry()
        registry.add(City("Tromso", 18.9553, 69.6496, radius_km=5.0))
        assert registry.city_of([18.96, 69.65]).name == "Tromso"
        assert registry.city_of([18.9553, 69.2]) is None


class TestMulticastGeoBoundaries:
    def test_near_point_radius_boundary(self, testbed):
        node = testbed.add_user("edge", "Paris")
        node.mobility.stop()
        node.phone.environment.move_to(2.3522, 48.9)  # ~4.8 km north
        testbed.run(400.0)
        inside = testbed.server.create_multicast_stream(
            _wifi(), _raw(),
            MulticastQuery(near_point=(2.3522, 48.8566), near_km=6.0))
        outside = testbed.server.create_multicast_stream(
            _wifi(), _raw(),
            MulticastQuery(near_point=(2.3522, 48.8566), near_km=3.0))
        assert inside.members() == ["edge"]
        assert outside.members() == []


def _wifi():
    from repro.core.common import ModalityType
    return ModalityType.WIFI


def _raw():
    from repro.core.common import Granularity
    return Granularity.RAW
