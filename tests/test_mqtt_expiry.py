"""Tests for broker keep-alive expiry, wills on timeout, and session
resumption."""

import pytest

from repro.mqtt import MqttBroker, MqttClient
from repro.net import FixedLatency, Network
from repro.simkit import World


@pytest.fixture
def stack():
    world = World(seed=19)
    network = Network(world, default_latency=FixedLatency(0.01))
    broker = MqttBroker(world, network)
    return world, network, broker


def make_client(world, network, name, **kwargs):
    return MqttClient(world, network, client_id=name,
                      address=f"host/{name}", **kwargs)


class TestKeepAliveExpiry:
    def test_silent_session_expires(self, stack):
        world, network, broker = stack
        client = make_client(world, network, "c", keepalive=20.0)
        client.connect(clean_session=False)
        world.run_for(1.0)
        # Cut the client off: its pings stop reaching the broker.
        network.set_down("host/c")
        world.run_for(120.0)
        assert broker.sessions_expired == 1
        assert broker.connected_clients() == []

    def test_pinging_session_survives(self, stack):
        world, network, broker = stack
        client = make_client(world, network, "c", keepalive=20.0)
        client.connect()
        world.run_for(600.0)
        assert broker.sessions_expired == 0
        assert broker.connected_clients() == ["c"]

    def test_will_fires_on_timeout_not_on_clean_disconnect(self, stack):
        world, network, broker = stack
        watcher = make_client(world, network, "w")
        watcher.connect()
        world.run_for(0.5)
        wills = []
        watcher.subscribe("wills/#", lambda topic, payload: wills.append(payload))
        doomed = make_client(world, network, "doomed", keepalive=20.0)
        doomed.connect(clean_session=False, will_topic="wills/doomed",
                       will_payload="lost")
        world.run_for(1.0)
        network.set_down("host/doomed")
        world.run_for(120.0)
        assert wills == ["lost"]

    def test_expired_persistent_session_queues_and_resumes(self, stack):
        world, network, broker = stack
        publisher = make_client(world, network, "pub")
        subscriber = make_client(world, network, "sub", keepalive=20.0)
        publisher.connect()
        subscriber.connect(clean_session=False)
        world.run_for(0.5)
        inbox = []
        subscriber.subscribe("q/x", lambda topic, payload: inbox.append(payload),
                             qos=1)
        world.run_for(0.5)
        network.set_down("host/sub")
        world.run_for(120.0)  # session expires
        assert broker.connected_clients() == ["pub"]
        publisher.publish("q/x", "while-you-were-out", qos=1)
        world.run_for(5.0)
        assert inbox == []
        # Connectivity returns; the client's next ping resumes the
        # session and the offline queue flushes.
        network.set_down("host/sub", False)
        world.run_for(60.0)
        assert "while-you-were-out" in inbox

    def test_zero_keepalive_never_expires(self, stack):
        world, network, broker = stack
        client = make_client(world, network, "c", keepalive=0.0)
        client.connect()
        world.run_for(600.0)
        assert broker.connected_clients() == ["c"]
