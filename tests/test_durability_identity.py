"""Durability must be invisible when off and content-preserving when on.

``durability=False`` (the default) must leave the simulation
bit-identical to a build without the durability package: the
controller consumes no RNG and schedules nothing unless attached.
``durability=True`` may re-time ingest (records pass through the
intake queue and the drain pump) but must deliver exactly the same
record *content* to the database.
"""

from repro.core.common import Granularity, ModalityType
from repro.scenarios.testbed import SenSocialTestbed

USERS = ("alice", "bob")


def run_plain(seed: int, *, durability):
    testbed = SenSocialTestbed(seed=seed, durability=durability)
    for user_id in USERS:
        node = testbed.add_user(user_id, "Paris")
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
    testbed.run(500.0)
    testbed.run(60.0)
    return testbed


def full_signature(testbed):
    """Every observable a durability-off run must not perturb."""
    return (
        testbed.world.now,
        testbed.server.records_received,
        testbed.server.records_duplicate,
        testbed.server.acks_sent,
        testbed.network.messages_sent,
        testbed.network.bytes_sent,
        testbed.network.messages_dropped,
        tuple(sorted((user_id, len(node.manager.outbox))
                     for user_id, node in testbed.nodes.items())),
    )


def record_contents(testbed):
    """The ingested record stream, order-insensitively.  Device/stream
    ids are excluded: their counters are process-global, so they differ
    between any two testbeds in one process."""
    return sorted(
        (doc["user_id"], doc["timestamp"], doc["value"], doc["modality"])
        for doc in testbed.server.database.records.find())


class TestDisabledIsIdentity:
    def test_off_runs_are_reproducible(self):
        first = run_plain(13, durability=False)
        second = run_plain(13, durability=False)
        assert full_signature(first) == full_signature(second)

    def test_no_controller_attached_means_no_machinery(self):
        testbed = run_plain(13, durability=False)
        assert testbed.durability is None
        assert testbed.server.durability is None
        # The plain DocumentStore, not the journaled subclass.
        assert type(testbed.server.database.store).__name__ == "DocumentStore"


class TestEnabledPreservesContent:
    def test_same_records_ingested(self):
        off = run_plain(13, durability=False)
        on = run_plain(13, durability=True)
        assert record_contents(off) == record_contents(on)
        assert off.server.records_received == on.server.records_received

    def test_enabled_runs_are_reproducible(self):
        first = run_plain(13, durability=True)
        second = run_plain(13, durability=True)
        assert full_signature(first) == full_signature(second)
        assert record_contents(first) == record_contents(second)

    def test_journal_actually_engaged(self):
        testbed = run_plain(13, durability=True)
        assert testbed.durability.medium.appends > 0
        assert testbed.server.database.records.count() > 0
