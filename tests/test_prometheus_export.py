"""Regression tests for the Prometheus text exporter: label-value
escaping against hostile inputs, exactly-one ``# TYPE`` line per
metric family, and peak-tracked gauge sampling."""

from repro.obs import Telemetry
from repro.obs.registry import escape_label_value


class TestLabelEscaping:
    def test_backslash_escaped_before_quote_and_newline(self):
        assert escape_label_value('\\') == '\\\\'
        assert escape_label_value('"') == '\\"'
        assert escape_label_value('\n') == '\\n'
        # A pre-escaped sequence must not collapse: the backslash is
        # doubled first, then the quote gets its own escape.
        assert escape_label_value('\\"') == '\\\\\\"'

    def test_plain_values_pass_through(self):
        assert escape_label_value("device-01_x") == "device-01_x"

    def test_hostile_label_values_in_export(self):
        telemetry = Telemetry()
        telemetry.counter("records", device='d"1', path="C:\\tmp").inc(3)
        telemetry.gauge("depth", note="line1\nline2").set(2.0)
        text = telemetry.to_prometheus()
        assert 'device="d\\"1"' in text
        assert 'path="C:\\\\tmp"' in text
        assert 'note="line1\\nline2"' in text
        # A raw newline inside a label value would split the sample
        # into two bogus lines; every line must be TYPE or a sample.
        for line in text.strip().splitlines():
            assert line.startswith("# TYPE") or " " in line

    def test_snapshot_keys_escape_too(self):
        telemetry = Telemetry()
        telemetry.counter("records", device='d"1').inc()
        key = next(iter(telemetry.snapshot()))
        assert key == 'records{device="d\\"1"}'


class TestTypeLines:
    def test_type_line_exactly_once_per_family(self):
        telemetry = Telemetry()
        for device in ("d1", "d2", "d3"):
            telemetry.counter("records_sent", device=device).inc()
            telemetry.gauge("queue_depth", device=device).set(1.0)
            telemetry.histogram("latency", device=device).observe(0.5)
        text = telemetry.to_prometheus()
        assert text.count("# TYPE records_sent counter") == 1
        assert text.count("# TYPE queue_depth gauge") == 1
        assert text.count("# TYPE latency summary") == 1
        # Three labeled samples per family survive.
        assert text.count("records_sent{") == 3
        assert text.count("latency_count{") == 3

    def test_sanitised_names_do_not_duplicate_type_lines(self):
        telemetry = Telemetry()
        # Both sanitise to the same exposition name.
        telemetry.counter("records.sent").inc()
        telemetry.counter("records-sent").inc()
        text = telemetry.to_prometheus()
        assert text.count("# TYPE records_sent counter") == 1


class TestPeakGauges:
    def test_peak_tracks_high_water_mark(self):
        gauge = Telemetry().gauge("depth")
        gauge.set(5.0)
        gauge.set(2.0)
        assert gauge.value == 2.0
        assert gauge.peak == 5.0

    def test_peak_survives_between_samples_until_read(self):
        gauge = Telemetry().gauge("depth")
        gauge.set(9.0)
        gauge.set(1.0)
        # Two snapshots without a reset both see the same peak.
        assert gauge.peak == 9.0
        assert gauge.peak == 9.0
        assert gauge.read_and_reset_peak() == 9.0
        # After the read the peak floors at the *current* value — a
        # still-deep queue must not report as empty.
        assert gauge.peak == 1.0

    def test_reset_floor_is_current_value_not_zero(self):
        gauge = Telemetry().gauge("depth")
        gauge.set(4.0)
        gauge.read_and_reset_peak()
        assert gauge.peak == 4.0
        gauge.set(3.0)
        assert gauge.read_and_reset_peak() == 4.0
        assert gauge.peak == 3.0

    def test_new_peak_accumulates_after_reset(self):
        gauge = Telemetry().gauge("depth")
        gauge.set(8.0)
        gauge.read_and_reset_peak()
        gauge.set(2.0)
        gauge.set(6.0)
        assert gauge.read_and_reset_peak() == 8.0  # floor was 8
        # That read floored the peak at the then-current value, 6.
        gauge.set(1.0)
        gauge.set(5.0)
        assert gauge.read_and_reset_peak() == 6.0
        gauge.set(2.0)
        gauge.set(7.0)
        assert gauge.read_and_reset_peak() == 7.0
