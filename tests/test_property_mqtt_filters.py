"""Property-based tests for MQTT topic matching, filters and geo math."""

import string

from hypothesis import assume, given, strategies as st

from repro.core.common import Condition, Filter, ModalityType, Operator
from repro.core.common.stream_config import (
    Granularity,
    StreamConfig,
    StreamMode,
)
from repro.docstore.geo import haversine_km
from repro.mqtt import topic_matches

level = st.text(string.ascii_lowercase + string.digits, min_size=1, max_size=5)
topics = st.lists(level, min_size=1, max_size=5).map("/".join)


class TestTopicProperties:
    @given(topics)
    def test_topic_matches_itself(self, topic):
        assert topic_matches(topic, topic)

    @given(topics)
    def test_hash_matches_everything(self, topic):
        assert topic_matches("#", topic)

    @given(topics)
    def test_single_plus_per_level_matches(self, topic):
        levels = topic.split("/")
        wildcard = "/".join("+" for _ in levels)
        assert topic_matches(wildcard, topic)

    @given(topics, topics)
    def test_exact_filter_matches_only_equal_topic(self, topic_filter, topic):
        assume(topic_filter != topic)
        assert not topic_matches(topic_filter, topic)

    @given(topics, st.integers(min_value=0, max_value=4))
    def test_replacing_one_level_with_plus_still_matches(self, topic, index):
        levels = topic.split("/")
        assume(index < len(levels))
        levels[index] = "+"
        assert topic_matches("/".join(levels), topic)


coordinates = st.tuples(
    st.floats(min_value=-179.0, max_value=179.0),
    st.floats(min_value=-89.0, max_value=89.0),
)


class TestGeoProperties:
    @given(coordinates)
    def test_distance_to_self_is_zero(self, point):
        assert haversine_km(point, point) < 1e-6

    @given(coordinates, coordinates)
    def test_distance_is_symmetric(self, a, b):
        assert haversine_km(a, b) == haversine_km(b, a)

    @given(coordinates, coordinates)
    def test_distance_non_negative_and_bounded(self, a, b):
        distance = haversine_km(a, b)
        assert 0.0 <= distance <= 20_100  # half the Earth's circumference

    @given(coordinates, coordinates, coordinates)
    def test_triangle_inequality(self, a, b, c):
        assert haversine_km(a, c) <= \
            haversine_km(a, b) + haversine_km(b, c) + 1e-6


conditions = st.builds(
    Condition,
    modality=st.sampled_from([ModalityType.PHYSICAL_ACTIVITY,
                              ModalityType.PLACE,
                              ModalityType.FACEBOOK_ACTIVITY,
                              ModalityType.AUDIO_ENVIRONMENT]),
    operator=st.sampled_from([Operator.EQUALS, Operator.NOT_EQUALS,
                              Operator.CONTAINS]),
    value=st.text(string.ascii_lowercase, min_size=1, max_size=8),
    user_id=st.one_of(st.none(), st.text(string.ascii_lowercase,
                                         min_size=1, max_size=4)),
)


class TestFilterProperties:
    @given(st.lists(conditions, max_size=6))
    def test_local_and_server_partition_conditions(self, condition_list):
        stream_filter = Filter(condition_list)
        local = stream_filter.local_conditions()
        server = stream_filter.server_conditions()
        assert len(local) + len(server) == len(stream_filter)
        assert all(not condition.is_cross_user for condition in local)
        assert all(condition.is_cross_user for condition in server)

    @given(st.lists(conditions, max_size=5), st.lists(conditions, max_size=5))
    def test_merge_is_idempotent_and_deduplicating(self, list_a, list_b):
        a, b = Filter(list_a), Filter(list_b)
        merged = a.merged_with(b)
        assert merged.merged_with(b).conditions == merged.conditions
        assert len(set(merged.conditions)) == len(merged.conditions)

    @given(st.lists(conditions, max_size=5))
    def test_filter_dict_round_trip(self, condition_list):
        original = Filter(condition_list)
        assert Filter.from_dict(original.to_dict()).conditions == \
            original.conditions

    @given(st.lists(conditions, max_size=4),
           st.sampled_from([ModalityType.ACCELEROMETER,
                            ModalityType.MICROPHONE, ModalityType.WIFI]),
           st.sampled_from([Granularity.RAW, Granularity.CLASSIFIED]),
           st.sampled_from([StreamMode.CONTINUOUS, StreamMode.SOCIAL_EVENT]),
           st.booleans())
    def test_stream_config_xml_round_trip(self, condition_list, modality,
                                          granularity, mode, to_server):
        config = StreamConfig(
            stream_id="sid", device_id="did", modality=modality,
            granularity=granularity, mode=mode,
            filter=Filter(condition_list),
            settings={"duty_cycle_s": 42.0},
            send_to_server=to_server)
        assert StreamConfig.from_xml(config.to_xml()) == config
