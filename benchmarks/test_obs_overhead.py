"""Observability overhead — the cost of leaving tracing on.

Not a paper table: the paper never instruments its middleware.  This
bench runs the same multi-user scenario with the ``repro.obs`` hub
installed and without, on the same seed, and reports the wall-clock
ratio plus the per-record bookkeeping volume.  The instrumentation is
designed to be cheap enough to leave enabled (O(1) dict updates off
the virtual clock, one ``None`` check per site when disabled), so the
enabled run must stay within a small multiple of the bare run — and
the disabled run must not regress at all, which the tier-1 determinism
tests already pin bit-for-bit.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.core.common import Granularity, ModalityType
from repro.scenarios.testbed import SenSocialTestbed

USERS = 5
HORIZON_S = 30 * 60.0

#: Generous ceiling on enabled/disabled wall-clock ratio — the bench
#: guards against accidental O(n^2) bookkeeping, not micro-costs, and
#: must not flake on a noisy CI box.
MAX_OVERHEAD_RATIO = 3.0


def run_scenario(observability: bool) -> dict:
    started = time.perf_counter()
    testbed = SenSocialTestbed(seed=17, observability=observability)
    for index in range(USERS):
        node = testbed.add_user(f"user{index}", "Paris")
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
    testbed.run(HORIZON_S)
    elapsed = time.perf_counter() - started
    result = {
        "wall_s": elapsed,
        "ingested": testbed.server.records_received,
        "messages": testbed.network.messages_sent,
    }
    if observability:
        result["traces"] = testbed.obs.tracer.started
        result["metrics"] = len(testbed.obs.telemetry)
    return result


def test_tracing_overhead_is_bounded(benchmark, report):
    def measure() -> dict:
        bare = run_scenario(observability=False)
        traced = run_scenario(observability=True)
        return {"bare": bare, "traced": traced,
                "ratio": traced["wall_s"] / max(bare["wall_s"], 1e-9)}

    result = run_once(benchmark, measure)
    bare, traced = result["bare"], result["traced"]
    report(
        "observability overhead (not in the paper)",
        ["run", "wall s", "ingested", "messages", "traces", "metrics"],
        [["bare", f"{bare['wall_s']:.3f}", bare["ingested"],
          bare["messages"], "-", "-"],
         ["traced", f"{traced['wall_s']:.3f}", traced["ingested"],
          traced["messages"], traced["traces"], traced["metrics"]],
         ["ratio", f"{result['ratio']:.2f}x", "", "", "", ""]])

    # Tracing must observe the run, not change it.
    assert traced["ingested"] == bare["ingested"]
    assert traced["messages"] == bare["messages"]
    # Every ingested record was traced (plus any local-only records).
    assert traced["traces"] >= traced["ingested"]
    # The headline bound: leaving tracing on stays affordable.
    assert result["ratio"] <= MAX_OVERHEAD_RATIO
