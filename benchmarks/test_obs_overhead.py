"""Observability overhead — the cost of leaving tracing on.

Not a paper table: the paper never instruments its middleware.  This
bench runs the same multi-user scenario with the ``repro.obs`` hub
installed and without, on the same seed, and reports the wall-clock
ratio plus the per-record bookkeeping volume.  The instrumentation is
designed to be cheap enough to leave enabled (O(1) dict updates off
the virtual clock, one ``None`` check per site when disabled), so the
enabled run must stay within a small multiple of the bare run — and
the disabled run must not regress at all, which the tier-1 determinism
tests already pin bit-for-bit.
"""

from __future__ import annotations

import statistics
import time

from benchmarks.conftest import run_once
from repro.core.common import Granularity, ModalityType
from repro.scenarios.testbed import SenSocialTestbed

USERS = 5
HORIZON_S = 30 * 60.0

#: Generous ceiling on enabled/disabled wall-clock ratio — the bench
#: guards against accidental O(n^2) bookkeeping, not micro-costs, and
#: must not flake on a noisy CI box.
MAX_OVERHEAD_RATIO = 3.0

#: The SLO control plane rides on an already-traced run: its probes
#: are O(1) interval reads and the eval tick fires four times a
#: virtual minute, so it must stay within 10% of the traced run
#: (median of three interleaved pairs to dodge CI noise).
MAX_SLO_OVERHEAD_RATIO = 1.10
SLO_SAMPLES = 3


def run_scenario(observability: bool, slo: bool = False) -> dict:
    started = time.perf_counter()
    testbed = SenSocialTestbed(seed=17, observability=observability,
                               slo=slo)
    for index in range(USERS):
        node = testbed.add_user(f"user{index}", "Paris")
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
    testbed.run(HORIZON_S)
    elapsed = time.perf_counter() - started
    result = {
        "wall_s": elapsed,
        "ingested": testbed.server.records_received,
        "messages": testbed.network.messages_sent,
    }
    if observability:
        result["traces"] = testbed.obs.tracer.started
        result["metrics"] = len(testbed.obs.telemetry)
    if slo:
        result["evaluations"] = testbed.slo.evaluator.evaluations
        result["transitions"] = len(testbed.slo.log)
        result["backoffs"] = testbed.slo.backoffs_pushed
    return result


def test_tracing_overhead_is_bounded(benchmark, report):
    def measure() -> dict:
        bare = run_scenario(observability=False)
        traced = run_scenario(observability=True)
        return {"bare": bare, "traced": traced,
                "ratio": traced["wall_s"] / max(bare["wall_s"], 1e-9)}

    result = run_once(benchmark, measure)
    bare, traced = result["bare"], result["traced"]
    report(
        "observability overhead (not in the paper)",
        ["run", "wall s", "ingested", "messages", "traces", "metrics"],
        [["bare", f"{bare['wall_s']:.3f}", bare["ingested"],
          bare["messages"], "-", "-"],
         ["traced", f"{traced['wall_s']:.3f}", traced["ingested"],
          traced["messages"], traced["traces"], traced["metrics"]],
         ["ratio", f"{result['ratio']:.2f}x", "", "", "", ""]])

    # Tracing must observe the run, not change it.
    assert traced["ingested"] == bare["ingested"]
    assert traced["messages"] == bare["messages"]
    # Every ingested record was traced (plus any local-only records).
    assert traced["traces"] >= traced["ingested"]
    # The headline bound: leaving tracing on stays affordable.
    assert result["ratio"] <= MAX_OVERHEAD_RATIO


def test_slo_evaluation_overhead_is_bounded(benchmark, report):
    def measure() -> dict:
        ratios = []
        traced = managed = None
        for _ in range(SLO_SAMPLES):
            traced = run_scenario(observability=True)
            managed = run_scenario(observability=True, slo=True)
            ratios.append(managed["wall_s"] / max(traced["wall_s"], 1e-9))
        return {"traced": traced, "managed": managed,
                "ratio": statistics.median(ratios)}

    result = run_once(benchmark, measure)
    traced, managed = result["traced"], result["managed"]
    report(
        "SLO evaluation overhead (not in the paper)",
        ["run", "wall s", "ingested", "evaluations", "transitions"],
        [["traced", f"{traced['wall_s']:.3f}", traced["ingested"],
          "-", "-"],
         ["slo", f"{managed['wall_s']:.3f}", managed["ingested"],
          managed["evaluations"], managed["transitions"]],
         ["ratio", f"{result['ratio']:.3f}x", "", "", ""]])

    # The plane evaluated throughout and, on a healthy run, never
    # actuated — the loop only pays when an SLO burns.
    assert managed["evaluations"] >= HORIZON_S / 15.0 - 2
    assert managed["backoffs"] == 0
    assert managed["ingested"] == traced["ingested"]
    # The headline gate: evaluating SLOs costs at most 10% on top of
    # an already-traced ingest path.
    assert result["ratio"] <= MAX_SLO_OVERHEAD_RATIO
