"""Table 2 — memory footprint of the stub SenSocial app vs GAR.

Paper: the stub app (five continuous streams, one listener each) uses
12.342 MB allocated / 51 419 objects vs GAR's 11.126 MB / 46 210 —
only ~1.2 MB extra for a much broader feature set.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.apps.gar import GoogleActivityRecognitionApp
from repro.core.common import Granularity, ModalityType
from repro.metrics import MemoryProfiler
from repro.scenarios.testbed import SenSocialTestbed

PAPER = {
    "sensocial": {"allowed": 13.508, "allocated": 12.342, "objects": 51419},
    "gar": {"allowed": 12.945, "allocated": 11.126, "objects": 46210},
}

SENSOR_MODALITIES = [
    ModalityType.ACCELEROMETER, ModalityType.MICROPHONE,
    ModalityType.LOCATION, ModalityType.WIFI, ModalityType.BLUETOOTH,
]


def run_stub_apps():
    testbed = SenSocialTestbed(seed=1, location_update_period_s=None)
    sensocial_node = testbed.add_user("stub", "Paris")
    for modality in SENSOR_MODALITIES:
        stream = sensocial_node.manager.create_stream(
            modality, Granularity.RAW)
        stream.register_listener(lambda record: None)
    # The GAR phone runs *only* the GAR app — no SenSocial middleware —
    # exactly like the paper's comparison device.
    from repro.device.phone import Smartphone
    gar_phone = Smartphone(testbed.world, testbed.network,
                           testbed.environments, "gar-user")
    GoogleActivityRecognitionApp(testbed.world, testbed.network,
                                 gar_phone).start()
    testbed.run(120.0)
    return (MemoryProfiler.profile(sensocial_node.phone),
            MemoryProfiler.profile(gar_phone))


def test_table2_memory_footprint(benchmark, report):
    sensocial, gar = run_once(benchmark, run_stub_apps)
    report(
        "Table 2: memory footprint (paper-vs-measured)",
        ["application", "heap allowed MB", "heap allocated MB", "objects"],
        [
            ["SenSocial (paper)", PAPER["sensocial"]["allowed"],
             PAPER["sensocial"]["allocated"], PAPER["sensocial"]["objects"]],
            ["SenSocial (measured)", sensocial.heap_allowed_mb,
             sensocial.heap_allocated_mb, sensocial.objects],
            ["GAR (paper)", PAPER["gar"]["allowed"],
             PAPER["gar"]["allocated"], PAPER["gar"]["objects"]],
            ["GAR (measured)", gar.heap_allowed_mb,
             gar.heap_allocated_mb, gar.objects],
        ],
    )
    # Shape 1: SenSocial costs only slightly more memory than GAR.
    extra_mb = sensocial.heap_allocated_mb - gar.heap_allocated_mb
    assert 0.0 < extra_mb < 2.5, f"extra memory {extra_mb:.2f} MB off-shape"
    # Shape 2: object counts land in the paper's regime (±20 %).
    assert abs(sensocial.objects - PAPER["sensocial"]["objects"]) \
        < 0.2 * PAPER["sensocial"]["objects"]
    assert abs(gar.objects - PAPER["gar"]["objects"]) \
        < 0.2 * PAPER["gar"]["objects"]
    # Shape 3: the Dalvik heap limit sits above the allocation.
    assert sensocial.heap_allowed_mb > sensocial.heap_allocated_mb
    assert gar.heap_allowed_mb > gar.heap_allocated_mb
