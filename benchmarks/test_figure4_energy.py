"""Figure 4 — average battery charge consumed per sensing cycle.

Paper (§5.3): sensing every 60 s for one hour per modality, raw (R:
sample + transmit) and classified (C: sample + classify + transmit),
plus the Acc-GAR baseline.  The headline shapes: GPS is the most
expensive sensor to sample; raw accelerometer cost is dominated by
transmission; classifying the accelerometer stream roughly halves its
total; GAR lands ~25 % below the classified accelerometer stream.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.apps.gar import GoogleActivityRecognitionApp
from repro.core.common import Granularity, ModalityType
from repro.device.battery import EnergyCategory
from repro.metrics import EnergyMeter
from repro.scenarios.testbed import SenSocialTestbed

HOUR_S = 3600.0
CYCLES = 60  # one cycle per minute for an hour

#: Paper values read off Figure 4, in mAh per cycle (approximate).
PAPER_TOTALS = {
    ("accelerometer", "raw"): 0.0125,
    ("accelerometer", "classified"): 0.0060,
    ("microphone", "raw"): 0.0065,
    ("microphone", "classified"): 0.0055,
    ("location", "raw"): 0.0140,
    ("location", "classified"): 0.0135,
    ("wifi", "raw"): 0.0035,
    ("wifi", "classified"): 0.0030,
    ("bluetooth", "raw"): 0.0045,
    ("bluetooth", "classified"): 0.0040,
    ("gar", "classified"): 0.0045,
}


def measure_stream(modality: ModalityType, granularity: Granularity):
    """Per-cycle (sampling, classification, transmission, total) mAh."""
    testbed = SenSocialTestbed(seed=3, location_update_period_s=None)
    node = testbed.add_user("solo", "Paris")
    meter = EnergyMeter(testbed.world, node.phone.battery).start()
    node.manager.create_stream(modality, granularity, send_to_server=True,
                               settings={"duty_cycle_s": 60.0})
    testbed.run(HOUR_S)
    meter.stop()
    sampling = meter.category_mah(EnergyCategory.SAMPLING) / CYCLES
    classification = meter.category_mah(EnergyCategory.CLASSIFICATION) / CYCLES
    transmission = meter.category_mah(EnergyCategory.TRANSMISSION) / CYCLES
    return sampling, classification, transmission


def measure_gar():
    testbed = SenSocialTestbed(seed=3, location_update_period_s=None)
    node = testbed.add_user("gar-user", "Paris")
    meter = EnergyMeter(testbed.world, node.phone.battery).start()
    GoogleActivityRecognitionApp(testbed.world, testbed.network,
                                 node.phone).start()
    testbed.run(HOUR_S)
    meter.stop()
    bundled = meter.category_mah(EnergyCategory.SAMPLING) / CYCLES
    transmission = meter.category_mah(EnergyCategory.TRANSMISSION) / CYCLES
    return bundled, 0.0, transmission


def run_figure4():
    results = {}
    for modality in [ModalityType.ACCELEROMETER, ModalityType.MICROPHONE,
                     ModalityType.LOCATION, ModalityType.WIFI,
                     ModalityType.BLUETOOTH]:
        for granularity in [Granularity.RAW, Granularity.CLASSIFIED]:
            results[(modality.value, granularity.value)] = measure_stream(
                modality, granularity)
    results[("gar", "classified")] = measure_gar()
    return results


def test_figure4_energy_per_cycle(benchmark, report):
    results = run_once(benchmark, run_figure4)
    rows = []
    totals = {}
    for key in PAPER_TOTALS:
        sampling, classification, transmission = results[key]
        total = sampling + classification + transmission
        totals[key] = total
        rows.append([
            f"{key[0]} ({key[1][0].upper()})",
            f"{PAPER_TOTALS[key]:.4f}",
            f"{total:.4f}",
            f"{sampling:.4f}", f"{classification:.4f}", f"{transmission:.4f}",
        ])
    report(
        "Figure 4: battery charge per sensing cycle [mAh] (paper-vs-measured)",
        ["stream", "paper total", "measured", "sampling", "classif.", "transm."],
        rows,
    )

    # Shape 1: GPS sampling is the most expensive of the five sensors.
    gps_sampling = results[("location", "raw")][0]
    for modality in ["accelerometer", "microphone", "wifi", "bluetooth"]:
        assert gps_sampling > results[(modality, "raw")][0]
    # Shape 2: raw accelerometer cost is dominated by transmission.
    acc_sampling, _, acc_transmission = results[("accelerometer", "raw")]
    assert acc_transmission > 2 * acc_sampling
    # Shape 3: classification roughly halves the accelerometer total.
    ratio = totals[("accelerometer", "classified")] / \
        totals[("accelerometer", "raw")]
    assert 0.3 < ratio < 0.7, f"acc classified/raw ratio {ratio:.2f}"
    # Shape 4: GAR sits below (~25 %) the classified accelerometer stream.
    gar_ratio = totals[("gar", "classified")] / \
        totals[("accelerometer", "classified")]
    assert 0.55 < gar_ratio < 0.95, f"GAR ratio {gar_ratio:.2f}"
    # Anchors: totals land within 35 % of Figure 4's values, with an
    # absolute floor of 0.002 mAh — the read-off precision of the
    # paper's printed bar chart.
    for key, paper_total in PAPER_TOTALS.items():
        assert totals[key] == pytest.approx(paper_total, rel=0.35,
                                            abs=0.002), key
