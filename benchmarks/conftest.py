"""Shared benchmark helpers.

Every benchmark regenerates one table or figure of the paper's
evaluation (§5/§6) and prints paper-vs-measured rows.  Absolute values
come from a simulator calibrated against the paper's testbed; the
assertions check the *shape* of each result (orderings, ratios,
crossovers), which is what a reproduction on different hardware can
honestly claim.
"""

from __future__ import annotations

import pytest

from repro.core.mobile.manager import MobileSenSocialManager


@pytest.fixture(autouse=True)
def _reset_singletons():
    MobileSenSocialManager.reset_instances()
    yield
    MobileSenSocialManager.reset_instances()


@pytest.fixture
def report(capsys):
    """Print a titled paper-vs-measured table, bypassing capture."""

    def _print(title: str, headers: list[str], rows: list[list]) -> None:
        widths = [max(len(str(cell)) for cell in column)
                  for column in zip(headers, *rows)]
        with capsys.disabled():
            print(f"\n=== {title} ===")
            print("  ".join(str(header).ljust(width)
                            for header, width in zip(headers, widths)))
            for row in rows:
                print("  ".join(str(cell).ljust(width)
                                for cell, width in zip(row, widths)))

    return _print


def run_once(benchmark, fn):
    """Run a whole-simulation benchmark exactly once and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
