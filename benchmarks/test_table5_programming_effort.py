"""Table 5 — programming-effort comparison (with vs without SenSocial).

Paper (§6.3): Facebook Sensor Map shrinks from 3423 to 316 LOC (~9×)
and ConWeb from 3223 to 130 LOC (~24×) when built on the middleware.
We count our own four functionally equivalent implementations with the
same CLOC tool (the shared third-party sensing library is excluded in
both variants, as in the paper).
"""

from __future__ import annotations

from pathlib import Path

from benchmarks.conftest import run_once
from repro.metrics import count_tree

APPS = Path(__file__).resolve().parent.parent / "src" / "repro" / "apps"

PAPER = {
    "sensor_map": {"with": 316, "without": 3423, "files_with": 10,
                   "files_without": 110},
    "conweb": {"with": 130, "without": 3223, "files_with": 4,
               "files_without": 99},
}


def run_table5():
    return {
        "sensor_map": {
            "with": count_tree(APPS / "sensor_map"),
            "without": count_tree(APPS / "sensor_map_baseline"),
        },
        "conweb": {
            # The simulated Web server exists in both variants and is
            # excluded, like the shared sensing library.
            "with": count_tree(APPS / "conweb" / "mobile.py")
            + count_tree(APPS / "conweb" / "server.py"),
            "without": count_tree(APPS / "conweb_baseline"),
        },
    }


def test_table5_programming_effort(benchmark, report):
    counts = run_once(benchmark, run_table5)
    rows = []
    for app in ["sensor_map", "conweb"]:
        with_count = counts[app]["with"]
        without_count = counts[app]["without"]
        paper_ratio = PAPER[app]["without"] / PAPER[app]["with"]
        measured_ratio = without_count.code_lines / with_count.code_lines
        rows.append([app, PAPER[app]["with"], with_count.code_lines,
                     PAPER[app]["without"], without_count.code_lines,
                     f"{paper_ratio:.1f}x", f"{measured_ratio:.1f}x"])
    report(
        "Table 5: LOC with vs without SenSocial",
        ["application", "paper with", "measured with", "paper without",
         "measured without", "paper ratio", "measured ratio"],
        rows,
    )
    for app in ["sensor_map", "conweb"]:
        with_count = counts[app]["with"]
        without_count = counts[app]["without"]
        # Shape: the middleware removes the large majority of the code.
        assert without_count.code_lines > 3 * with_count.code_lines, app
        assert without_count.files > with_count.files, app
        # Sanity: the baseline is a real implementation, not a stub.
        assert without_count.code_lines > 400, app
