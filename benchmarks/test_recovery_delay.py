"""Robustness — time-to-recovery after broker and network failures.

Not a paper table: the paper's testbed never kills the broker.  This
bench measures how long the hardened middleware takes to get every
device reconnected and its outbox drained after (a) a broker
crash+restart and (b) a 60 s network partition, and confirms the
headline robustness claim — zero record loss at QoS 1 — along the way.

Recovery is bounded by the reconnect policy (exponential backoff, base
2 s, cap 30 s, 25 % jitter) plus the keep-alive watchdog that detects
the outage in the first place, so delays land in the tens of seconds,
not milliseconds.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.common import Granularity, ModalityType
from repro.faults import ChaosController, FaultPlan
from repro.scenarios.testbed import SenSocialTestbed

USERS = 3
FAULT_AT_S = 300.0
DOWNTIME_S = 60.0
HORIZON_S = 20 * 60.0


def measure(kind: str) -> dict:
    """Run one faulted scenario; return recovery + delivery figures."""
    testbed = SenSocialTestbed(seed=23)
    for index in range(USERS):
        node = testbed.add_user(f"user{index}", "Paris")
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
    controller = ChaosController(testbed)
    plan = FaultPlan(kind)
    if kind == "broker-restart":
        plan.broker_restart(at=FAULT_AT_S, downtime=DOWNTIME_S)
    else:
        plan.partition("devices", start=FAULT_AT_S, duration=DOWNTIME_S)
    controller.apply(plan)
    testbed.run(HORIZON_S)
    report = controller.report()
    delays = list(report.recovery_delays.values())
    if not delays:
        # Partition runs: recovery is when every outbox drains again.
        delays = [HORIZON_S - FAULT_AT_S - DOWNTIME_S]
    return {
        "worst_recovery_s": max(delays),
        "mean_recovery_s": sum(delays) / len(delays),
        "records_lost": report.records_lost,
        "still_queued": report.records_queued,
        "reconnects": sum(device["reconnects"] for device in report.devices),
    }


def test_recovery_after_broker_restart(benchmark, report):
    result = run_once(benchmark, lambda: measure("broker-restart"))
    report(
        f"Recovery after broker crash ({DOWNTIME_S:.0f} s down, {USERS} devices)",
        ["metric", "value"],
        [["worst reconnect delay", f"{result['worst_recovery_s']:.1f} s"],
         ["mean reconnect delay", f"{result['mean_recovery_s']:.1f} s"],
         ["reconnects", result["reconnects"]],
         ["records lost", result["records_lost"]],
         ["records still queued", result["still_queued"]]],
    )
    assert result["records_lost"] == 0
    assert result["still_queued"] == 0
    assert result["reconnects"] >= USERS
    # Bounded by watchdog detection (1.5 × keep-alive) + capped backoff.
    assert result["worst_recovery_s"] < 120.0, result


def test_zero_loss_across_partition(benchmark, report):
    result = run_once(benchmark, lambda: measure("partition"))
    report(
        f"Delivery across a {DOWNTIME_S:.0f} s partition ({USERS} devices)",
        ["metric", "value"],
        [["records lost", result["records_lost"]],
         ["records still queued", result["still_queued"]]],
    )
    assert result["records_lost"] == 0
    assert result["still_queued"] == 0
