"""Figure 5 — CPU load with an increasing number of sensor streams.

Paper (§5.5): CPU load grows significantly only for streams transmitted
to the server, reaching ~55 % at 50 streams, while locally consumed
streams stay nearly flat; at the five streams SenSocial actually
supports, the load is below 10 %.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.common import Granularity, ModalityType
from repro.metrics import CpuProfiler
from repro.scenarios.testbed import SenSocialTestbed

STREAM_COUNTS = [0, 5, 10, 20, 30, 40, 50]

#: Values read off Figure 5 (percent of one core).
PAPER_SERVER = {0: 1, 5: 7, 10: 13, 20: 24, 30: 35, 40: 46, 50: 56}
PAPER_LOCAL = {0: 1, 5: 2, 10: 2, 20: 3, 30: 4, 40: 4, 50: 5}


def measure_cpu(stream_count: int, to_server: bool) -> tuple[float, float]:
    """(mean CPU %, allocated heap MB) at the given stream count."""
    testbed = SenSocialTestbed(seed=5, location_update_period_s=None)
    node = testbed.add_user("alice", "Paris")
    for _ in range(stream_count):
        node.manager.create_stream(ModalityType.WIFI, Granularity.RAW,
                                   send_to_server=to_server)
    profiler = CpuProfiler(testbed.world, node.phone.cpu).start()
    testbed.run(120.0)
    return profiler.stop(), node.phone.heap.allocated_mb


def run_figure5():
    server_results = {count: measure_cpu(count, to_server=True)
                      for count in STREAM_COUNTS}
    local_results = {count: measure_cpu(count, to_server=False)
                     for count in STREAM_COUNTS}
    return server_results, local_results


def test_figure5_cpu_vs_streams(benchmark, report):
    server_results, local_results = run_once(benchmark, run_figure5)
    server_loads = {count: cpu for count, (cpu, _) in server_results.items()}
    local_loads = {count: cpu for count, (cpu, _) in local_results.items()}
    heap_by_count = {count: heap for count, (_, heap) in server_results.items()}
    report(
        "Figure 5: CPU load vs number of streams [%]",
        ["streams", "paper server", "measured server",
         "paper local", "measured local"],
        [[count, PAPER_SERVER[count], f"{server_loads[count]:.1f}",
          PAPER_LOCAL[count], f"{local_loads[count]:.1f}"]
         for count in STREAM_COUNTS],
    )
    # Shape 1: server streams grow steeply, local streams stay flat.
    server_growth = server_loads[50] - server_loads[0]
    local_growth = local_loads[50] - local_loads[0]
    assert server_growth > 5 * local_growth
    # Shape 2: both curves are monotonically non-decreasing.
    for prev, curr in zip(STREAM_COUNTS, STREAM_COUNTS[1:]):
        assert server_loads[curr] >= server_loads[prev]
        assert local_loads[curr] >= local_loads[prev] - 0.5
    # Shape 3: "the CPU load is less than 10% even with five streams".
    assert server_loads[5] < 10.0
    assert local_loads[50] < 12.0
    # Anchor: 50 server streams land in the paper's ~55 % regime.
    assert 40.0 < server_loads[50] < 75.0
    # §5.5's companion finding: "the number of streams does not affect
    # the memory consumption of the application" — under 5 % growth
    # from 0 to 50 streams.
    heap_growth = heap_by_count[50] / heap_by_count[0] - 1.0
    assert heap_growth < 0.05, f"heap grew {heap_growth:.1%} over 50 streams"
