"""Ablation — filter placement and energy (§5.5 "Impact of Filter
Complexity").

The paper: "the use of filtering rules can also help to save battery by
sampling energy-costly sensors only on satisfaction of the conditions
based on a less energy consuming sensor.  For example, sampling
location via GPS is far more demanding ... than sampling the
accelerometer ... it might be worth creating a filter that allows
location data sampling only if the accelerometer data indicates
movement."  We measure exactly that filter on a mostly-still user.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.common import (
    Condition,
    Filter,
    Granularity,
    ModalityType,
    ModalityValue,
    Operator,
)
from repro.device import ActivityState
from repro.metrics import EnergyMeter
from repro.scenarios.testbed import SenSocialTestbed

WINDOW_S = 30 * 60.0


def measure(filtered: bool) -> float:
    testbed = SenSocialTestbed(seed=47, location_update_period_s=None)
    node = testbed.add_user("alice", "Paris")
    node.mobility.stop()
    node.phone.environment.activity = ActivityState.STILL
    stream_filter = Filter()
    if filtered:
        stream_filter = Filter([Condition(
            ModalityType.PHYSICAL_ACTIVITY, Operator.EQUALS,
            ModalityValue.WALKING)])
    node.manager.create_stream(ModalityType.LOCATION, Granularity.RAW,
                               stream_filter=stream_filter,
                               send_to_server=True)
    meter = EnergyMeter(testbed.world, node.phone.battery).start()
    testbed.run(WINDOW_S)
    return meter.stop() * 1000.0  # µAh


def test_gps_when_walking_filter_saves_energy(benchmark, report):
    results = run_once(benchmark, lambda: {
        "unfiltered GPS stream": measure(filtered=False),
        "GPS only-when-walking": measure(filtered=True),
    })
    unfiltered = results["unfiltered GPS stream"]
    filtered = results["GPS only-when-walking"]
    report(
        "Ablation: GPS stream energy over 30 min, still user [µAh]",
        ["configuration", "energy"],
        [[name, f"{value:.1f}"] for name, value in results.items()],
    )
    # The filter trades a cheap continuous accelerometer monitor for
    # the expensive GPS cycles it suppresses — a net win on a still
    # user.
    assert filtered < unfiltered
    assert filtered < 0.75 * unfiltered, \
        f"saving only {1 - filtered / unfiltered:.0%}"
