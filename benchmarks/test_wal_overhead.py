"""Write-ahead journal overhead — the cost of leaving durability on.

Not a paper table: the paper delegates persistence to MongoDB and
never measures its write path.  This bench runs the same multi-user
scenario with the durable server (journal + admission control) and
without, on the same seed, and reports the wall-clock ratio plus the
journal's bookkeeping volume.  The durable path deep-copies each
journaled payload and runs every ingest through the intake queue, so
it is not free — but it must stay within a small multiple of the bare
run, and it must deliver exactly the same record stream.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.core.common import Granularity, ModalityType
from repro.scenarios.testbed import SenSocialTestbed

USERS = 5
HORIZON_S = 30 * 60.0
DRAIN_S = 120.0

#: Generous ceiling on durable/bare wall-clock ratio — guards against
#: accidental O(n^2) journaling, not micro-costs, and must not flake
#: on a noisy CI box.
MAX_OVERHEAD_RATIO = 3.0


def run_scenario(durability: bool) -> dict:
    started = time.perf_counter()
    testbed = SenSocialTestbed(seed=23, durability=durability)
    for index in range(USERS):
        node = testbed.add_user(f"user{index}", "Paris")
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
    testbed.run(HORIZON_S)
    testbed.run(DRAIN_S)  # quiet tail: the intake queue fully drains
    elapsed = time.perf_counter() - started
    result = {
        "wall_s": elapsed,
        "ingested": testbed.server.records_received,
        "stored": testbed.server.database.records.count(),
        "contents": sorted(
            (doc["user_id"], doc["timestamp"], doc["value"])
            for doc in testbed.server.database.records.find()),
    }
    if durability:
        result["appends"] = testbed.durability.medium.appends
        result["checkpoints"] = testbed.durability.medium.checkpoints
        result["shed"] = testbed.durability.records_shed
    return result


def test_journal_overhead_is_bounded(benchmark, report):
    def measure() -> dict:
        bare = run_scenario(durability=False)
        durable = run_scenario(durability=True)
        return {"bare": bare, "durable": durable,
                "ratio": durable["wall_s"] / max(bare["wall_s"], 1e-9)}

    result = run_once(benchmark, measure)
    bare, durable = result["bare"], result["durable"]
    report(
        "write-ahead journal overhead (not in the paper)",
        ["run", "wall s", "ingested", "stored", "appends", "checkpoints"],
        [["bare", f"{bare['wall_s']:.3f}", bare["ingested"],
          bare["stored"], "-", "-"],
         ["durable", f"{durable['wall_s']:.3f}", durable["ingested"],
          durable["stored"], durable["appends"], durable["checkpoints"]],
         ["ratio", f"{result['ratio']:.2f}x", "", "", "", ""]])

    # Durability must preserve the run, not change it: no overload in
    # this scenario, so nothing shed and the same records ingested.
    assert durable["shed"] == 0
    assert durable["ingested"] == bare["ingested"]
    assert durable["contents"] == bare["contents"]
    # Every stored record rode a journal entry.
    assert durable["appends"] >= durable["stored"]
    # The headline bound: leaving the journal on stays affordable.
    assert result["ratio"] <= MAX_OVERHEAD_RATIO
