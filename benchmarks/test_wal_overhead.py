"""Write-ahead journal overhead — the cost of leaving durability on.

Not a paper table: the paper delegates persistence to MongoDB and
never measures its write path.  This bench runs the same multi-user
scenario with the durable server (journal + admission control) and
without, on the same seed, and reports the wall-clock ratio plus the
journal's bookkeeping volume.  The durable path encodes each journaled
payload into a CRC-framed byte log and runs every ingest through the
intake queue, so it is not free — but it must stay within a small
multiple of the bare run, and it must deliver exactly the same record
stream.

A second gate pins the durable format itself: appending through the
canonical codec + CRC32 framing must stay within 2× of the old
object-reference journal (a deep-copied entry on a Python list) on
representative record payloads — the wire format buys torn-tail and
bit-rot tolerance, and this is the ceiling on what it may cost.
"""

from __future__ import annotations

import copy
import time

from benchmarks.conftest import run_once
from repro.core.common import Granularity, ModalityType
from repro.durability.journal import JournalEntry, StorageMedium
from repro.scenarios.testbed import SenSocialTestbed

USERS = 5
HORIZON_S = 30 * 60.0
DRAIN_S = 120.0

#: Generous ceiling on durable/bare wall-clock ratio — guards against
#: accidental O(n^2) journaling, not micro-costs, and must not flake
#: on a noisy CI box.
MAX_OVERHEAD_RATIO = 3.0


def run_scenario(durability: bool) -> dict:
    started = time.perf_counter()
    testbed = SenSocialTestbed(seed=23, durability=durability)
    for index in range(USERS):
        node = testbed.add_user(f"user{index}", "Paris")
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
    testbed.run(HORIZON_S)
    testbed.run(DRAIN_S)  # quiet tail: the intake queue fully drains
    elapsed = time.perf_counter() - started
    result = {
        "wall_s": elapsed,
        "ingested": testbed.server.records_received,
        "stored": testbed.server.database.records.count(),
        "contents": sorted(
            (doc["user_id"], doc["timestamp"], doc["value"])
            for doc in testbed.server.database.records.find()),
    }
    if durability:
        result["appends"] = testbed.durability.medium.appends
        result["checkpoints"] = testbed.durability.medium.checkpoints
        result["shed"] = testbed.durability.records_shed
    return result


def test_journal_overhead_is_bounded(benchmark, report):
    def measure() -> dict:
        bare = run_scenario(durability=False)
        durable = run_scenario(durability=True)
        return {"bare": bare, "durable": durable,
                "ratio": durable["wall_s"] / max(bare["wall_s"], 1e-9)}

    result = run_once(benchmark, measure)
    bare, durable = result["bare"], result["durable"]
    report(
        "write-ahead journal overhead (not in the paper)",
        ["run", "wall s", "ingested", "stored", "appends", "checkpoints"],
        [["bare", f"{bare['wall_s']:.3f}", bare["ingested"],
          bare["stored"], "-", "-"],
         ["durable", f"{durable['wall_s']:.3f}", durable["ingested"],
          durable["stored"], durable["appends"], durable["checkpoints"]],
         ["ratio", f"{result['ratio']:.2f}x", "", "", "", ""]])

    # Durability must preserve the run, not change it: no overload in
    # this scenario, so nothing shed and the same records ingested.
    assert durable["shed"] == 0
    assert durable["ingested"] == bare["ingested"]
    assert durable["contents"] == bare["contents"]
    # Every stored record rode a journal entry.
    assert durable["appends"] >= durable["stored"]
    # The headline bound: leaving the journal on stays affordable.
    assert result["ratio"] <= MAX_OVERHEAD_RATIO


#: Ceiling on (encode+CRC byte log) / (deep-copied object list) append
#: cost.  The codec replaces the payload deep-copy the object journal
#: needed, so in practice the ratio hovers around 1.
MAX_ENCODE_RATIO = 2.0
ENCODE_ENTRIES = 4000
ENCODE_REPEATS = 5


class _ObjectReferenceMedium:
    """The pre-wire-format journal: deep-copied entries on a list —
    the baseline the durable format's overhead gate compares against."""

    def __init__(self) -> None:
        self.entries: list[JournalEntry] = []

    def append(self, entry: JournalEntry) -> None:
        self.entries.append(
            JournalEntry(seq=entry.seq, op=entry.op,
                         collection=entry.collection,
                         payload=copy.deepcopy(entry.payload)))


def _representative_entries() -> list[JournalEntry]:
    """Ingest-shaped payloads: what the journal actually appends."""
    entries = []
    for index in range(ENCODE_ENTRIES):
        document = {
            "user_id": f"user{index % 5}",
            "device_id": f"d{index % 5:04d}",
            "modality": "ACCELEROMETER",
            "granularity": "CLASSIFIED",
            "timestamp": 1800.0 + index * 0.25,
            "value": {"activity": "walking", "confidence": 0.75,
                      "magnitude": [0.1 * index, 9.81, -0.3]},
            "tags": ["sensed", "classified"],
        }
        entries.append(JournalEntry(
            seq=index, op="ingest", collection="records",
            payload={"document": document, "record_id": f"r{index:08d}"}))
    return entries


def _best_append_time(medium_factory, entries) -> float:
    best = float("inf")
    for _ in range(ENCODE_REPEATS):
        medium = medium_factory()
        started = time.perf_counter()
        for entry in entries:
            medium.append(entry)
        best = min(best, time.perf_counter() - started)
    return best


def test_encode_crc_overhead_is_bounded(benchmark, report):
    entries = _representative_entries()

    def measure() -> dict:
        object_s = _best_append_time(_ObjectReferenceMedium, entries)
        durable_s = _best_append_time(StorageMedium, entries)
        return {"object_s": object_s, "durable_s": durable_s,
                "ratio": durable_s / max(object_s, 1e-9)}

    result = run_once(benchmark, measure)
    per_entry_us = result["durable_s"] / ENCODE_ENTRIES * 1e6
    report(
        "durable format append cost: encode+CRC vs object references",
        ["journal", "append s", "per entry"],
        [["object references", f"{result['object_s']:.4f}", "-"],
         ["encode+CRC frames", f"{result['durable_s']:.4f}",
          f"{per_entry_us:.1f}us"],
         ["ratio", f"{result['ratio']:.2f}x", ""]])

    # The round-trip must be exact, not just fast.
    durable = StorageMedium()
    for entry in entries[:50]:
        durable.append(entry)
    assert durable.entries == entries[:50]
    # The pinned budget for the durable format.
    assert result["ratio"] <= MAX_ENCODE_RATIO
