"""Ablation — document-store indexing (§5.5 "Impact of Multiple Users").

The paper: "due to its non-relational nature querying from MongoDB can
be inefficient.  This limitation can be addressed by building indices
for commonly used queries."  This is a real timing benchmark (multiple
rounds) of the same equality query against an indexed and an unindexed
collection, plus the geospatial nearby-users query the multicast layer
relies on.
"""

from __future__ import annotations

import pytest

from repro.core.server.storage import ServerDatabase
from repro.docstore import DocumentStore
from repro.simkit import World

USERS = 2000


def populate(collection, indexed: bool):
    if indexed:
        collection.create_index("user_id")
    rng = World(seed=77).rng("db-bench")
    collection.insert_many([
        {"user_id": f"user-{index}",
         "location": {"point": [rng.uniform(-1, 1), rng.uniform(44, 49)],
                      "place": "Somewhere"}}
        for index in range(USERS)
    ])


@pytest.fixture
def unindexed():
    collection = DocumentStore()["users"]
    populate(collection, indexed=False)
    return collection


@pytest.fixture
def indexed():
    collection = DocumentStore()["users"]
    populate(collection, indexed=True)
    return collection


def test_equality_query_unindexed(benchmark, unindexed):
    result = benchmark(lambda: unindexed.find_one({"user_id": "user-1500"}))
    assert result is not None
    assert unindexed.index_lookups == 0


def test_equality_query_indexed(benchmark, indexed):
    result = benchmark(lambda: indexed.find_one({"user_id": "user-1500"}))
    assert result is not None
    assert indexed.index_lookups > 0
    # The index must serve lookups without full scans (beyond the
    # population-time ones).
    scans_before = indexed.scans
    indexed.find_one({"user_id": "user-7"})
    assert indexed.scans == scans_before


def test_geospatial_nearby_users(benchmark):
    database = ServerDatabase()
    rng = World(seed=78).rng("geo-bench")
    for index in range(500):
        user = f"u{index}"
        database.register_device(user, f"d{index}", ["wifi"])
        database.update_location(user, rng.uniform(-1, 5),
                                 rng.uniform(44, 50), "City", 0.0)
    nearby = benchmark(lambda: database.users_near([2.0, 47.0], 50.0))
    assert len(nearby) > 0
