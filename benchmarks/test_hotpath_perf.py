"""Hot-path benchmark gate — broker trie, query planner, lazy ingest.

The paper's §5.5 prescribes indices for the data path and Tables 3/4
measure delay degradation under load; this bench asserts the
*algorithmic* wins installed by the hot-path overhaul and records the
perf trajectory (``BENCH_PERF.json``, see ``docs/PERFORMANCE.md``):

* broker routing work per PUBLISH stays sublinear in the subscriber
  population (the trie walks topic levels, not subscription tables);
* indexed conjunctive queries examine >= 10x fewer candidate documents
  than a full scan at 1k+ documents (hash-bucket intersection);
* the whole virtual-clock pipeline still ingests end to end.

Assertions ride on deterministic work counters (``routing_checks``,
``candidates_examined``), never on wall-clock, so the gate cannot
flake on slow CI machines; timings are reported for the trajectory
only.  Thresholds are generous: the measured numbers (constant routing
work under a 16x population growth, ~20x candidate reduction) clear
them several times over, so a breach means a real regression.
"""

from __future__ import annotations

import json

from repro.perf import (
    bench_batch_ingest,
    bench_broker_fanout,
    bench_docstore_query,
    bench_end_to_end_ingest,
    run_all,
    write_report,
)

#: Routing work may grow at most this fraction of the subscriber
#: growth before the gate trips (a linear scan scores 1.0).
MAX_SUBLINEARITY_RATIO = 0.25

#: Required candidate-evaluation reduction for indexed conjunctive
#: queries at 1k+ documents (ISSUE 4 acceptance floor).
MIN_CONJUNCTIVE_REDUCTION = 10.0

#: ``$in`` unions intersect coarser buckets, so the floor is lower.
MIN_IN_UNION_REDUCTION = 3.0

#: Required durable-ingest throughput multiple at batch >= 64 (ISSUE 9
#: acceptance gate; measured ~12-13x, so a breach is a real
#: regression, not machine noise — both sides of the ratio run on the
#: same machine back to back).
MIN_BATCH_SPEEDUP = 10.0

#: Per-record *work* at batch >= 64 must fall at least this much vs
#: the singleton path — deterministic counters, immune to wall noise.
MIN_WORK_REDUCTION = 10.0


def test_broker_routing_sublinear(report):
    metrics = bench_broker_fanout(subscriber_counts=(100, 400, 1600),
                                  publishes=100)
    points = metrics["points"]
    report("broker fan-out: routing work per publish",
           ["subscribers", "checks/publish", "scan would do", "publish/s"],
           [[p["subscribers"], f"{p['checks_per_publish']:.1f}",
             p["scan_equivalent"], f"{p['publishes_per_s']:,.0f}"]
            for p in points])
    growth = metrics["growth"]
    assert growth["subscription_growth"] >= 15
    # Sublinear: 16x more subscriptions must NOT mean 16x more routing
    # work per publish.  (Measured: the work is constant.)
    assert growth["checks_growth"] <= \
        growth["subscription_growth"] * MAX_SUBLINEARITY_RATIO
    # And the trie must beat the old scan outright at every size.
    for point in points:
        assert point["checks_per_publish"] < point["scan_equivalent"]
    # The match set is constant by construction; delivery must agree.
    matches = {p["matches_per_publish"] for p in points}
    assert len(matches) == 1


def test_docstore_conjunctive_index_reduction(report):
    metrics = bench_docstore_query(n_docs=1000, rounds=50)
    rows = []
    for group in ("conjunctive", "in_union"):
        group_metrics = metrics[group]
        rows.append([group,
                     f"{group_metrics['scan']['candidates_per_query']:.0f}",
                     f"{group_metrics['indexed']['candidates_per_query']:.0f}",
                     f"{group_metrics['candidate_reduction']:.1f}x"])
        # Indexed and scanned queries must agree on the result set size
        # (the equivalence property tests pin contents and order).
        assert group_metrics["scan"]["results"] == \
            group_metrics["indexed"]["results"]
        assert group_metrics["indexed"]["results"] > 0
    report("docstore: candidates examined per query (1000 docs)",
           ["query", "full scan", "indexed", "reduction"], rows)
    assert metrics["conjunctive"]["candidate_reduction"] >= \
        MIN_CONJUNCTIVE_REDUCTION
    assert metrics["in_union"]["candidate_reduction"] >= \
        MIN_IN_UNION_REDUCTION
    # Repeated queries must hit the compiled-plan cache.
    assert metrics["compiler_cache_hits"] > 0


def test_end_to_end_ingest_pipeline(report):
    metrics = bench_end_to_end_ingest(users=4, sim_minutes=5.0)
    report("end-to-end ingest (virtual clock)",
           ["records", "sim s", "wall s", "speedup", "records/wall-s"],
           [[metrics["records_ingested"], f"{metrics['sim_seconds']:.0f}",
             f"{metrics['wall_seconds']:.2f}",
             f"{metrics['sim_speedup']:.0f}x",
             f"{metrics['records_per_wall_s']:,.0f}"]])
    assert metrics["records_ingested"] > 0
    assert metrics["broker_publishes"] > 0
    # Routing work per publish must stay far below the subscription
    # table size a scan would have walked (users x subscriptions).
    assert metrics["broker_checks_per_publish"] is not None


class TestBatchIngest:
    """The ISSUE 9 tentpole gate: batched transport+ingest must beat
    per-record by >= 10x records/wall-s at batch >= 64, with the win
    explained by deterministic work counters (journal appends, trie
    routings, ack envelopes and network messages per record all fall
    as 1/batch) — and the outputs stay bit-identical either way
    (``tests/test_batch_identity.py``)."""

    def test_batch_throughput_gate(self, report):
        metrics = bench_batch_ingest(records=2048)
        points = {point["batch"]: point for point in metrics["points"]}
        report("durable ingest: batched vs per-record transport",
               ["batch", "records/wall-s", "speedup", "msgs/rec",
                "appends/rec", "acks/rec", "routings/rec"],
               [[p["batch"], f"{p['records_per_wall_s']:,.0f}",
                 f"{p['speedup_vs_singleton']:.1f}x",
                 f"{p['messages_per_record']:.3f}",
                 f"{p['journal_appends_per_record']:.3f}",
                 f"{p['ack_messages_per_record']:.3f}",
                 f"{p['trie_routings_per_record']:.3f}"]
                for p in metrics["points"]])
        # Both paths must ingest the *entire* record set — a speedup
        # bought by shedding or quarantining records would be a lie.
        for point in metrics["points"]:
            assert point["records_ingested"] == metrics["records"]
            assert point["records_shed"] == 0
            assert point["records_quarantined"] == 0
            assert point["acked_records"] == metrics["records"]
        base = points[1]
        # Singleton shape: one data message + one ack + one journal
        # frame + one trie routing per record.
        assert base["messages_per_record"] >= 2.0
        assert base["journal_appends_per_record"] >= 1.0
        assert base["ack_messages_per_record"] == 1.0
        assert base["trie_routings_per_record"] == 1.0
        # Deterministic amortization evidence at every gated size.
        for batch in (64, 256):
            point = points[batch]
            for counter in ("messages_per_record",
                            "journal_appends_per_record",
                            "ack_messages_per_record",
                            "trie_routings_per_record"):
                assert point[counter] * MIN_WORK_REDUCTION <= base[counter]
            # The broker saw every record exactly once despite routing
            # only 1/batch as many envelopes.
            assert point["batched_records_routed"] == metrics["records"]
        # The wall-clock gate itself: >= 10x records/wall-s at some
        # batch >= 64 (best point; both sides measured back to back).
        assert metrics["gate_speedup"] >= MIN_BATCH_SPEEDUP


def test_perf_trajectory_written(tmp_path):
    entry = run_all(quick=True)
    target = tmp_path / "BENCH_PERF.json"
    document = write_report(entry, path=target)
    assert target.exists()
    on_disk = json.loads(target.read_text(encoding="utf-8"))
    assert on_disk["schema"] == 1
    assert on_disk["latest"]["broker_fanout"]["points"]
    assert on_disk["latest"]["docstore_query"]["conjunctive"]
    assert on_disk["latest"]["end_to_end_ingest"]["records_ingested"] > 0
    assert document["history"][-1] is entry
    # Appending again grows the history and replaces ``latest``.
    second = run_all(quick=True)
    document = write_report(second, path=target)
    assert len(document["history"]) == 2
