"""Ablation — MQTT push vs HTTP polling for trigger delivery.

The paper's §4 design argument: "We use MQTT over HTTP protocols due to
the fact that MQTT is based on the push paradigm, thus, unlike
HTTP-based solutions, does not require continuous polling from the
mobile side, resulting in a lower battery consumption."  This ablation
measures both designs under an identical trigger workload.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.common import Granularity, ModalityType, StreamMode
from repro.metrics import EnergyMeter
from repro.scenarios.testbed import SenSocialTestbed

WINDOW_S = 20 * 60.0
ACTIONS = 2
#: A realistic HTTP poll: headers both ways, every 30 s.
POLL_PERIOD_S = 30.0
POLL_REQUEST_BYTES = 180
POLL_RESPONSE_BYTES = 160


def measure(transport: str) -> float:
    """Radio µAh for one 20-minute window under the given transport."""
    testbed = SenSocialTestbed(seed=41, location_update_period_s=None)
    node = testbed.add_user("alice", "Paris")
    node.manager.create_stream(ModalityType.WIFI, Granularity.RAW,
                               mode=StreamMode.SOCIAL_EVENT)
    if transport == "poll":
        # An HTTP-polling client would keep asking the server for
        # pending triggers; model the recurring request/response pair.
        def poll():
            node.phone.send(testbed.server.address, "http-poll",
                            {"device": node.phone.device_id},
                            size=POLL_REQUEST_BYTES)
            node.phone.radio.account_rx(POLL_RESPONSE_BYTES)

        testbed.world.scheduler.every(POLL_PERIOD_S, poll,
                                      delay=POLL_PERIOD_S)
    meter = EnergyMeter(testbed.world, node.phone.battery).start()
    testbed.workload.burst("alice", count=ACTIONS, interval=300.0)
    testbed.run(WINDOW_S)
    meter.stop()
    from repro.device.battery import EnergyCategory
    radio = (meter.category_mah(EnergyCategory.TRANSMISSION)
             + meter.category_mah(EnergyCategory.RECEPTION))
    return radio * 1000.0  # µAh


def test_push_vs_poll_radio_energy(benchmark, report):
    results = run_once(benchmark, lambda: {
        "push (MQTT)": measure("push"),
        "poll (HTTP, 30 s)": measure("poll"),
    })
    push, poll = results["push (MQTT)"], results["poll (HTTP, 30 s)"]
    report(
        "Ablation: trigger transport radio energy per 20-min window [µAh]",
        ["transport", "radio energy"],
        [[name, f"{value:.1f}"] for name, value in results.items()],
    )
    # The design claim: push costs meaningfully less than polling.
    assert push < poll, (push, poll)
    assert poll > 1.5 * push, f"poll/push ratio only {poll / push:.2f}"
