"""Table 1 — SenSocial source code details.

Paper: the mobile middleware is substantially larger than the server
component (77 Java files / 2635 lines vs 46 files + 2 PHP scripts /
1185 lines).  We count our own middleware with the from-scratch CLOC
tool and check the same shape: the mobile half dominates.
"""

from __future__ import annotations

from pathlib import Path

from benchmarks.conftest import run_once
from repro.metrics import count_tree

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: The mobile middleware: the client core plus the client-only layers
#: it is shipped with (sensing adapter, classifiers).
MOBILE_PACKAGES = ["core/mobile", "sensing", "classify"]
#: The server component: server core plus the OSN plug-ins (the
#: paper's server-side PHP scripts).
SERVER_PACKAGES = ["core/server", "plugins"]

PAPER = {"mobile_loc": 2635, "server_loc": 1185,
         "mobile_files": 77, "server_files": 48}


def count_packages(packages: list[str]):
    total = None
    for package in packages:
        counted = count_tree(SRC / package)
        total = counted if total is None else total + counted
    return total


def test_table1_source_code_details(benchmark, report):
    result = run_once(benchmark, lambda: {
        "mobile": count_packages(MOBILE_PACKAGES),
        "server": count_packages(SERVER_PACKAGES),
    })
    mobile, server = result["mobile"], result["server"]
    report(
        "Table 1: source code details (paper-vs-measured)",
        ["counter", "paper (Java)", "measured (Python)"],
        [
            ["mobile middleware files", PAPER["mobile_files"], mobile.files],
            ["server component files", PAPER["server_files"], server.files],
            ["mobile middleware LOC", PAPER["mobile_loc"], mobile.code_lines],
            ["server component LOC", PAPER["server_loc"], server.code_lines],
        ],
    )
    # Shape: the mobile half is the bigger piece of the middleware.
    assert mobile.code_lines > server.code_lines
    assert mobile.files > server.files
    # Sanity: both halves are real implementations, not stubs.
    assert mobile.code_lines > 800
    assert server.code_lines > 400
