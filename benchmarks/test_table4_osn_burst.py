"""Table 4 — battery drain under a burst of OSN actions.

Paper (§5.5): 1–7 actions inside a 20-minute window, each remotely
triggering one-off sensing of all five modalities; charge grows nearly
linearly (51.7 → 324.3 µAh, ~45.4 µAh per action), so scalability is
not limited by the number of OSN actions.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.common import (
    Condition,
    Filter,
    Granularity,
    ModalityType,
    ModalityValue,
    Operator,
)
from repro.metrics import EnergyMeter
from repro.scenarios.testbed import SenSocialTestbed

PAPER_UAH = {1: 51.7, 2: 97.1, 3: 142.5, 4: 187.8, 5: 233.2,
             6: 278.5, 7: 324.3}

WINDOW_S = 20 * 60.0
#: Each trigger takes ~120 s to complete (§5.5), bounding the window
#: at seven actions; we space them accordingly.
ACTION_SPACING_S = 150.0

MODALITIES = [ModalityType.ACCELEROMETER, ModalityType.MICROPHONE,
              ModalityType.LOCATION, ModalityType.WIFI,
              ModalityType.BLUETOOTH]


def measure_burst(action_count: int) -> float:
    """Battery µAh consumed in one 20-minute window with n actions."""
    testbed = SenSocialTestbed(seed=31, location_update_period_s=None)
    node = testbed.add_user("alice", "Paris")
    on_action = Filter([Condition(ModalityType.FACEBOOK_ACTIVITY,
                                  Operator.EQUALS, ModalityValue.ACTIVE)])
    for modality in MODALITIES:
        node.manager.create_stream(modality, Granularity.RAW,
                                   stream_filter=on_action,
                                   send_to_server=True)
    meter = EnergyMeter(testbed.world, node.phone.battery).start()
    testbed.workload.burst("alice", count=action_count,
                           interval=ACTION_SPACING_S)
    testbed.run(WINDOW_S)
    return meter.stop() * 1000.0  # mAh → µAh


def run_table4():
    return {count: measure_burst(count) for count in range(1, 8)}


def test_table4_osn_action_burst(benchmark, report):
    measured = run_once(benchmark, run_table4)
    report(
        "Table 4: charge per 20-min window vs OSN actions [µAh]",
        ["actions", "paper", "measured"],
        [[count, PAPER_UAH[count], f"{measured[count]:.1f}"]
         for count in range(1, 8)],
    )
    # Shape 1: consumption increases with every extra action.
    for count in range(2, 8):
        assert measured[count] > measured[count - 1]
    # Shape 2: growth is nearly linear — the marginal cost per action
    # stays within ±25 % of its mean (the paper's scalability claim).
    increments = [measured[count] - measured[count - 1]
                  for count in range(2, 8)]
    mean_increment = sum(increments) / len(increments)
    for increment in increments:
        assert abs(increment - mean_increment) < 0.25 * mean_increment
    # Anchor: the marginal cost lands in the paper's regime (~45 µAh).
    assert 25.0 < mean_increment < 65.0, f"{mean_increment:.1f} µAh/action"
    # Anchor: absolute totals within 35 % of Table 4.
    for count in range(1, 8):
        assert abs(measured[count] - PAPER_UAH[count]) \
            < 0.35 * PAPER_UAH[count], count
