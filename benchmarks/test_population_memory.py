"""Memory gate: resident bytes per device stay bounded at scale.

The scale wall the population substrate breaks is a *memory* wall:
eagerly materialized devices cost kilobytes each (objects, Mersenne
RNGs, per-device periodic tasks), so 100k devices used to mean
hundreds of megabytes before the first event fired.  The streaming
substrate promises:

* cold devices cost a fixed ~49 bytes each in the columnar
  hibernation store (asserted exactly — it's arithmetic, not timing);
* resident (hot) state is bounded by ``active_cap``, not population,
  so total allocation grows *sublinearly*: a 10x population must cost
  far less than 10x the traced memory.

Measured with ``tracemalloc`` (Python-level allocations, deterministic
across machines — no RSS noise) over compressed ``city-day`` runs.
"""

from __future__ import annotations

import tracemalloc

from repro.scenarios import ScenarioEngine, get_scenario

#: Population sizes compared by the sublinearity gate.
SMALL, LARGE = 10_000, 100_000

#: Cap on resident devices — identical at both sizes, so any
#: population-proportional growth comes from the columnar store alone.
ACTIVE_CAP = 2048

#: Exact cold storage cost: 3x8B (rng state, lon, lat) + 1B flags
#: + 3x8B counters per device.
COLD_BYTES_PER_DEVICE = 49

#: A 10x population may cost at most this factor in traced peak
#: memory.  Two linear-but-tiny terms remain — the 49 B/device
#: columnar store and each admitted device's single pending
#: EventHandle (~150 B) — diluted by the cap-bounded hot state, so the
#: measured ratio sits near 6.5x; at 8x a kilobytes-per-device object
#: leak has crept back in (eager measures ~10x with a far larger
#: absolute peak).
MAX_PEAK_GROWTH = 8.0

#: Ceiling on traced peak bytes per device at the large size. The
#: measured value is ~60-120 B/device (store + bounded actives +
#: pending events); 400 B/device means something resident scales with
#: the population again.
MAX_PEAK_BYTES_PER_DEVICE = 400.0


def _traced_run(devices: int) -> tuple[int, dict]:
    """Peak tracemalloc bytes over a compressed city-day run."""
    engine = ScenarioEngine(get_scenario("city-day"), devices, seed=0,
                            scheduler="wheel", events_per_device=1.0,
                            active_cap=ACTIVE_CAP)
    tracemalloc.start()
    try:
        report = engine.run()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert engine.verify() == []
    return peak, report


def test_population_memory_is_sublinear():
    small_peak, small_report = _traced_run(SMALL)
    large_peak, large_report = _traced_run(LARGE)

    # Cold devices cost exactly their columnar scalars.
    assert small_report["store_bytes_per_device"] == COLD_BYTES_PER_DEVICE
    assert large_report["store_bytes_per_device"] == COLD_BYTES_PER_DEVICE

    # Hot state is bounded by the cap at both sizes.
    assert small_report["peak_active"] <= ACTIVE_CAP
    assert large_report["peak_active"] <= ACTIVE_CAP

    # The 10x population grows traced peak memory far less than 10x.
    growth = large_peak / small_peak
    assert growth <= MAX_PEAK_GROWTH, (
        f"peak memory grew x{growth:.2f} for a x{LARGE // SMALL} "
        f"population ({small_peak:,} -> {large_peak:,} B)")

    per_device = large_peak / LARGE
    assert per_device <= MAX_PEAK_BYTES_PER_DEVICE, (
        f"{per_device:.0f} traced B/device at {LARGE:,} devices")

    print(f"\npopulation memory: {SMALL:,} devices -> {small_peak:,} B peak, "
          f"{LARGE:,} devices -> {large_peak:,} B peak "
          f"(x{growth:.2f} growth, {per_device:.1f} B/device)")


def test_eager_substrate_costs_objects():
    """The baseline the streaming substrate exists to beat: eager
    materialization allocates per-device objects, an order of magnitude
    more traced memory per device than the columnar store."""
    devices = 5_000
    tracemalloc.start()
    try:
        engine = ScenarioEngine(get_scenario("city-day"), devices, seed=0,
                                substrate="eager", events_per_device=1.0)
        engine.run()
        _, eager_peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    tracemalloc.start()
    try:
        engine = ScenarioEngine(get_scenario("city-day"), devices, seed=0,
                                substrate="streaming", events_per_device=1.0,
                                active_cap=256)
        engine.run()
        _, streaming_peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    assert streaming_peak < eager_peak, (
        f"streaming ({streaming_peak:,} B) should undercut eager "
        f"({eager_peak:,} B)")
