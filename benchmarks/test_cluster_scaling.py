"""Scalability — sharded server cluster (ISSUE 5 acceptance bench).

Not a paper table: the paper's deployment runs one server process
(§5.5 measures its database, not its horizontal scaling).  This bench
pins the two properties the cluster refactor exists for:

1. **work scaling** — at a fixed device population, the hottest
   shard's deterministic ingest+filter work counter drops by at least
   3x going from 1 to 4 shards (consistent-hash placement actually
   spreads the load);
2. **zero acknowledged loss** — a 4-shard run that crashes a shard
   mid-run, fails it out of the ring and replays its write-ahead
   journal ends with every acknowledged record either ingested or
   still queued on a device: nothing acknowledged dies with a shard.

Work counters (records ingested + replayed duplicates + OSN actions
per shard) are deterministic across machines, so the 3x floor is a
hard CI assertion while wall-clock figures stay informational.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.common import Granularity, ModalityType
from repro.faults import ChaosController, FaultPlan
from repro.perf.harness import bench_elasticity, bench_shard_scaling
from repro.scenarios.testbed import SenSocialTestbed

USERS = 16
SIM_MINUTES = 10.0
CRASH_AT_S = 240.0
REBALANCE_AFTER_S = 60.0
SCALING_FLOOR = 3.0


def crash_run() -> dict:
    """4-shard durable run with a mid-run shard crash + rebalance."""
    testbed = SenSocialTestbed(seed=11, shards=4, durability=True)
    cities = ["Paris", "Bordeaux", "London"]
    for index in range(USERS):
        testbed.add_user(f"user{index:02d}",
                         home_city=cities[index % len(cities)])
    for user_id in sorted(testbed.nodes):
        testbed.server.create_stream(user_id, ModalityType.ACCELEROMETER,
                                     Granularity.CLASSIFIED)
    controller = ChaosController(testbed)
    controller.apply(FaultPlan("shard-crash").shard_crash(
        at=CRASH_AT_S, shard=0, rebalance_after=REBALANCE_AFTER_S))
    testbed.run(SIM_MINUTES * 60.0)
    testbed.run(120.0)  # quiet tail: retries land, outboxes drain
    report = controller.report()
    cluster = testbed.server.cluster_report()
    return {
        "records_lost": report.records_lost,
        "records_ingested": report.records_ingested,
        "duplicates": report.duplicates_dropped,
        "rebalances": cluster["rebalances"],
        "active_shards": cluster["active"],
        "per_user_records": {
            user_id: len(testbed.server.database.records_of(user_id))
            for user_id in sorted(testbed.nodes)},
    }


class TestShardScaling:
    def test_work_per_shard_drops_3x_from_1_to_4_shards(self, benchmark,
                                                        report):
        result = run_once(benchmark, lambda: bench_shard_scaling(
            shard_counts=(1, 4), users=USERS, sim_minutes=SIM_MINUTES))
        rows = [[point["shards"], point["users"], point["total_work"],
                 point["max_shard_work"]]
                for point in result["points"]]
        report("cluster scaling — hottest-shard work, fixed devices",
               ["shards", "users", "total work", "max shard work"], rows)
        one, four = result["points"]
        # Same deployment, same total demand on both cluster sizes.
        assert four["records_ingested"] == one["records_ingested"] > 0
        assert four["total_work"] == one["total_work"]
        assert result["scaling_factor"] >= SCALING_FLOOR

    def test_shard_crash_loses_zero_acknowledged_records(self, benchmark,
                                                         report):
        result = run_once(benchmark, crash_run)
        report("cluster crash — delivery across shard failure",
               ["metric", "value"],
               [["records ingested", result["records_ingested"]],
                ["duplicates absorbed", result["duplicates"]],
                ["records lost", result["records_lost"]],
                ["rebalances", result["rebalances"]],
                ["active shards", result["active_shards"]]])
        assert result["rebalances"] == 1
        assert result["active_shards"] == 3
        assert result["records_lost"] == 0
        # Every user's history kept growing across the failure: the
        # migrated streams and devices all landed somewhere live.
        assert all(count > 0 for count in result["per_user_records"].values())
        assert result["records_ingested"] > 0


class TestElasticity:
    def test_snapshot_bootstrap_beats_replay(self, benchmark, report):
        """ISSUE 6 acceptance: a mid-run scale-out with snapshot
        bootstrap does measurably less durability work than retained
        replay — zero journal appends and a single checkpoint instead
        of one append per migrated document — on deterministic
        counters, with both strategies losing nothing."""
        result = run_once(benchmark, lambda: bench_elasticity(
            users=USERS, sim_minutes=SIM_MINUTES))
        rows = [[run["strategy"], run["moved_devices"], run["documents"],
                 run["journal_appends"], run["checkpoints"],
                 run["records_lost"]]
                for run in (result["snapshot"], result["replay"])]
        report("cluster elasticity — scale-out bootstrap cost",
               ["strategy", "moved devices", "documents",
                "journal appends", "checkpoints", "records lost"], rows)
        snapshot, replay = result["snapshot"], result["replay"]
        # Determinism: both runs migrate the exact same slice.
        assert snapshot["moved_devices"] == replay["moved_devices"] > 0
        assert snapshot["documents"] == replay["documents"] > 0
        # Snapshot skips the journal entirely; replay pays per document.
        assert snapshot["journal_appends"] == 0
        assert snapshot["checkpoints"] == 1
        assert replay["journal_appends"] == replay["documents"]
        assert result["appends_saved"] == replay["documents"]
        # Neither path loses acked records or drifts the ring.
        for run in (snapshot, replay):
            assert run["records_lost"] == 0
            assert run["consistency_problems"] == 0
            assert run["records_ingested"] > 0
