"""Table 3 — time delay in receiving OSN notifications.

Paper (§5.4): over 50 Facebook actions, OSN→server takes 46.466 s
(σ 2.768) and OSN→mobile 55.388 s (σ 2.495); the ~9 s difference is
the middleware's own processing + MQTT push, and the bulk is Facebook's
notification latency.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.common import Granularity, ModalityType, StreamMode
from repro.metrics import LatencyStats
from repro.scenarios.testbed import SenSocialTestbed

PAPER = {
    "osn_to_server": (46.466, 2.768),
    "osn_to_mobile": (55.388, 2.495),
}

ACTIONS = 50


def run_table3():
    testbed = SenSocialTestbed(seed=9, location_update_period_s=None)
    node = testbed.add_user("alice", "Paris")
    node.manager.create_stream(ModalityType.WIFI, Granularity.RAW,
                               mode=StreamMode.SOCIAL_EVENT)
    for _ in range(ACTIONS):
        testbed.facebook.perform_action("alice", "post", content="ping")
        testbed.run(400.0)  # let the full trigger pipeline drain
    return (LatencyStats.of(testbed.server.action_latencies()),
            LatencyStats.of(node.manager.trigger_latencies))


def test_table3_notification_delay(benchmark, report):
    server_stats, mobile_stats = run_once(benchmark, run_table3)
    report(
        "Table 3: OSN notification delay [s] (paper-vs-measured)",
        ["notification type", "paper mean", "paper std",
         "measured mean", "measured std", "n"],
        [
            ["OSN to Server", *PAPER["osn_to_server"],
             f"{server_stats.mean:.3f}", f"{server_stats.std:.3f}",
             server_stats.count],
            ["OSN to Mobile", *PAPER["osn_to_mobile"],
             f"{mobile_stats.mean:.3f}", f"{mobile_stats.std:.3f}",
             mobile_stats.count],
        ],
    )
    assert server_stats.count == ACTIONS
    assert mobile_stats.count == ACTIONS
    # Shape 1: the mobile hears strictly after the server, by a small
    # middleware overhead (the paper's ~9 s), not by another OSN delay.
    overhead = mobile_stats.mean - server_stats.mean
    assert 4.0 < overhead < 15.0, f"middleware overhead {overhead:.1f}s"
    # Shape 2: the OSN notification delay dominates both paths.
    assert server_stats.mean > 3 * overhead
    # Anchors: within 15 % of the paper's means.
    assert abs(server_stats.mean - PAPER["osn_to_server"][0]) \
        < 0.15 * PAPER["osn_to_server"][0]
    assert abs(mobile_stats.mean - PAPER["osn_to_mobile"][0]) \
        < 0.15 * PAPER["osn_to_mobile"][0]
    # The spread is a few seconds, as measured.
    assert 0.5 < server_stats.std < 6.0
