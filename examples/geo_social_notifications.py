"""The Figure 2 scenario: geo-aware social notifications.

Five users — A and B live in Paris; C, D and E in Bordeaux.  A is OSN
friends with C and D.  When C travels to Paris, the server notices one
of A's friends entering A's home town and notifies A.

Run with:  python examples/geo_social_notifications.py
"""

from repro import Granularity, ModalityType, MulticastQuery
from repro.scenarios import build_paris_scenario


def main() -> None:
    testbed = build_paris_scenario(seed=2)
    print("deployed users:", ", ".join(sorted(testbed.nodes)))
    print("A's OSN friends:", testbed.server.database.friends_of("A"))

    # Let periodic location updates reach the server.
    testbed.run(400.0)

    # A multicast stream over A's friends' classified locations.
    friends_locations = testbed.server.create_multicast_stream(
        ModalityType.LOCATION, Granularity.CLASSIFIED,
        MulticastQuery(friends_of="A"), name="friends-of-A")
    print("multicast members:", friends_locations.members())

    home_town = "Paris"
    already_notified = set()

    def on_location(record):
        # Notify once per arrival: a friend continuously in town stays
        # quiet until they leave and come back.
        if record.value == home_town:
            if record.user_id not in already_notified:
                already_notified.add(record.user_id)
                print(f"[{record.timestamp:8.1f}s] NOTIFY A: friend "
                      f"{record.user_id} arrived in {home_town}!")
        else:
            already_notified.discard(record.user_id)

    friends_locations.add_listener(on_location)

    print("-- one quiet hour; everyone stays home --")
    testbed.run(3600.0)

    print("-- C travels from Bordeaux to Paris (2 h) --")
    testbed.node("C").mobility.travel_to("Paris", duration_s=2 * 3600.0)
    testbed.run(3 * 3600.0)
    place = testbed.server.database.location_of("C")["place"]
    print(f"C's server-known place is now: {place}")


if __name__ == "__main__":
    main()
