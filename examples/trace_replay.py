"""Workload traces: record one deployment's OSN activity, replay it
against another — the workflow for comparing designs on identical
inputs (exactly what the ablation benchmarks need).

Run with:  python examples/trace_replay.py
"""

from repro import SenSocialTestbed
from repro.analysis import CoverageReport
from repro.core.common import (
    Condition,
    Filter,
    Granularity,
    ModalityType,
    ModalityValue,
    Operator,
)
from repro.osn.trace import ActionTrace, TraceRecorder, replay_trace

USERS = ["alice", "bob", "carol"]


def deploy(testbed: SenSocialTestbed) -> CoverageReport:
    """Deploy the users with posts-coupled accelerometer streams."""
    on_post = Filter([Condition(ModalityType.FACEBOOK_ACTIVITY,
                                Operator.EQUALS, ModalityValue.ACTIVE)])
    for user_id in USERS:
        node = testbed.add_user(user_id, home_city="Paris")
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   stream_filter=on_post,
                                   send_to_server=True)
    return CoverageReport(testbed.server)


def main() -> None:
    # --- arm 1: record a live Poisson workload ------------------------
    first = SenSocialTestbed(seed=14)
    coverage_first = deploy(first)
    recorder = TraceRecorder(first.facebook)
    first.workload.actions_per_hour = 8.0
    first.workload.start_all()
    first.run(3600.0)
    recorder.detach()
    trace = recorder.trace
    print(f"recorded {len(trace)} actions by {trace.user_ids()}")
    print(f"arm 1 coupled records: {coverage_first.total_records()}")

    # Traces serialise to JSON for storage alongside experiment data.
    wire = trace.to_json()
    restored = ActionTrace.from_json(wire)

    # --- arm 2: a different deployment fed the identical workload -----
    second = SenSocialTestbed(seed=999)  # different seed on purpose
    coverage_second = deploy(second)
    replay_trace(second.world, second.facebook, restored)
    second.run(3600.0 + 300.0)
    print(f"arm 2 coupled records: {coverage_second.total_records()}")

    print("\nper-user coverage (arm 2):")
    for user_id, records, span in coverage_second.summary_rows():
        user = coverage_second.coverage_of(user_id)
        still = user.label_fraction("accelerometer", "still")
        print(f"  {user_id:6s} records={records:3d} span={span:7.1f}s "
              f"still-fraction={still:.2f}")


if __name__ == "__main__":
    main()
