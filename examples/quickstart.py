"""Quickstart: one user, two streams, one OSN-coupled trigger.

Run with:  python examples/quickstart.py
"""

from repro import (
    Condition,
    Filter,
    Granularity,
    ModalityType,
    ModalityValue,
    Operator,
    SenSocialTestbed,
)


def main() -> None:
    # A testbed wires the whole deployment: simulated network, MQTT
    # broker, SenSocial server, Facebook/Twitter platforms + plug-ins.
    testbed = SenSocialTestbed(seed=1)
    alice = testbed.add_user("alice", home_city="Paris")

    # --- the paper's client API (Figure 7) ----------------------------
    manager = alice.manager
    user = manager.get_user(manager.get_user_id())
    device = user.get_device()

    # A continuous classified activity stream: one label per minute.
    activity = device.get_stream(ModalityType.ACCELEROMETER,
                                 Granularity.CLASSIFIED)
    activity.register_listener(lambda record: print(
        f"[{record.timestamp:7.1f}s] activity = {record.value}"))

    # A social-event-based stream: sampled only when alice acts on
    # Facebook, and coupled with the action's content.
    on_facebook = Filter([Condition(ModalityType.FACEBOOK_ACTIVITY,
                                    Operator.EQUALS, ModalityValue.ACTIVE)])
    social = device.get_stream(ModalityType.LOCATION, Granularity.RAW)
    social.set_filter(on_facebook)
    social.register_listener(lambda record: print(
        f"[{record.timestamp:7.1f}s] GPS ({record.value['lon']:.4f}, "
        f"{record.value['lat']:.4f}) coupled with post: "
        f"{record.osn_action['content']!r}"))

    print("-- five minutes of continuous sensing --")
    testbed.run(5 * 60.0)

    print("-- alice posts on Facebook (from any device) --")
    testbed.facebook.perform_action("alice", "post",
                                    content="loving the football derby")
    testbed.run(3 * 60.0)

    consumed = alice.phone.battery.consumed_mah
    print(f"-- done; battery consumed: {consumed * 1000:.1f} µAh --")


if __name__ == "__main__":
    main()
