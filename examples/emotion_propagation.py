"""Emotion propagation: the introduction's social-science example.

"a social science research application that captures emotions through
the sentiment analysis of OSN posts, senses the physical context as the
relevant posts are made, and maps the data to the social network in
order to ... analyze large-scale emotion propagation."

Builds a 30-user Watts–Strogatz OSN, runs a posting workload whose
mood, coupled context and graph position are collected through
SenSocial's :class:`repro.analysis.EmotionStudy`, and reports per-user
mood vs neighbourhood mood plus the mood-by-context crosstab.

Run with:  python examples/emotion_propagation.py
"""

from repro import (
    Condition,
    Filter,
    ModalityType,
    ModalityValue,
    Operator,
    SenSocialTestbed,
)
from repro.analysis import EmotionStudy
from repro.osn.graph import SocialGraph

USERS = 30
CITIES = ["Paris", "Bordeaux", "London", "Lyon"]


def main() -> None:
    testbed = SenSocialTestbed(seed=12)
    user_ids = [f"u{i:02d}" for i in range(USERS)]
    for index, user_id in enumerate(user_ids):
        testbed.add_user(user_id, home_city=CITIES[index % len(CITIES)])

    # A small-world friendship graph, mirrored into the server DB.
    graph = SocialGraph.watts_strogatz(user_ids, neighbours=4,
                                       rewire_probability=0.2,
                                       rng=testbed.world.rng("osn-graph"))
    for user_id in user_ids:
        for friend in graph.friends(user_id):
            if user_id < friend:
                testbed.befriend(user_id, friend)

    # Each user's phone samples classified activity when they post.
    on_post = Filter([Condition(ModalityType.FACEBOOK_ACTIVITY,
                                Operator.EQUALS, ModalityValue.ACTIVE)])
    for user_id in user_ids:
        node = testbed.node(user_id)
        node.manager.create_stream(
            ModalityType.ACCELEROMETER, "classified",
            stream_filter=on_post, send_to_server=True)

    # Server side: the analysis layer collects everything.
    study = EmotionStudy(testbed.server)

    print(f"-- {USERS} users, {graph.friendship_count()} friendships; "
          f"simulating 2 hours --")
    testbed.workload.actions_per_hour = 4.0
    testbed.workload.start_all()
    testbed.run(2 * 3600.0)

    print(f"\n{'user':6s} {'posts':>5s} {'mood':>6s} {'nbhd mood':>9s}")
    for summary in study.summaries():
        print(f"{summary.user_id:6s} {summary.posts:5d} "
              f"{summary.mean_score:6.2f} {summary.neighbourhood_score:9.2f}")

    print("\nmood by coupled physical context:")
    for label, mood in study.mood_by_context().items():
        print(f"  while {label:8s}: {mood:+.2f}")

    print(f"\nmood assortativity over the OSN graph: "
          f"{study.mood_assortativity():+.3f}")


if __name__ == "__main__":
    main()
