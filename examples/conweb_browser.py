"""ConWeb (§6.2): a Web page that adapts to context and OSN mood.

The browser auto-refreshes every T seconds; the server regenerates the
page from the user's momentary physical context (delivered by SenSocial
streams) and their latest OSN post.

Run with:  python examples/conweb_browser.py
"""

from repro import SenSocialTestbed
from repro.apps.conweb import ConWebBrowser, ConWebServer, ConWebServerApp
from repro.device import ActivityState, AudioState


def show(page) -> None:
    print(f"  [{page.generated_at:7.1f}s] layout={page.layout:8s} "
          f"contrast={page.contrast:7s} suggestions={page.suggestions}")


def main() -> None:
    testbed = SenSocialTestbed(seed=8)
    node = testbed.add_user("alice", home_city="Paris")

    web = ConWebServer(testbed.world, testbed.network)
    ConWebServerApp(testbed.server, web)
    browser = ConWebBrowser(node.manager, refresh_period_s=60.0).start()
    browser.on_page(show)

    # Pin the ground truth so the adaptation stages are visible.
    node.mobility.stop()

    print("-- sitting quietly at home --")
    node.phone.environment.activity = ActivityState.STILL
    node.phone.environment.audio = AudioState.SILENT
    browser.open("news.example/front-page")
    testbed.run(150.0)

    print("-- out for a run on a busy street --")
    node.phone.environment.activity = ActivityState.RUNNING
    node.phone.environment.audio = AudioState.NOISY
    testbed.run(180.0)

    print("-- posts about a disappointing dinner --")
    testbed.facebook.perform_action(
        "alice", "post", content="so disappointed by the food dinner")
    testbed.run(180.0)

    print(f"\nheadline: {browser.current_page.headline}")
    print(f"pages served: {web.requests_served}")
    browser.stop()


if __name__ == "__main__":
    main()
