"""Facebook Sensor Map (§6.1): OSN actions on a map with their context.

Three users post, comment and like over a simulated hour while moving
around their cities; every action is coupled with the physical context
sampled as it happened and joined into map markers on the server.

Run with:  python examples/facebook_sensor_map.py
"""

from repro import SenSocialTestbed
from repro.apps.sensor_map import FacebookSensorMapServer, FacebookSensorMapService


def main() -> None:
    testbed = SenSocialTestbed(seed=6)
    map_server = FacebookSensorMapServer(testbed.server)

    users = {"alice": "Paris", "bob": "Bordeaux", "carol": "London"}
    for user_id, city in users.items():
        node = testbed.add_user(user_id, home_city=city)
        FacebookSensorMapService(node.manager)
    testbed.befriend("alice", "bob")
    testbed.befriend("alice", "carol")

    # A Poisson OSN workload: roughly 6 actions/hour per user.
    testbed.workload.actions_per_hour = 6.0
    testbed.workload.start_all()

    print("-- simulating one hour of OSN activity + sensing --")
    testbed.run(3600.0)

    print(f"\ncaptured {len(map_server.markers())} markers "
          f"({map_server.complete_marker_count()} with full context):\n")
    for marker in map_server.markers():
        position = (f"({marker.lon:7.3f}, {marker.lat:7.3f})"
                    if marker.lon is not None else "(pending...)      ")
        print(f"  {position} {marker.user_id:6s} {marker.action_type:8s} "
              f"activity={marker.activity or '?':8s} "
              f"audio={marker.audio or '?':11s} {marker.content[:34]!r}")

    print("\n-- alice's map (her circle: herself + OSN friends) --")
    for marker in map_server.markers_of_circle("alice"):
        print(f"  {marker.user_id}: {marker.action_type} "
              f"while {marker.activity or '?'}")


if __name__ == "__main__":
    main()
