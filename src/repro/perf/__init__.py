"""Hot-path performance harness (see ``docs/PERFORMANCE.md``)."""

from repro.perf.harness import (
    BENCH_PERF_FILENAME,
    bench_batch_ingest,
    bench_broker_fanout,
    bench_docstore_query,
    bench_end_to_end_ingest,
    bench_scenario,
    format_scenario_summary,
    run_all,
    write_report,
)

__all__ = [
    "BENCH_PERF_FILENAME",
    "bench_batch_ingest",
    "bench_broker_fanout",
    "bench_docstore_query",
    "bench_end_to_end_ingest",
    "bench_scenario",
    "format_scenario_summary",
    "run_all",
    "write_report",
]
