"""Microbenchmarks for the three hot paths, plus the perf trajectory.

The paper's evaluation (§5.5, Tables 3/4) measures how the middleware
degrades under load and prescribes indices for the data path; the
ROADMAP's north star is "as fast as the hardware allows".  This module
is the repo's proof layer for both: three microbenchmarks — broker
fan-out, docstore querying, end-to-end ingest on the virtual clock —
that report *algorithmic* work counters (routing checks per publish,
candidate documents examined per query) alongside wall-clock ops/sec,
and a persistent trajectory file (``BENCH_PERF.json``) so every later
change is measured against the history.

Work counters, not just timings, are the primary metrics: they are
deterministic across machines, so CI can assert on them with tight
bounds while wall-clock numbers stay informational.

Run via ``repro perf`` or ``pytest benchmarks/test_hotpath_perf.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

BENCH_PERF_FILENAME = "BENCH_PERF.json"

#: Constant number of wildcard subscribers mixed into the fan-out
#: benchmark (they match every publish; exact subscribers don't).
_WILDCARD_SUBSCRIBERS = 4

#: Wall-clock samples per timed point (the minimum is reported): work
#: counters are exact either way, but one noisy scheduler interruption
#: used to make mid-size points report slower than larger ones.
_WALL_SAMPLES = 3


def bench_broker_fanout(subscriber_counts: tuple[int, ...] = (100, 400, 1600),
                        publishes: int = 200, seed: int = 41) -> dict:
    """Routing work per PUBLISH as the subscriber population grows.

    Each of N clients subscribes to its own exact topic; a constant
    handful subscribe through ``+``/``#`` wildcards.  Every publish
    targets one user's topic, so the *match set* stays constant while N
    grows — a linear-scan router does O(N) work per publish anyway,
    which is exactly what the trie removes.  ``checks_per_publish`` is
    the trie's own work counter (nodes visited + subscriber entries
    considered); ``scan_equivalent`` is what the old implementation
    examined (every subscription).
    """
    from repro.mqtt import packets
    from repro.mqtt.broker import MqttBroker
    from repro.net.network import Network
    from repro.simkit.world import World

    points = []
    for count in subscriber_counts:
        world = World(seed=seed)
        network = Network(world)
        broker = MqttBroker(world, network, address="perf-broker")
        for i in range(count):
            address = network.register(f"perf-c{i}", lambda message: None)
            broker._on_connect(address, packets.Connect(client_id=f"c{i}"))
            broker._on_subscribe(address, packets.Subscribe(
                packet_id=1, topic_filter=f"sensocial/data/u{i}/accel"))
            if i < _WILDCARD_SUBSCRIBERS:
                broker._on_subscribe(address, packets.Subscribe(
                    packet_id=2, topic_filter="sensocial/data/+/accel"))
        subscriptions = count + _WILDCARD_SUBSCRIBERS
        packet = packets.Publish(topic="sensocial/data/u0/accel",
                                 payload={"v": 1}, qos=0)
        # Warm-up pass: the first routes pay one-off dict allocations
        # and cold caches, and a single publish was not enough — the
        # mid-size point used to report *lower* publish/s than both its
        # neighbours purely from allocator/branch-cache noise.
        for _ in range(max(1, publishes // 4)):
            broker.route(packet)
        checks_before = broker.routing_checks
        delivered = 0
        elapsed = None
        # Best-of-3 wall-clock: work counters are deterministic (summed
        # over every sample), timing keeps the least-interrupted run.
        for _ in range(_WALL_SAMPLES):
            started = time.perf_counter()
            delivered = 0
            for _ in range(publishes):
                delivered += broker.route(packet)
            sample = time.perf_counter() - started
            elapsed = sample if elapsed is None else min(elapsed, sample)
        checks = (broker.routing_checks - checks_before) \
            / (publishes * _WALL_SAMPLES)
        points.append({
            "subscribers": count,
            "subscriptions": subscriptions,
            "matches_per_publish": delivered / publishes,
            "checks_per_publish": checks,
            "scan_equivalent": subscriptions,
            "publishes_per_s": publishes / elapsed if elapsed > 0 else None,
        })
    first, last = points[0], points[-1]
    growth = {
        "subscription_growth":
            last["subscriptions"] / first["subscriptions"],
        "checks_growth":
            last["checks_per_publish"] / first["checks_per_publish"],
    }
    return {"points": points, "growth": growth}


def bench_docstore_query(n_docs: int = 2000, rounds: int = 200,
                         seed: int = 42) -> dict:
    """Candidate documents examined per query, indexed vs full scan.

    The workload is the server's own shape: records keyed by user and
    modality, queried conjunctively (``records_of``) and with ``$in``
    over users.  The planner intersects the two hash-index buckets (or
    unions ``$in`` buckets), so examined candidates collapse from
    "every document" to "documents that could match".
    """
    from repro.docstore import DocumentStore
    from repro.docstore import compiler

    modalities = ["accelerometer", "location", "activity", "place"]
    users = max(10, n_docs // 100)
    documents = [
        {"user_id": f"user-{i % users}",
         "modality": modalities[i % len(modalities)],
         "seq": i,
         "value": {"x": i}}
        for i in range(n_docs)
    ]
    unindexed = DocumentStore()["records"]
    unindexed.insert_many(documents)
    indexed = DocumentStore()["records"]
    indexed.create_index("user_id")
    indexed.create_index("modality")
    indexed.insert_many(documents)

    # "place" = modalities[3] co-occurs with user-7 (and user-3) at any
    # population size: document 7 is always user-7/place, document 3
    # always user-3/place — so both queries have matches regardless of
    # how ``users`` and the modality cycle align.
    conjunctive = {"user_id": "user-7", "modality": "place"}
    in_query = {"user_id": {"$in": ["user-3", "user-5", "user-7"]},
                "modality": "place"}

    def measure(collection, query):
        collection.find(query).to_list()  # warm the compiler cache
        before = collection.candidates_examined
        started = time.perf_counter()
        results = 0
        for _ in range(rounds):
            results = len(collection.find(query).to_list())
        elapsed = time.perf_counter() - started
        return {
            "results": results,
            "candidates_per_query":
                (collection.candidates_examined - before) / rounds,
            "queries_per_s": rounds / elapsed if elapsed > 0 else None,
        }

    cache_before = compiler.cache_info()
    metrics = {
        "n_docs": n_docs,
        "conjunctive": {
            "scan": measure(unindexed, conjunctive),
            "indexed": measure(indexed, conjunctive),
        },
        "in_union": {
            "scan": measure(unindexed, in_query),
            "indexed": measure(indexed, in_query),
        },
    }
    cache_after = compiler.cache_info()
    metrics["compiler_cache_hits"] = cache_after["hits"] - cache_before["hits"]
    for group in ("conjunctive", "in_union"):
        scan = metrics[group]["scan"]["candidates_per_query"]
        indexed_c = metrics[group]["indexed"]["candidates_per_query"]
        metrics[group]["candidate_reduction"] = (
            scan / indexed_c if indexed_c else None)
    return metrics


def bench_end_to_end_ingest(users: int = 8, sim_minutes: float = 10.0,
                            seed: int = 43) -> dict:
    """A whole simulated deployment: devices sense, the broker routes,
    the server ingests, filters and stores — wall-clock throughput of
    the full virtual-clock pipeline plus the hot-path work counters."""
    from repro import Granularity, ModalityType, SenSocialTestbed

    testbed = SenSocialTestbed(seed=seed)
    cities = ["Paris", "Bordeaux", "London"]
    for index in range(users):
        node = testbed.add_user(f"user{index}",
                                home_city=cities[index % len(cities)])
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
    sim_seconds = sim_minutes * 60.0
    started = time.perf_counter()
    testbed.run(sim_seconds)
    elapsed = time.perf_counter() - started
    server = testbed.server
    records_collection = server.database.records
    return {
        "users": users,
        "sim_seconds": sim_seconds,
        "wall_seconds": elapsed,
        "sim_speedup": sim_seconds / elapsed if elapsed > 0 else None,
        "records_ingested": server.records_received,
        "records_per_wall_s":
            server.records_received / elapsed if elapsed > 0 else None,
        "broker_publishes": testbed.broker.publishes_received,
        "broker_checks_per_publish": (
            testbed.broker.routing_checks / testbed.broker.publishes_received
            if testbed.broker.publishes_received else None),
        "db_candidates_examined": records_collection.candidates_examined,
        "db_scans": records_collection.scans,
        "db_index_lookups": records_collection.index_lookups,
        "filter_gate_hits": server.filters.gate_cache_hits,
        "filter_gate_evaluations": server.filters.gate_evaluations,
    }


def bench_batch_ingest(batch_sizes: tuple[int, ...] = (1, 16, 64, 256),
                       records: int = 2048, cadence_s: float = 0.025,
                       seed: int = 46) -> dict:
    """Durable ingest throughput vs transport batch size.

    Drives the durable server hot path directly: a bench device emits
    ``records`` identical-rate stream records (one every ``cadence_s``
    virtual seconds — far below the admission watermarks in every
    mode, so nothing is shed and both paths ingest the exact same
    set), either as one ``stream-data`` message per record or as one
    ``stream-batch`` envelope per ``batch`` records, flushed when its
    last member is due.

    ``records_per_wall_s`` (best-of-``_WALL_SAMPLES``) is the headline;
    the *amortization evidence* is deterministic per-record work
    counters — network messages, journal appends, ack envelopes and
    broker trie routings all fall as ``1/batch`` while the ingested
    set stays bit-identical (``tests/test_batch_identity.py`` pins
    identity; this bench and ``benchmarks/test_hotpath_perf.py`` pin
    the speed).  The broker leg publishes the same record stream
    through the subscription trie singleton vs enveloped, since
    batched *messages* also collapse MQTT routing work.
    """
    from repro.core.common.batch import RecordBatch
    from repro.core.server.manager import ServerSenSocialManager
    from repro.durability import ServerDurability
    from repro.mqtt import packets
    from repro.mqtt.broker import MqttBroker
    from repro.net.network import Network
    from repro.simkit.world import World

    def documents_for_run() -> list[dict]:
        return [
            {"stream_id": "bench-s1", "user_id": "bench-user",
             "device_id": "bench-device", "modality": "accelerometer",
             "granularity": "classified", "timestamp": index * cadence_s,
             "value": {"x": float(index)}, "details": {},
             "osn_action": None, "record_id": f"bench-r{index}"}
            for index in range(records)
        ]

    def ingest_run(batch: int) -> dict:
        world = World(seed=seed)
        network = Network(world)
        durability = ServerDurability(world)
        server = ServerSenSocialManager(world, network,
                                        durability=durability)
        acks = {"messages": 0, "records": 0}

        def bench_device(message):
            protocol = message.headers.get("protocol")
            if protocol == "stream-ack":
                acks["messages"] += 1
                acks["records"] += 1
            elif protocol == "stream-batch-ack":
                acks["messages"] += 1
                acks["records"] += len(message.payload["record_ids"])

        network.register("bench-device", bench_device)
        documents = documents_for_run()
        schedule = world.scheduler.schedule_at
        # The mobile outbox estimates each record's wire size once, at
        # *enqueue* time, and every send carries that explicit size (an
        # envelope charges the sum of its members).  Enqueue-side prep
        # is identical in both modes, so it stays outside the timed
        # window — the measurement is flush + transport + ingest.
        from repro.net.message import estimate_size
        sizes = [estimate_size(document) for document in documents]
        started = time.perf_counter()
        if batch == 1:
            def send_one(document, size):
                network.send("bench-device", server.address, document,
                             size=size, headers={"protocol": "stream-data"})
            for index, document in enumerate(documents):
                schedule(index * cadence_s, send_one, document,
                         sizes[index])
        else:
            def send_envelope(chunk, size):
                # Packing happens at flush time, as the mobile outbox
                # does it — the cost belongs inside the measurement.
                payload = RecordBatch.from_documents(chunk).to_payload()
                network.send("bench-device", server.address, payload,
                             size=size, coalesced=len(chunk),
                             headers={"protocol": "stream-batch"})
            for start in range(0, records, batch):
                chunk = documents[start:start + batch]
                # The envelope leaves when its *last* record is due, so
                # the record rate matches the per-record schedule.
                schedule((start + len(chunk) - 1) * cadence_s,
                         send_envelope, chunk,
                         sum(sizes[start:start + batch]))
        world.run_for(records * cadence_s + 30.0)  # tail: intake drains
        elapsed = time.perf_counter() - started
        return {
            "wall_seconds": elapsed,
            "records_ingested": server.records_received,
            "records_shed": durability.records_shed,
            "records_quarantined": durability.records_quarantined,
            "network_messages": network.messages_sent,
            "journal_appends": durability.medium.appends,
            "checkpoints": durability.medium.checkpoints,
            "ack_messages": acks["messages"],
            "acked_records": acks["records"],
        }

    def broker_run(batch: int) -> dict:
        world = World(seed=seed)
        network = Network(world)
        broker = MqttBroker(world, network, address="perf-broker")
        address = network.register("perf-sub", lambda message: None)
        broker._on_connect(address, packets.Connect(client_id="sub"))
        broker._on_subscribe(address, packets.Subscribe(
            packet_id=1, topic_filter="sensocial/data/u0/accel"))
        if batch == 1:
            for index in range(records):
                broker._on_publish(address, packets.Publish(
                    topic="sensocial/data/u0/accel",
                    payload={"v": index}, qos=0))
        else:
            for start in range(0, records, batch):
                size = min(batch, records - start)
                broker._on_publish(address, packets.Publish(
                    topic="sensocial/data/u0/accel",
                    payload={"batch_wire": 1, "n": size,
                             "payloads": [{"v": start + offset}
                                          for offset in range(size)]},
                    qos=0))
        return {
            "publishes": broker.publishes_received,
            "routing_checks": broker.routing_checks,
            "batched_records_routed": broker.batched_records_routed,
        }

    points = []
    for batch in batch_sizes:
        best = None
        for _ in range(_WALL_SAMPLES):
            run = ingest_run(batch)
            if best is None or run["wall_seconds"] < best["wall_seconds"]:
                best = run
        broker_work = broker_run(batch)
        points.append({
            "batch": batch,
            "records": records,
            "records_ingested": best["records_ingested"],
            "records_shed": best["records_shed"],
            "records_quarantined": best["records_quarantined"],
            "wall_seconds": best["wall_seconds"],
            "records_per_wall_s": (records / best["wall_seconds"]
                                   if best["wall_seconds"] > 0 else None),
            # Per-record amortization: every per-message cost divides
            # by the batch size; per-record outputs stay identical.
            "messages_per_record": best["network_messages"] / records,
            "journal_appends_per_record":
                best["journal_appends"] / records,
            "ack_messages_per_record": best["ack_messages"] / records,
            "acked_records": best["acked_records"],
            "checkpoints": best["checkpoints"],
            "trie_routings_per_record": broker_work["publishes"] / records,
            "broker_checks_per_record":
                broker_work["routing_checks"] / records,
            "batched_records_routed":
                broker_work["batched_records_routed"],
        })
    baseline = next((p for p in points if p["batch"] == 1), points[0])
    for point in points:
        point["speedup_vs_singleton"] = (
            point["records_per_wall_s"] / baseline["records_per_wall_s"]
            if baseline["records_per_wall_s"] else None)
    gate_points = [p for p in points
                   if p["batch"] >= 64 and p["speedup_vs_singleton"]]
    return {
        "records": records,
        "cadence_s": cadence_s,
        "wall_samples": _WALL_SAMPLES,
        "points": points,
        #: Best speedup among batch >= 64 — the ISSUE 9 >=10x gate.
        "gate_speedup": (max(p["speedup_vs_singleton"]
                             for p in gate_points)
                         if gate_points else None),
    }


def bench_shard_scaling(shard_counts: tuple[int, ...] = (1, 4),
                        users: int = 16, sim_minutes: float = 10.0,
                        seed: int = 44) -> dict:
    """Per-shard ingest+filter work as the cluster widens.

    The same deployment — ``users`` devices, one continuous stream each
    — runs against clusters of each size in ``shard_counts``.  The
    metric is the *maximum* per-shard deterministic work counter
    (records ingested + replayed duplicates + OSN actions; see
    ``ShardWorker.work_done``): the hottest shard bounds the cluster's
    capacity, so ``max_shard_work(1) / max_shard_work(N)`` is the
    scaling factor the consistent-hash placement actually delivers.
    Work counters are deterministic, so CI asserts a floor on the
    1→4-shard factor (``benchmarks/test_cluster_scaling.py``).
    """
    from repro import Granularity, ModalityType, SenSocialTestbed

    points = []
    for shards in shard_counts:
        testbed = SenSocialTestbed(seed=seed, shards=shards)
        cities = ["Paris", "Bordeaux", "London"]
        for index in range(users):
            testbed.add_user(f"user{index:02d}",
                             home_city=cities[index % len(cities)])
        for user_id in sorted(testbed.nodes):
            testbed.server.create_stream(user_id, ModalityType.ACCELEROMETER,
                                         Granularity.CLASSIFIED)
        started = time.perf_counter()
        testbed.run(sim_minutes * 60.0)
        elapsed = time.perf_counter() - started
        work = testbed.server.cluster_report()["work"]
        health = testbed.server.health()
        points.append({
            "shards": shards,
            "users": users,
            "records_ingested": int(health["records_received"]),
            "total_work": sum(work.values()),
            "max_shard_work": max(work.values()),
            "per_shard_work": work,
            "wall_seconds": elapsed,
        })
    first, last = points[0], points[-1]
    return {
        "points": points,
        "scaling_factor": (first["max_shard_work"] / last["max_shard_work"]
                           if last["max_shard_work"] else None),
    }


def bench_elasticity(users: int = 12, sim_minutes: float = 10.0,
                     seed: int = 45) -> dict:
    """Mid-run scale-out cost: snapshot bootstrap vs retained replay.

    The same deployment — identical seed, identical workload — runs
    twice on a durable 2-shard cluster; halfway through, a third shard
    joins, once with each bootstrap strategy.  Determinism makes the
    two runs move the *same* documents, so the only difference is how
    the joining shard loads them: ``journal_appends`` (one per document
    under replay, zero under snapshot) and ``checkpoints`` (one under
    snapshot) are deterministic work counters the CI bound asserts on.
    Zero-loss accounting is checked for both.
    """
    from repro import Granularity, ModalityType, SenSocialTestbed

    sim_seconds = sim_minutes * 60.0
    runs = {}
    for strategy in ("snapshot", "replay"):
        testbed = SenSocialTestbed(seed=seed, shards=2, durability=True)
        cities = ["Paris", "Bordeaux", "London"]
        for index in range(users):
            testbed.add_user(f"user{index:02d}",
                             home_city=cities[index % len(cities)])
        for user_id in sorted(testbed.nodes):
            testbed.server.create_stream(user_id, ModalityType.ACCELEROMETER,
                                         Granularity.CLASSIFIED)
        started = time.perf_counter()
        testbed.run(sim_seconds / 2)
        entry = testbed.server.add_shard(strategy=strategy)
        testbed.run(sim_seconds / 2)
        testbed.run(120.0)  # quiet tail: outboxes drain, retries land
        elapsed = time.perf_counter() - started
        enqueued = sum(node.manager.health()["enqueued"]
                       for node in testbed.nodes.values())
        queued = sum(node.manager.health()["queued"]
                     for node in testbed.nodes.values())
        dropped = sum(node.manager.health()["dropped"]
                      for node in testbed.nodes.values())
        ingested = testbed.server.health()["records_received"]
        runs[strategy] = {
            "strategy": strategy,
            "moved_devices": entry["moved_devices"],
            "documents": entry["bootstrap"]["documents"],
            "journal_appends": entry["bootstrap"]["journal_appends"],
            "checkpoints": entry["bootstrap"]["checkpoints"],
            "records_ingested": int(ingested),
            "records_lost": int(enqueued - queued - dropped - ingested),
            "consistency_problems": len(testbed.server.verify_consistent()),
            "wall_seconds": elapsed,
        }
    return {
        "users": users,
        "sim_seconds": sim_seconds,
        "snapshot": runs["snapshot"],
        "replay": runs["replay"],
        #: Journal appends the snapshot bootstrap avoided (== documents
        #: migrated, since replay journals each one individually).
        "appends_saved": (runs["replay"]["journal_appends"]
                          - runs["snapshot"]["journal_appends"]),
    }


def run_all(*, quick: bool = False) -> dict:
    """Run the six benchmark groups; ``quick`` shrinks sizes for CI
    smoke runs while keeping every metric meaningful."""
    if quick:
        broker = bench_broker_fanout(subscriber_counts=(50, 200, 800),
                                     publishes=50)
        docstore = bench_docstore_query(n_docs=1000, rounds=50)
        ingest = bench_end_to_end_ingest(users=4, sim_minutes=5.0)
        batch = bench_batch_ingest(records=512)
        shard = bench_shard_scaling(users=16, sim_minutes=5.0)
        elasticity = bench_elasticity(users=8, sim_minutes=5.0)
    else:
        broker = bench_broker_fanout()
        docstore = bench_docstore_query()
        ingest = bench_end_to_end_ingest()
        batch = bench_batch_ingest()
        shard = bench_shard_scaling()
        elasticity = bench_elasticity()
    return {
        "run_at": time.time(),
        "quick": quick,
        # Every trajectory datapoint is labelled with what workload
        # produced it, so mixed histories (classic suite entries next
        # to named-scenario entries) stay self-describing.
        "labels": {"scenario": "hotpath-suite",
                   "population": ingest["users"]
                   if "users" in ingest else 4},
        "broker_fanout": broker,
        "docstore_query": docstore,
        "end_to_end_ingest": ingest,
        "batch_ingest": batch,
        "shard_scaling": shard,
        "elasticity": elasticity,
    }


def bench_scenario(name: str, devices: int, *, seed: int = 0,
                   substrate: str = "streaming", scheduler: str = "wheel",
                   sim_seconds: float | None = None,
                   events_per_device: float | None = None,
                   active_cap: int = 4096, sink: str = "stats",
                   chaos: bool = False) -> dict:
    """Run one named population scenario as a benchmark datapoint.

    The scenario engine already measures wall time and counts events;
    this wraps its report in a trajectory entry shaped like
    :func:`run_all`'s — same ``labels`` contract, so ``repro perf
    --scenario`` datapoints land in the same ``BENCH_PERF.json``
    history as the classic suite.
    """
    from repro.scenarios import run_scenario

    report = run_scenario(name, devices, seed=seed, substrate=substrate,
                          scheduler=scheduler, sim_seconds=sim_seconds,
                          events_per_device=events_per_device,
                          active_cap=active_cap, sink=sink, chaos=chaos)
    return {
        "run_at": time.time(),
        "quick": False,
        "labels": {"scenario": name, "population": devices},
        "scenario": report,
    }


def format_scenario_summary(entry: dict) -> str:
    """Digest of a ``bench_scenario`` trajectory entry."""
    report = entry["scenario"]
    labels = entry["labels"]
    lines = [f"scenario {labels['scenario']} "
             f"({labels['population']:,} devices, "
             f"{report['substrate']}/{report['scheduler']})"]
    lines.append(
        f"  events   {report['events']:,} in {report['wall_s']:.2f} wall-s "
        f"({report['events_per_wall_s']:,.0f} events/s, horizon "
        f"{report['horizon_s']:.0f} sim-s)")
    lines.append(
        f"  records  {report['emitted']:,} emitted = "
        f"{report['delivered']:,} delivered + "
        f"{report['buffered_residual']:,} carried + "
        f"{report['dropped']:,} dropped "
        f"({report['flushes']} reconnect flushes)")
    lines.append(
        f"  memory   peak {report['peak_active']:,} resident devices "
        f"(cap {report['active_cap']:,}), cold store "
        f"{report['store_bytes']:,} B "
        f"({report['store_bytes_per_device']:.0f} B/device), "
        f"{report['hibernations']:,} hibernations / "
        f"{report['rehydrations']:,} rehydrations")
    if report["cascade_actions"]:
        lines.append(f"  cascade  {report['cascade_actions']:,} OSN actions "
                     f"({report['cascade_skipped']} skipped)")
    lines.append(f"  order    delivery fingerprint "
                 f"{report['delivery_fingerprint']}")
    problems = report.get("verify_problems", [])
    lines.append("  verify   " + ("ok" if not problems
                                  else "; ".join(problems)))
    return "\n".join(lines)


def write_report(entry: dict, path: str | Path = BENCH_PERF_FILENAME,
                 history_limit: int = 50) -> dict:
    """Append ``entry`` to the perf trajectory file and return the full
    document (``latest`` plus a bounded ``history``)."""
    path = Path(path)
    document: dict[str, Any] = {"schema": 1, "history": []}
    if path.exists():
        try:
            previous = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(previous, dict) and isinstance(
                    previous.get("history"), list):
                document["history"] = previous["history"]
        except (ValueError, OSError):
            pass  # corrupt/unreadable trajectory: start a fresh one
    document["history"].append(entry)
    document["history"] = document["history"][-history_limit:]
    document["latest"] = entry
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return document


def format_summary(entry: dict) -> str:
    """A terse human-readable digest of one benchmark entry."""
    lines = ["hot-path benchmarks"]
    broker = entry["broker_fanout"]
    for point in broker["points"]:
        lines.append(
            f"  broker   {point['subscribers']:>5} subs: "
            f"{point['checks_per_publish']:8.1f} checks/publish "
            f"(scan would do {point['scan_equivalent']}), "
            f"{point['publishes_per_s']:,.0f} publish/s")
    growth = broker["growth"]
    lines.append(
        f"  broker   growth: x{growth['subscription_growth']:.0f} "
        f"subscriptions -> x{growth['checks_growth']:.2f} routing work")
    docstore = entry["docstore_query"]
    for group in ("conjunctive", "in_union"):
        metrics = docstore[group]
        reduction = metrics["candidate_reduction"]
        lines.append(
            f"  docstore {group}: {metrics['indexed']['candidates_per_query']:.1f} "
            f"candidates/query indexed vs {metrics['scan']['candidates_per_query']:.1f} "
            f"scanned ({f'{reduction:.0f}x fewer' if reduction else 'n/a'}), "
            f"{metrics['indexed']['queries_per_s']:,.0f} q/s")
    ingest = entry["end_to_end_ingest"]
    lines.append(
        f"  ingest   {ingest['records_ingested']} records / "
        f"{ingest['sim_seconds']:.0f} sim-s in {ingest['wall_seconds']:.2f} "
        f"wall-s ({ingest['sim_speedup']:.0f}x real time, "
        f"{ingest['records_per_wall_s']:,.0f} records/wall-s)")
    batch = entry.get("batch_ingest")
    if batch is not None:
        for point in batch["points"]:
            lines.append(
                f"  batch    b={point['batch']:>3}: "
                f"{point['records_per_wall_s']:,.0f} records/wall-s, "
                f"{point['messages_per_record']:.3f} msgs + "
                f"{point['journal_appends_per_record']:.3f} appends + "
                f"{point['trie_routings_per_record']:.3f} routings /record")
        gate = batch["gate_speedup"]
        lines.append(
            f"  batch    speedup at batch>=64: "
            f"{f'x{gate:.1f}' if gate else 'n/a'} (gate: >=10x)")
    shard = entry.get("shard_scaling")
    if shard is not None:
        for point in shard["points"]:
            lines.append(
                f"  cluster  {point['shards']} shard(s), "
                f"{point['users']} users: max shard work "
                f"{point['max_shard_work']} of {point['total_work']}")
        factor = shard["scaling_factor"]
        lines.append(
            f"  cluster  hottest-shard work scaling 1->"
            f"{shard['points'][-1]['shards']} shards: "
            f"{f'x{factor:.2f}' if factor else 'n/a'}")
    elasticity = entry.get("elasticity")
    if elasticity is not None:
        for strategy in ("snapshot", "replay"):
            point = elasticity[strategy]
            lines.append(
                f"  elastic  {strategy:8s} bootstrap: "
                f"{point['documents']} docs moved, "
                f"{point['journal_appends']} journal appends + "
                f"{point['checkpoints']} checkpoints, "
                f"{point['records_lost']} lost")
        lines.append(
            f"  elastic  snapshot bootstrap saved "
            f"{elasticity['appends_saved']} journal appends")
    return "\n".join(lines)
