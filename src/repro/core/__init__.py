"""SenSocial middleware core: the paper's contribution.

``repro.core.common`` holds the shared abstractions (modalities,
granularity, conditions, filters, stream records, the XML stream-config
codec); ``repro.core.mobile`` is the Android-library side;
``repro.core.server`` is the Java-server side.
"""
