"""Versioned batch wire envelope: N stream records packed column-wise.

Per-record Python overhead dominates the sense→publish→ingest→fan-out
spine once the algorithmic work is flat (ROADMAP item 2).  The fix is
the classic one for staged pipelines — move *batches* through every
stage so the per-message costs (transport, scheduling, journal frames,
index passes) amortize across N records.

:class:`RecordBatch` is the envelope.  It packs N records as
tuple-packed parallel arrays (struct-of-arrays): one tuple per field,
index ``i`` across all tuples describing record ``i``.  The columnar
shape is not cosmetic — the journal appends the *columns* as one
``ingest_batch`` frame, which encodes roughly half the tokens of N
per-record documents (field names are written once per batch instead
of once per record), and replay rebuilds the per-record documents
record-for-record identically to N singleton frames.

Batching is a transport/execution optimization ONLY.  Delivery order,
dedup semantics, trace accounting and docstore contents must stay
bit-identical to the per-record path; the invariants that make that
hold are:

* ``store_documents()`` rebuilds dicts in exactly the key order of
  :meth:`StreamRecord.to_dict` (``trace`` present only when the record
  carried one), so fingerprints over the docstore cannot tell the two
  paths apart.
* ``iter_records()`` reconstructs :class:`StreamRecord`s exactly as
  :meth:`StreamRecord.from_dict` would from the wire documents.
* Flush boundaries are derived from the virtual clock (outbox sweep /
  reconnect flush), never wall time.

Wire payloads are plain dict/tuple/scalar trees, so they ride the
in-sim network by reference and the canonical codec
(:mod:`repro.durability.codec`) losslessly — tuples are a first-class
codec type.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.core.common.granularity import Granularity
from repro.core.common.modality import ModalityType
from repro.core.common.records import StreamRecord
from repro.net.message import estimate_size

#: Version stamped into every batch payload under :data:`BATCH_MARKER`.
#: Bump when the column set or their meaning changes; decoders reject
#: versions newer than they understand instead of misreading them.
BATCH_WIRE_VERSION = 1

#: Payload key whose presence marks a dict as a batch envelope (value =
#: wire version).  The MQTT broker keys its batch accounting off the
#: same marker so envelopes are recognized without importing this
#: module.
BATCH_MARKER = "batch_wire"

#: The parallel-array fields, in wire order.
_COLUMNS = ("record_ids", "stream_ids", "user_ids", "device_ids",
            "modalities", "granularities", "timestamps", "values",
            "details", "osn_actions", "wire_bytes", "traces")


class RecordBatch:
    """N stream records as tuple-packed parallel arrays."""

    __slots__ = _COLUMNS

    def __init__(self, *, record_ids=(), stream_ids=(), user_ids=(),
                 device_ids=(), modalities=(), granularities=(),
                 timestamps=(), values=(), details=(), osn_actions=(),
                 wire_bytes=(), traces=()):
        self.record_ids = tuple(record_ids)
        self.stream_ids = tuple(stream_ids)
        self.user_ids = tuple(user_ids)
        self.device_ids = tuple(device_ids)
        self.modalities = tuple(modalities)
        self.granularities = tuple(granularities)
        self.timestamps = tuple(timestamps)
        self.values = tuple(values)
        self.details = tuple(details)
        self.osn_actions = tuple(osn_actions)
        self.wire_bytes = tuple(wire_bytes)
        self.traces = tuple(traces)
        n = len(self.record_ids)
        for column in _COLUMNS[1:]:
            if len(getattr(self, column)) != n:
                raise ValueError(
                    f"ragged batch: column {column!r} has "
                    f"{len(getattr(self, column))} entries, expected {n}")

    # -- construction --------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[StreamRecord],
                     record_ids: Iterable[str | None] | None = None,
                     ) -> "RecordBatch":
        """Pack records column-wise; lossless against ``iter_records``.

        ``record_ids`` supplies the wire-level dedup ids (the record
        dataclass itself does not carry one); omitted ids become
        ``None`` — such records ride the batch but are never acked or
        deduped, matching the per-record path for id-less payloads.
        """
        records = list(records)
        if record_ids is None:
            ids: tuple[Any, ...] = (None,) * len(records)
        else:
            ids = tuple(record_ids)
            if len(ids) != len(records):
                raise ValueError(
                    f"{len(ids)} record ids for {len(records)} records")
        return cls(
            record_ids=ids,
            stream_ids=[r.stream_id for r in records],
            user_ids=[r.user_id for r in records],
            device_ids=[r.device_id for r in records],
            modalities=[r.modality.value for r in records],
            granularities=[r.granularity.value for r in records],
            timestamps=[r.timestamp for r in records],
            values=[r.value for r in records],
            details=[dict(r.details) for r in records],
            osn_actions=[dict(r.osn_action) if r.osn_action else None
                         for r in records],
            wire_bytes=[r.wire_bytes for r in records],
            traces=[r.trace.to_dict() if r.trace is not None else None
                    for r in records],
        )

    @classmethod
    def from_documents(cls, documents: Iterable[dict[str, Any]],
                       ) -> "RecordBatch":
        """Pack wire documents (``StreamRecord.to_dict()`` shape, plus
        an optional ``record_id`` key as the mobile outbox appends).
        """
        docs = list(documents)
        return cls(
            record_ids=[d.get("record_id") for d in docs],
            stream_ids=[d["stream_id"] for d in docs],
            user_ids=[d["user_id"] for d in docs],
            device_ids=[d["device_id"] for d in docs],
            modalities=[d["modality"] for d in docs],
            granularities=[d["granularity"] for d in docs],
            timestamps=[d["timestamp"] for d in docs],
            values=[d["value"] for d in docs],
            details=[d.get("details") or {} for d in docs],
            osn_actions=[d.get("osn_action") for d in docs],
            wire_bytes=[0] * len(docs),
            traces=[d.get("trace") for d in docs],
        )

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return len(self.record_ids)

    @property
    def size(self) -> int:
        return len(self.record_ids)

    @property
    def device_id(self) -> str | None:
        """Routing hint: the (single) originating device of the batch."""
        return self.device_ids[0] if self.device_ids else None

    def select(self, indices: Iterable[int]) -> "RecordBatch":
        """A sub-batch of the given record positions, in order."""
        keep = list(indices)
        return RecordBatch(**{
            column: [getattr(self, column)[i] for i in keep]
            for column in _COLUMNS})

    # -- unpacking -----------------------------------------------------

    def iter_records(self) -> Iterator[StreamRecord]:
        """Rebuild records exactly as ``StreamRecord.from_dict`` would.

        Enum lookups are cached per distinct wire value — batches are
        overwhelmingly single-stream, so the cache hits N-1 times.
        """
        modality_of: dict[str, ModalityType] = {}
        granularity_of: dict[str, Granularity] = {}
        trace_cls = None
        for i in range(len(self.record_ids)):
            modality = self.modalities[i]
            enum_modality = modality_of.get(modality)
            if enum_modality is None:
                enum_modality = modality_of[modality] = ModalityType(modality)
            granularity = self.granularities[i]
            enum_granularity = granularity_of.get(granularity)
            if enum_granularity is None:
                enum_granularity = granularity_of[granularity] = (
                    Granularity(granularity))
            trace = self.traces[i]
            if trace is not None:
                if trace_cls is None:
                    from repro.obs.trace import TraceContext as trace_cls
                trace = trace_cls.from_dict(trace)
            yield StreamRecord(
                stream_id=self.stream_ids[i],
                user_id=self.user_ids[i],
                device_id=self.device_ids[i],
                modality=enum_modality,
                granularity=enum_granularity,
                timestamp=self.timestamps[i],
                value=self.values[i],
                details=dict(self.details[i]),
                osn_action=self.osn_actions[i],
                wire_bytes=self.wire_bytes[i],
                trace=trace,
            )

    def records(self) -> list[StreamRecord]:
        return list(self.iter_records())

    def store_documents(self) -> list[dict[str, Any]]:
        """Fresh per-record documents in ``StreamRecord.to_dict`` shape.

        Key order matches ``to_dict`` exactly and ``trace`` appears
        only when the record carried one, so batched docstore contents
        fingerprint identically to per-record ingest.  The returned
        dicts are newly built (callers may hand them to
        ``insert_many(copy=False)``); nested ``value`` objects are
        shared with the wire payload — safe because stored records are
        never mutated in place.
        """
        documents = []
        for i in range(len(self.record_ids)):
            osn_action = self.osn_actions[i]
            document = {
                "stream_id": self.stream_ids[i],
                "user_id": self.user_ids[i],
                "device_id": self.device_ids[i],
                "modality": self.modalities[i],
                "granularity": self.granularities[i],
                "timestamp": self.timestamps[i],
                "value": self.values[i],
                "details": dict(self.details[i]),
                "osn_action": dict(osn_action) if osn_action else None,
            }
            trace = self.traces[i]
            if trace is not None:
                document["trace"] = trace
            documents.append(document)
        return documents

    # -- wire ----------------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        """The versioned wire dict (rides networks and journal frames)."""
        payload: dict[str, Any] = {
            BATCH_MARKER: BATCH_WIRE_VERSION,
            "n": len(self.record_ids),
            "device_id": self.device_id,
        }
        for column in _COLUMNS:
            payload[column] = getattr(self, column)
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "RecordBatch":
        version = payload.get(BATCH_MARKER)
        if version is None:
            raise ValueError("payload is not a batch envelope "
                             f"(missing {BATCH_MARKER!r})")
        if not isinstance(version, int) or version > BATCH_WIRE_VERSION:
            raise ValueError(f"unsupported batch wire version {version!r} "
                             f"(decoder speaks <= {BATCH_WIRE_VERSION})")
        return cls(**{column: payload.get(column, ())
                      for column in _COLUMNS})

    def encode(self) -> bytes:
        """Canonical bytes via the durability codec (lossless)."""
        from repro.durability import codec
        return codec.dumps(self.to_payload())

    @classmethod
    def decode(cls, data: bytes) -> "RecordBatch":
        from repro.durability import codec
        return cls.from_payload(codec.loads(data))


def is_batch_payload(payload: Any) -> bool:
    """True when ``payload`` is a batch envelope dict."""
    return isinstance(payload, dict) and BATCH_MARKER in payload


# estimate_size({"record_id": x}) - estimate_size(x): the framing a
# singleton ack dict adds around its record id — dict wrapper, key and
# separator.  Computed once so batch-ack accounting never walks N
# throwaway dicts.
_ACK_OVERHEAD = (estimate_size({"record_id": ""}) - estimate_size(""))


def ack_size(record_ids: Iterable[str]) -> int:
    """Wire bytes of a coalesced batch ack: the *exact* sum of the N
    singleton ``{"record_id": id}`` ack estimates it replaces, so byte
    counters cannot tell the two ack shapes apart."""
    return sum(_ACK_OVERHEAD + estimate_size(record_id)
               for record_id in record_ids)
