"""Filter conditions.

"Each condition comprises of a modality, a comparison operator, and a
value" (§3.1).  A condition may additionally be *qualified with a
user*: server-side filters can condition one user's stream on another
user's context ("send user's GPS data only when another user is
walking").  User-qualified conditions are evaluated only on the server;
the mobile half skips them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

from repro.core.common.errors import MiddlewareError
from repro.core.common.modality import ModalityType


class Operator(str, Enum):
    """Comparison operators conditions can use."""

    EQUALS = "equals"
    NOT_EQUALS = "not_equals"
    GREATER_THAN = "greater_than"
    GREATER_EQUAL = "greater_equal"
    LESS_THAN = "less_than"
    LESS_EQUAL = "less_equal"
    IN = "in"
    CONTAINS = "contains"
    BETWEEN = "between"


@dataclass(frozen=True)
class Condition:
    """modality ∘ operator ∘ value, optionally about another user."""

    modality: ModalityType
    operator: Operator
    value: Any
    #: None = the stream's own user; otherwise a server-side
    #: cross-user condition.
    user_id: str | None = None

    def __post_init__(self):
        if self.operator is Operator.BETWEEN:
            if (not isinstance(self.value, (list, tuple))
                    or len(self.value) != 2):
                raise MiddlewareError(
                    "BETWEEN takes a [low, high] pair, got "
                    f"{self.value!r}")
        if self.operator is Operator.IN and not isinstance(
                self.value, (list, tuple, set, frozenset)):
            raise MiddlewareError(f"IN takes a collection, got {self.value!r}")

    @property
    def is_cross_user(self) -> bool:
        return self.user_id is not None

    def evaluate(self, observed: Any) -> bool:
        """Test the condition against the observed context value.

        An unobserved context (``None``) never satisfies a condition —
        filters fail closed, so data is not leaked before the
        conditional modality has produced its first value.
        """
        if observed is None:
            return False
        operator = self.operator
        if operator is Operator.EQUALS:
            return observed == self.value
        if operator is Operator.NOT_EQUALS:
            return observed != self.value
        if operator in (Operator.GREATER_THAN, Operator.GREATER_EQUAL,
                        Operator.LESS_THAN, Operator.LESS_EQUAL):
            try:
                if operator is Operator.GREATER_THAN:
                    return observed > self.value
                if operator is Operator.GREATER_EQUAL:
                    return observed >= self.value
                if operator is Operator.LESS_THAN:
                    return observed < self.value
                return observed <= self.value
            except TypeError:
                return False
        if operator is Operator.IN:
            return observed in self.value
        if operator is Operator.CONTAINS:
            try:
                return self.value in observed
            except TypeError:
                return False
        if operator is Operator.BETWEEN:
            low, high = self.value
            try:
                return low <= observed <= high
            except TypeError:
                return False
        raise MiddlewareError(f"unknown operator {operator!r}")

    # -- serialisation (for XML configs and JSON triggers) ---------------

    def to_dict(self) -> dict[str, Any]:
        document: dict[str, Any] = {
            "modality": self.modality.value,
            "operator": self.operator.value,
            "value": list(self.value) if isinstance(self.value, tuple) else self.value,
        }
        if self.user_id is not None:
            document["user_id"] = self.user_id
        return document

    @classmethod
    def from_dict(cls, document: dict[str, Any]) -> "Condition":
        return cls(
            modality=ModalityType(document["modality"]),
            operator=Operator(document["operator"]),
            value=document["value"],
            user_id=document.get("user_id"),
        )
