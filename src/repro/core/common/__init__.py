"""Abstractions shared by the mobile and server middleware halves."""

from repro.core.common.errors import (
    MiddlewareError,
    PrivacyViolationError,
    StreamStateError,
    UnknownModalityError,
)
from repro.core.common.modality import (
    CLASSIFIED_FOR,
    OSN_MODALITIES,
    SENSOR_MODALITIES,
    VIRTUAL_MODALITIES,
    ModalityType,
    ModalityValue,
    sensor_for_modality,
)
from repro.core.common.granularity import Granularity
from repro.core.common.conditions import Condition, Operator
from repro.core.common.filters import Filter
from repro.core.common.records import StreamRecord
from repro.core.common.stream_config import StreamConfig, StreamMode, merge_configs

__all__ = [
    "CLASSIFIED_FOR",
    "Condition",
    "Filter",
    "Granularity",
    "MiddlewareError",
    "ModalityType",
    "ModalityValue",
    "OSN_MODALITIES",
    "Operator",
    "PrivacyViolationError",
    "SENSOR_MODALITIES",
    "StreamConfig",
    "StreamMode",
    "StreamRecord",
    "StreamStateError",
    "UnknownModalityError",
    "VIRTUAL_MODALITIES",
    "merge_configs",
    "sensor_for_modality",
]
