"""Data granularity: raw samples or high-level classified context (§3).

Granularity is both a stream parameter (what the listener receives)
and a privacy dimension (what the policy allows to leave the sensor).
"""

from __future__ import annotations

from enum import Enum


class Granularity(str, Enum):
    """Raw samples vs classified high-level context."""

    RAW = "raw"
    CLASSIFIED = "classified"

    @classmethod
    def parse(cls, value: "Granularity | str") -> "Granularity":
        """Accept the enum or the paper's lowercase strings."""
        if isinstance(value, cls):
            return value
        return cls(value.lower())
