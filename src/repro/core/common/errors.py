"""Middleware errors."""


class MiddlewareError(Exception):
    """Base class for SenSocial middleware errors."""


class UnknownModalityError(MiddlewareError):
    """Raised when a stream or condition names an unsupported modality."""


class PrivacyViolationError(MiddlewareError):
    """Raised when a stream request violates the privacy descriptor.

    Streams created before a policy change are not killed but *paused*
    by the Privacy Policy Manager (§4); this error is for outright
    rejected creation requests.
    """


class StreamStateError(MiddlewareError):
    """Raised for operations invalid in the stream's current state."""
