"""Stream records: the data items delivered to listeners.

A record couples one sensing result (raw window or classified label)
with its provenance — and, for social-event-based streams, with the
OSN action that triggered it, which is the paper's headline feature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.common.granularity import Granularity
from repro.core.common.modality import ModalityType


@dataclass
class StreamRecord:
    """One delivered stream element."""

    stream_id: str
    user_id: str
    device_id: str
    modality: ModalityType
    granularity: Granularity
    timestamp: float
    value: Any
    details: dict[str, Any] = field(default_factory=dict)
    #: The OSN action coupled with this sample, when the stream is
    #: social-event-based (``None`` for plain continuous samples).
    osn_action: dict[str, Any] | None = None
    wire_bytes: int = 0
    #: Observability trace context (:class:`repro.obs.TraceContext`)
    #: riding the record phone→server; ``None`` when tracing is off,
    #: and then absent from the wire document too — untraced runs stay
    #: bit-identical.
    trace: Any = None

    def to_dict(self) -> dict[str, Any]:
        document = {
            "stream_id": self.stream_id,
            "user_id": self.user_id,
            "device_id": self.device_id,
            "modality": self.modality.value,
            "granularity": self.granularity.value,
            "timestamp": self.timestamp,
            "value": self.value,
            "details": dict(self.details),
            "osn_action": dict(self.osn_action) if self.osn_action else None,
        }
        if self.trace is not None:
            document["trace"] = self.trace.to_dict()
        return document

    @classmethod
    def from_dict(cls, document: dict[str, Any]) -> "StreamRecord":
        trace = document.get("trace")
        if trace is not None:
            from repro.obs.trace import TraceContext
            trace = TraceContext.from_dict(trace)
        return cls(
            stream_id=document["stream_id"],
            user_id=document["user_id"],
            device_id=document["device_id"],
            modality=ModalityType(document["modality"]),
            granularity=Granularity(document["granularity"]),
            timestamp=document["timestamp"],
            value=document["value"],
            details=dict(document.get("details", {})),
            osn_action=document.get("osn_action"),
            trace=trace,
        )
