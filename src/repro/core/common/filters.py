"""Stream filters: conjunctions of conditions (§3.1).

A filter refines a stream so only the information of interest is
captured; on the phone it also gates *sampling*, which is where the
energy savings of the filter-placement ablation come from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.common.conditions import Condition
from repro.core.common.modality import (
    OSN_MODALITIES,
    ModalityType,
    sensor_for_modality,
)


@dataclass(frozen=True)
class Filter:
    """An immutable conjunction of conditions."""

    conditions: tuple[Condition, ...] = ()

    def __init__(self, conditions: Iterable[Condition] = ()):
        # A duplicate conjunct is redundant; keep first occurrences in
        # order so merges and round-trips stay deterministic.
        unique: list[Condition] = []
        for condition in conditions:
            if condition not in unique:
                unique.append(condition)
        object.__setattr__(self, "conditions", tuple(unique))

    def __len__(self) -> int:
        return len(self.conditions)

    def with_condition(self, condition: Condition) -> "Filter":
        """A new filter with one more condition."""
        return Filter(self.conditions + (condition,))

    def merged_with(self, other: "Filter") -> "Filter":
        """A new filter holding both filters' conditions (deduplicated).

        This is the mobile-side ``FilterMerge``: a downloaded config's
        filter is merged into the existing filter set (§4).
        """
        seen = list(self.conditions)
        for condition in other.conditions:
            if condition not in seen:
                seen.append(condition)
        return Filter(seen)

    # -- views used by the two middleware halves -------------------------

    def local_conditions(self) -> list[Condition]:
        """Conditions the mobile evaluates (not cross-user)."""
        return [condition for condition in self.conditions
                if not condition.is_cross_user]

    def server_conditions(self) -> list[Condition]:
        """Cross-user conditions; only the server can evaluate these."""
        return [condition for condition in self.conditions
                if condition.is_cross_user]

    def osn_conditions(self) -> list[Condition]:
        """Conditions on OSN activity — these make a stream event-based."""
        return [condition for condition in self.conditions
                if condition.modality in OSN_MODALITIES]

    def is_social_event_based(self) -> bool:
        """Does any local condition tie sampling to OSN actions?"""
        return any(condition.modality in OSN_MODALITIES
                   for condition in self.local_conditions())

    def conditional_sensors(self) -> set[ModalityType]:
        """Sensors that must be sampled continuously to evaluate the
        local conditions (§3.1: "an unrelated stream has to be sensed
        in order to infer the activity")."""
        sensors: set[ModalityType] = set()
        for condition in self.local_conditions():
            sensor = sensor_for_modality(condition.modality)
            if sensor is not None:
                sensors.add(sensor)
        return sensors

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"conditions": [condition.to_dict()
                               for condition in self.conditions]}

    @classmethod
    def from_dict(cls, document: dict[str, Any]) -> "Filter":
        return cls(Condition.from_dict(item)
                   for item in document.get("conditions", []))
