"""Stream configurations and the XML codec.

Remote stream management works by "encapsulating a stream configuration
in an XML file, which is pushed from the server to mobile devices":
modality, granularity, filtering conditions and the target device id
(§4).  ``merge_configs`` is the mobile's ``FilterMerge``: a downloaded
definition is merged into the existing configuration set.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ElementTree
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any

from repro.core.common.errors import MiddlewareError
from repro.core.common.filters import Filter
from repro.core.common.granularity import Granularity
from repro.core.common.modality import SENSOR_MODALITIES, ModalityType


class StreamMode(str, Enum):
    """The two stream kinds of §3.1."""

    CONTINUOUS = "continuous"
    SOCIAL_EVENT = "social_event"


@dataclass(frozen=True)
class StreamConfig:
    """Everything needed to (re)create one stream on one device."""

    stream_id: str
    device_id: str
    modality: ModalityType
    granularity: Granularity
    mode: StreamMode = StreamMode.CONTINUOUS
    filter: Filter = field(default_factory=Filter)
    #: Key-value sensing settings (duty cycle, sample rate).
    settings: dict[str, Any] = field(default_factory=dict)
    #: Should samples be transmitted to the server?
    send_to_server: bool = False
    #: Who created the stream — informational, but the mobile refuses
    #: to destroy server-owned streams locally.
    created_by: str = "mobile"

    def __post_init__(self):
        if self.modality not in SENSOR_MODALITIES:
            raise MiddlewareError(
                f"streams are created on sensor modalities, not "
                f"{self.modality.value!r}")

    def with_filter(self, stream_filter: Filter) -> "StreamConfig":
        return replace(self, filter=stream_filter)

    def effective_mode(self) -> StreamMode:
        """A continuous stream whose filter has OSN conditions is
        effectively social-event-based: sampling happens on triggers
        (the Figure 7 pattern)."""
        if self.mode is StreamMode.SOCIAL_EVENT:
            return StreamMode.SOCIAL_EVENT
        if self.filter.is_social_event_based():
            return StreamMode.SOCIAL_EVENT
        return StreamMode.CONTINUOUS

    # -- XML codec -----------------------------------------------------------

    def to_xml(self) -> str:
        """Serialise to the configuration XML the server pushes."""
        root = ElementTree.Element("stream")
        ElementTree.SubElement(root, "id").text = self.stream_id
        ElementTree.SubElement(root, "device").text = self.device_id
        ElementTree.SubElement(root, "modality").text = self.modality.value
        ElementTree.SubElement(root, "granularity").text = self.granularity.value
        ElementTree.SubElement(root, "mode").text = self.mode.value
        ElementTree.SubElement(root, "sendToServer").text = (
            "true" if self.send_to_server else "false")
        ElementTree.SubElement(root, "createdBy").text = self.created_by
        settings_element = ElementTree.SubElement(root, "settings")
        for key in sorted(self.settings):
            entry = ElementTree.SubElement(settings_element, "entry")
            entry.set("key", key)
            entry.text = json.dumps(self.settings[key])
        filter_element = ElementTree.SubElement(root, "filter")
        for condition in self.filter.conditions:
            condition_element = ElementTree.SubElement(filter_element, "condition")
            document = condition.to_dict()
            condition_element.set("modality", document["modality"])
            condition_element.set("operator", document["operator"])
            if document.get("user_id") is not None:
                condition_element.set("userId", document["user_id"])
            condition_element.text = json.dumps(document["value"])
        return ElementTree.tostring(root, encoding="unicode")

    @classmethod
    def from_xml(cls, text: str) -> "StreamConfig":
        """Parse a pushed configuration XML."""
        try:
            root = ElementTree.fromstring(text)
        except ElementTree.ParseError as error:
            raise MiddlewareError(f"malformed stream config XML: {error}") from error
        if root.tag != "stream":
            raise MiddlewareError(f"expected <stream> root, got <{root.tag}>")

        def text_of(tag: str, default: str | None = None) -> str:
            element = root.find(tag)
            if element is None or element.text is None:
                if default is None:
                    raise MiddlewareError(f"stream config missing <{tag}>")
                return default
            return element.text

        settings: dict[str, Any] = {}
        settings_element = root.find("settings")
        if settings_element is not None:
            for entry in settings_element.findall("entry"):
                settings[entry.get("key")] = json.loads(entry.text or "null")

        conditions = []
        filter_element = root.find("filter")
        if filter_element is not None:
            for condition_element in filter_element.findall("condition"):
                conditions.append({
                    "modality": condition_element.get("modality"),
                    "operator": condition_element.get("operator"),
                    "user_id": condition_element.get("userId"),
                    "value": json.loads(condition_element.text or "null"),
                })

        return cls(
            stream_id=text_of("id"),
            device_id=text_of("device"),
            modality=ModalityType(text_of("modality")),
            granularity=Granularity(text_of("granularity")),
            mode=StreamMode(text_of("mode", StreamMode.CONTINUOUS.value)),
            filter=Filter.from_dict({"conditions": conditions}),
            settings=settings,
            send_to_server=text_of("sendToServer", "false") == "true",
            created_by=text_of("createdBy", "server"),
        )


def merge_configs(existing: list[StreamConfig],
                  downloaded: StreamConfig) -> list[StreamConfig]:
    """Merge a downloaded config into the device's configuration set.

    Same stream id → the downloaded definition replaces the old one but
    their filters are merged (``FilterMerge``); otherwise it is
    appended.
    """
    merged: list[StreamConfig] = []
    replaced = False
    for config in existing:
        if config.stream_id == downloaded.stream_id:
            merged.append(downloaded.with_filter(
                config.filter.merged_with(downloaded.filter)))
            replaced = True
        else:
            merged.append(config)
    if not replaced:
        merged.append(downloaded)
    return merged
