"""Modalities: the context types streams and filter conditions name.

Three families:

* **sensor modalities** — the five physical sensors a stream can be
  created on (the ``SensorUtils.Sensor_Type_*`` constants of Figure 7);
* **virtual modalities** — classified views of sensor data that filter
  conditions reference (``physical_activity`` in the §3.1 example is
  inferred from the accelerometer), plus ``time_of_day``;
* **OSN modalities** — action presence on a platform
  (``facebook_activity`` in Figure 7's condition).
"""

from __future__ import annotations

from enum import Enum

from repro.core.common.errors import UnknownModalityError


class ModalityType(str, Enum):
    """Every context type a stream or condition can name."""

    # Sensor modalities (streams are created on these).
    ACCELEROMETER = "accelerometer"
    MICROPHONE = "microphone"
    LOCATION = "location"
    WIFI = "wifi"
    BLUETOOTH = "bluetooth"
    # Virtual modalities (filter conditions reference these).
    PHYSICAL_ACTIVITY = "physical_activity"
    AUDIO_ENVIRONMENT = "audio_environment"
    PLACE = "place"
    TIME_OF_DAY = "time_of_day"
    # OSN modalities.
    FACEBOOK_ACTIVITY = "facebook_activity"
    TWITTER_ACTIVITY = "twitter_activity"


class ModalityValue:
    """Well-known condition values (the paper's ``ModalityValue.active``)."""

    ACTIVE = "active"
    STILL = "still"
    WALKING = "walking"
    RUNNING = "running"
    SILENT = "silent"
    NOT_SILENT = "not_silent"


SENSOR_MODALITIES = frozenset({
    ModalityType.ACCELEROMETER,
    ModalityType.MICROPHONE,
    ModalityType.LOCATION,
    ModalityType.WIFI,
    ModalityType.BLUETOOTH,
})

VIRTUAL_MODALITIES = frozenset({
    ModalityType.PHYSICAL_ACTIVITY,
    ModalityType.AUDIO_ENVIRONMENT,
    ModalityType.PLACE,
    ModalityType.TIME_OF_DAY,
})

OSN_MODALITIES = frozenset({
    ModalityType.FACEBOOK_ACTIVITY,
    ModalityType.TWITTER_ACTIVITY,
})

#: Which sensor each virtual modality is inferred from: filtering a
#: stream on ``physical_activity`` forces continuous sampling of the
#: accelerometer ("an unrelated stream ... has to be sensed in order to
#: infer the activity", §3.1).
CLASSIFIED_FOR = {
    ModalityType.PHYSICAL_ACTIVITY: ModalityType.ACCELEROMETER,
    ModalityType.AUDIO_ENVIRONMENT: ModalityType.MICROPHONE,
    ModalityType.PLACE: ModalityType.LOCATION,
}


def sensor_for_modality(modality: ModalityType) -> ModalityType | None:
    """The sensor that must be sampled to evaluate ``modality``.

    Sensor modalities map to themselves, virtual ones to their backing
    sensor, and OSN/time modalities to ``None`` (no sensing needed).
    """
    if modality in SENSOR_MODALITIES:
        return modality
    if modality in CLASSIFIED_FOR:
        return CLASSIFIED_FOR[modality]
    if modality in OSN_MODALITIES or modality is ModalityType.TIME_OF_DAY:
        return None
    raise UnknownModalityError(f"unknown modality {modality!r}")
