"""Server-side stream handles.

"If instantiated on the server, a stream transparently controls sensor
sampling on the associated mobile(s)" (§4): the handle's mutations are
pushed to the device as configuration XML, and records flowing back
from the device are delivered to the handle's listeners after
server-side filtering.
"""

from __future__ import annotations

from typing import Callable

from repro.core.common.filters import Filter
from repro.core.common.records import StreamRecord
from repro.core.common.stream_config import StreamConfig

RecordListener = Callable[[StreamRecord], None]


class ServerStream:
    """A remotely managed stream, owned by the server manager."""

    def __init__(self, manager, config: StreamConfig, user_id: str):
        self._manager = manager
        self.config = config
        self.user_id = user_id
        self.destroyed = False
        self._listeners: list[RecordListener] = []
        self.records_received = 0
        self.records_suppressed = 0  # failed a cross-user condition

    @property
    def stream_id(self) -> str:
        return self.config.stream_id

    @property
    def device_id(self) -> str:
        return self.config.device_id

    # -- application API -----------------------------------------------------

    def add_listener(self, listener: RecordListener) -> "ServerStream":
        self._listeners.append(listener)
        return self

    def remove_listener(self, listener: RecordListener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def set_filter(self, stream_filter: Filter) -> "ServerStream":
        """Replace the filter and re-push the configuration."""
        self._manager.update_stream_filter(self, stream_filter)
        return self

    def configure(self, settings: dict) -> "ServerStream":
        """Update the sensing settings and re-push the configuration."""
        self._manager.update_stream_settings(self, settings)
        return self

    def destroy(self) -> None:
        self._manager.destroy_stream(self.stream_id)

    # -- manager-facing ---------------------------------------------------------

    def deliver(self, record: StreamRecord) -> None:
        self.records_received += 1
        for listener in list(self._listeners):
            listener(record)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ServerStream {self.stream_id} user={self.user_id} "
                f"{self.config.modality.value}/{self.config.granularity.value}>")
