"""Server-side persistence (the MongoDB of §4).

Stores "information about user registration, user's OSN friendship and
geographic location information", plus the captured OSN actions and
stream records so server applications can run complex multi-user
queries over them.
"""

from __future__ import annotations

from typing import Any

from repro.core.common.records import StreamRecord
from repro.docstore import DocumentStore
from repro.osn.actions import OsnAction


class ServerDatabase:
    """Typed facade over the document store."""

    def __init__(self, store: DocumentStore | None = None):
        self.store = store if store is not None else DocumentStore()
        self.users = self.store["users"]
        self.actions = self.store["actions"]
        self.records = self.store["records"]
        self.users.create_index("user_id", unique=True)
        self.actions.create_index("user_id")
        self.records.create_index("user_id")
        self.records.create_index("stream_id")

    # -- registration ------------------------------------------------------

    def register_device(self, user_id: str, device_id: str,
                        modalities: list[str]) -> None:
        """Upsert a user's device registration.

        One code path for both cases: a re-registration replaces the
        device id and the modality list wholesale (the device declares
        what it can sense *now*), while friends and location survive —
        they are seeded only when the user is first inserted.
        """
        self.users.update_one(
            {"user_id": user_id},
            {"$set": {"device_id": device_id,
                      "modalities": list(modalities)},
             "$setOnInsert": {"friends": [], "location": None}},
            upsert=True)

    def device_of(self, user_id: str) -> str | None:
        document = self.users.find_one({"user_id": user_id})
        return document["device_id"] if document is not None else None

    def user_ids(self) -> list[str]:
        return sorted(document["user_id"] for document in self.users.find())

    def is_registered(self, user_id: str) -> bool:
        return self.users.find_one({"user_id": user_id}) is not None

    # -- social links -------------------------------------------------------

    def set_friends(self, user_id: str, friends: list[str]) -> None:
        self.users.update_one({"user_id": user_id},
                              {"$set": {"friends": sorted(friends)}})

    def add_friend(self, user_id: str, friend_id: str) -> None:
        self.users.update_one({"user_id": user_id},
                              {"$addToSet": {"friends": friend_id}})
        self.users.update_one({"user_id": friend_id},
                              {"$addToSet": {"friends": user_id}})

    def remove_friend(self, user_id: str, friend_id: str) -> None:
        self.users.update_one({"user_id": user_id},
                              {"$pull": {"friends": friend_id}})
        self.users.update_one({"user_id": friend_id},
                              {"$pull": {"friends": user_id}})

    def friends_of(self, user_id: str) -> list[str]:
        document = self.users.find_one({"user_id": user_id})
        return list(document["friends"]) if document is not None else []

    # -- geography -----------------------------------------------------------

    def update_location(self, user_id: str, lon: float, lat: float,
                        place: str | None, timestamp: float) -> None:
        self.users.update_one({"user_id": user_id}, {"$set": {"location": {
            "point": [lon, lat], "place": place, "timestamp": timestamp,
        }}})

    def location_of(self, user_id: str) -> dict[str, Any] | None:
        document = self.users.find_one({"user_id": user_id})
        return document.get("location") if document is not None else None

    def users_in_place(self, place: str) -> list[str]:
        """Users whose last classified location is ``place``."""
        return sorted(document["user_id"] for document in
                      self.users.find({"location.place": place}))

    def users_near(self, point: list[float], max_km: float) -> list[str]:
        """Users whose last fix is within ``max_km`` of ``point``.

        MongoDB "natively supports geospatial querying.  This translates
        to fast return of nearby users" (§5.5).
        """
        return sorted(document["user_id"] for document in self.users.find({
            "location.point": {"$near": {"$point": list(point),
                                         "$maxDistance": max_km}},
        }))

    # -- history -------------------------------------------------------------

    def store_action(self, action: OsnAction) -> None:
        self.actions.insert_one(action.to_document())

    def store_record(self, record: StreamRecord) -> None:
        self.records.insert_one(record.to_dict())

    def store_batch(self, documents: list[dict]) -> list[int]:
        """Insert a batch of record documents in one index pass."""
        # Ownership transfer: ``documents`` must be freshly built (the
        # batch ingest path builds them from the wire columns), so the
        # collection may store them without the per-document deepcopy.
        return self.records.insert_many(documents, copy_documents=False)

    def actions_of(self, user_id: str) -> list[dict]:
        return list(self.actions.find({"user_id": user_id}).sort("created_at"))

    def records_of(self, user_id: str, modality: str | None = None) -> list[dict]:
        query: dict[str, Any] = {"user_id": user_id}
        if modality is not None:
            query["modality"] = modality
        return list(self.records.find(query).sort("timestamp"))

    # -- observability -------------------------------------------------------

    def health(self) -> dict:
        """The underlying store's :class:`repro.obs.Healthcheck`
        document — collection counts, plus journal lag when the store
        is journaled (see :mod:`repro.docstore.journaled`)."""
        return self.store.health()
