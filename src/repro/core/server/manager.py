"""The server SenSocial Manager: entry point of the server middleware.

Responsibilities (Figure 3, right side): device registration over
MQTT, OSN plug-in intake, trigger routing, remote stream lifecycle
(XML config push / destroy), incoming stream-data handling with
server-side filtering, aggregators, multicast streams, and the
database of users, links and locations.
"""

from __future__ import annotations

import itertools
import json
from collections import deque
from dataclasses import replace
from typing import Callable

from repro.core.common.batch import RecordBatch, ack_size as batch_ack_size
from repro.core.common.filters import Filter
from repro.core.common.granularity import Granularity
from repro.core.common.modality import ModalityType
from repro.core.common.records import StreamRecord
from repro.core.common.stream_config import StreamConfig, StreamMode
from repro.core.mobile.mqtt_service import REGISTRATION_FILTER
from repro.core.server.aggregator import Aggregator
from repro.core.server.dedup import RecordDeduper
from repro.core.server.filter_manager import ServerFilterManager
from repro.core.server.multicast import MulticastQuery, MulticastStream
from repro.core.server.server_stream import ServerStream
from repro.core.server.storage import ServerDatabase
from repro.core.server.trigger import TriggerManager
from repro.core.common.errors import MiddlewareError
from repro.mqtt.client import MqttClient
from repro.net.latency import LatencyModel
from repro.net.message import Message
from repro.net.network import Endpoint, Network
from repro.obs import Healthcheck, Observability
from repro.obs.health import STATUS_DOWN
from repro.osn.actions import ActionType, OsnAction
from repro.plugins.base import OsnPlugin
from repro.simkit.world import World

ActionListener = Callable[[OsnAction], None]
RecordListener = Callable[[StreamRecord], None]

_PLATFORM_MODALITY = {
    "facebook": ModalityType.FACEBOOK_ACTIVITY,
    "twitter": ModalityType.TWITTER_ACTIVITY,
}

class ServerSenSocialManager(Endpoint):
    """Singleton-style server middleware core."""

    def __init__(self, world: World, network: Network,
                 database: ServerDatabase | None = None,
                 broker_address: str = "mqtt-broker",
                 address: str = "sensocial-server",
                 processing_delay: LatencyModel | None = None,
                 durability=None, client_id: str | None = None,
                 filters: ServerFilterManager | None = None,
                 stream_seq=None):
        self.world = world
        self.network = network
        self.address = address
        #: Durability controller (:class:`repro.durability.ServerDurability`)
        #: or ``None`` — then ingest is the classic volatile fast path.
        self.durability = durability
        if durability is not None:
            durability.bind(self)
            if database is None:
                database = ServerDatabase(store=durability.build_store())
        self.database = database if database is not None else ServerDatabase()
        self.mqtt = MqttClient(world, network,
                               client_id=client_id or "sensocial-server",
                               address=f"mqtt/{address}",
                               broker_address=broker_address)
        self.triggers = TriggerManager(world, self.mqtt, processing_delay)
        #: Cross-user filter context.  Injectable so a shard cluster
        #: can hand every worker the same manager — cross-user
        #: conditions then see context from users on *other* shards,
        #: exactly like the monolithic server did.
        self.filters = filters if filters is not None \
            else ServerFilterManager(world)
        self.streams: dict[str, ServerStream] = {}
        self.multicasts: list[MulticastStream] = []
        self._plugins: list[OsnPlugin] = []
        self._action_listeners: list[ActionListener] = []
        self._record_listeners: list[RecordListener] = []
        self._registration_listeners: list[Callable[[str, str], None]] = []
        #: Stream-id sequence.  Injectable (shared ``itertools.count``)
        #: so every shard of a cluster draws globally unique, globally
        #: creation-ordered ``srv-sN`` ids.
        self._stream_seq = stream_seq if stream_seq is not None \
            else itertools.count(1)
        #: Per-manager multicast naming counter: module-global state
        #: here used to leak across simulations in one process, making
        #: back-to-back runs disagree on stream names.
        self._multicast_seq = itertools.count(1)
        #: OSN trigger routing index: acting user id -> streams whose
        #: filters carry a cross-user OSN condition on that user, so an
        #: action only touches the streams it can trigger instead of
        #: scanning every stream (see ``_route_action_triggers``).
        self._osn_trigger_index: dict[str, dict[str, ServerStream]] = {}
        self._trigger_users: dict[str, tuple[str, ...]] = {}
        #: Stream creation order, used to keep trigger fan-out in the
        #: exact order the full-scan implementation produced.
        self._stream_order: dict[str, int] = {}
        #: Cached telemetry counter handles for the ingest hot loop
        #: (avoids re-resolving name+labels per record).
        self._counter_handles: dict[tuple, object] = {}
        self._recent_action_latencies: deque[float] = deque(maxlen=1000)
        #: Observability hub (``None`` when tracing/telemetry is off).
        self.obs = Observability.of(world)
        #: Sliding window of record ids making QoS-1 replays idempotent.
        self.dedup = RecordDeduper()
        self.records_received = 0
        self.records_duplicate = 0
        self.acks_sent = 0
        self.actions_received = 0
        self.last_record_at: float | None = None
        #: Crash/restart state (``repro.faults`` server_crash fault).
        self.crashed = False
        self.crashes = 0
        self.restarts = 0
        #: OSN actions that arrived (synchronously, plugin-side) while
        #: the server process was down — lost, like a real outage.
        self.actions_lost_crashed = 0
        network.register(address, self)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Connect to the broker and begin accepting registrations."""
        self.mqtt.connect(clean_session=False)
        self.mqtt.subscribe(REGISTRATION_FILTER, self._on_registration)

    def crash(self) -> None:
        """Kill the server process mid-run (fault injection).

        Both network endpoints partition (in-flight messages drop and
        QoS layers retry), the durable intake queue is wiped — those
        records are unacked, so mobile outboxes retransmit them after
        the restart — and synchronously delivered OSN actions are lost
        until :meth:`restart`.
        """
        if self.crashed:
            return
        self.crashed = True
        self.crashes += 1
        self.network.set_down(self.address)
        self.network.set_down(self.mqtt.address)
        if self.durability is not None:
            self.durability.on_crash()
        if self.obs is not None:
            self.obs.telemetry.counter("server_crashes").inc()

    def restart(self) -> None:
        """Bring a crashed server back.

        With durability, the database and the dedup window rebuild
        from the medium's snapshot + journal replay, so post-restart
        ingest stays exactly-once.  Without it the restart is amnesiac:
        registrations, friendships, locations and records are gone —
        the failure mode the journal exists to prevent.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.restarts += 1
        self.network.set_down(self.address, False)
        self.network.set_down(self.mqtt.address, False)
        window = self.dedup.window
        if self.durability is not None:
            store, dedup_ids = self.durability.recover()
            self.database = ServerDatabase(store=store)
            self.dedup = RecordDeduper(window=window)
            for record_id in dedup_ids:
                self.dedup.remember(record_id)
            self.durability.finish_recovery()
        else:
            self.database = ServerDatabase()
            self.dedup = RecordDeduper(window=window)
        if self.obs is not None:
            self.obs.telemetry.counter("server_restarts").inc()
        self._update_dedup_metrics()

    def attach_plugin(self, plugin: OsnPlugin) -> None:
        """Consume a platform plug-in's captured actions."""
        self._plugins.append(plugin)
        plugin.add_listener(self._on_osn_action)

    def plugins(self) -> list[OsnPlugin]:
        return list(self._plugins)

    # -- application API -------------------------------------------------------

    def add_action_listener(self, listener: ActionListener) -> None:
        """Server-app callback for every captured OSN action."""
        self._action_listeners.append(listener)

    def register_listener(self, listener: RecordListener) -> None:
        """Server-app callback for every incoming stream record (the
        paper's server-side ``registerListener()``)."""
        self._record_listeners.append(listener)

    def on_registration(self, listener: Callable[[str, str], None]) -> None:
        """Callback fired as ``(user_id, device_id)`` register."""
        self._registration_listeners.append(listener)

    # -- user/graph management ----------------------------------------------------

    def sync_social_graph(self, graph) -> None:
        """Mirror an OSN social graph's friendships into the database."""
        for user_id in graph.users():
            if self.database.is_registered(user_id):
                self.database.set_friends(user_id, [
                    friend for friend in graph.friends(user_id)
                    if self.database.is_registered(friend)])

    def registered_users(self) -> list[str]:
        return self.database.user_ids()

    def device_of(self, user_id: str) -> str | None:
        return self.database.device_of(user_id)

    # -- remote stream lifecycle -----------------------------------------------------

    def create_stream(self, user_id: str, modality: ModalityType | str,
                      granularity: Granularity | str = Granularity.CLASSIFIED, *,
                      stream_filter: Filter | None = None,
                      settings: dict | None = None,
                      mode: StreamMode = StreamMode.CONTINUOUS) -> ServerStream:
        """Create a stream on ``user_id``'s device, managed from here."""
        modality = ModalityType(modality)
        granularity = Granularity.parse(granularity)
        device_id = self.database.device_of(user_id)
        if device_id is None:
            raise MiddlewareError(f"user {user_id!r} has no registered device")
        stream_filter = stream_filter if stream_filter is not None else Filter()
        # Any OSN condition (own or cross-user) makes sampling
        # trigger-driven, so the pushed config must say so explicitly —
        # the mobile cannot see cross-user conditions.
        if stream_filter.osn_conditions():
            mode = StreamMode.SOCIAL_EVENT
        seq = next(self._stream_seq)
        config = StreamConfig(
            stream_id=f"srv-s{seq}",
            device_id=device_id,
            modality=modality,
            granularity=granularity,
            mode=mode,
            filter=stream_filter,
            settings=dict(settings or {}),
            send_to_server=True,
            created_by="server",
        )
        stream = ServerStream(self, config, user_id)
        self.streams[config.stream_id] = stream
        self._stream_order[config.stream_id] = seq
        self._index_stream_triggers(stream)
        self.triggers.push_config(config)
        return stream

    def update_stream_filter(self, stream: ServerStream,
                             stream_filter: Filter) -> None:
        stream.config = stream.config.with_filter(stream_filter)
        self._index_stream_triggers(stream)
        self.triggers.push_config(stream.config)

    def update_stream_settings(self, stream: ServerStream, settings: dict) -> None:
        merged = dict(stream.config.settings)
        merged.update(settings)
        stream.config = replace(stream.config, settings=merged)
        self.triggers.push_config(stream.config)

    def destroy_stream(self, stream_id: str) -> None:
        stream = self.streams.pop(stream_id, None)
        self._unindex_stream_triggers(stream_id)
        self._stream_order.pop(stream_id, None)
        self.filters.drop_gate(stream_id)
        if stream is None or stream.destroyed:
            return
        stream.destroyed = True
        self.triggers.push_destroy(stream.device_id, stream_id)

    def _index_stream_triggers(self, stream: ServerStream) -> None:
        """(Re-)file ``stream`` under each user whose OSN activity can
        trigger it cross-device."""
        self._unindex_stream_triggers(stream.stream_id)
        users: list[str] = []
        for condition in stream.config.filter.osn_conditions():
            if condition.is_cross_user and condition.user_id not in users:
                users.append(condition.user_id)
        for user_id in users:
            self._osn_trigger_index.setdefault(
                user_id, {})[stream.stream_id] = stream
        if users:
            self._trigger_users[stream.stream_id] = tuple(users)

    def _unindex_stream_triggers(self, stream_id: str) -> None:
        for user_id in self._trigger_users.pop(stream_id, ()):
            bucket = self._osn_trigger_index.get(user_id)
            if bucket is not None:
                bucket.pop(stream_id, None)
                if not bucket:
                    del self._osn_trigger_index[user_id]

    # -- shard migration ------------------------------------------------------

    def adopt_stream(self, stream: ServerStream) -> None:
        """Take ownership of a stream created on another manager.

        Used by the cluster rebalance protocol: when a shard dies, its
        live :class:`ServerStream` handles (listeners and all) are
        re-homed onto the shards that inherit the underlying devices.
        The stream keeps its id — the device keeps publishing under it
        — and its creation-order slot, so trigger fan-out order is
        unchanged.
        """
        stream._manager = self
        self.streams[stream.stream_id] = stream
        seq = int(stream.stream_id.rsplit("s", 1)[-1]) \
            if stream.stream_id.startswith("srv-s") else 0
        self._stream_order[stream.stream_id] = seq
        self._index_stream_triggers(stream)

    def release_stream(self, stream_id: str) -> ServerStream | None:
        """Forget a stream without destroying it on the device (the
        adopting manager keeps serving it)."""
        stream = self.streams.pop(stream_id, None)
        self._unindex_stream_triggers(stream_id)
        self._stream_order.pop(stream_id, None)
        self.filters.drop_gate(stream_id)
        return stream

    # -- aggregation and multicast ------------------------------------------------------

    def allocate_multicast_name(self) -> str:
        """Next default multicast stream name, scoped to this manager."""
        return f"mcast-{next(self._multicast_seq)}"

    def create_aggregator(self, name: str,
                          streams: list[ServerStream]) -> Aggregator:
        return Aggregator.wrap(name, streams)

    def create_multicast_stream(self, modality: ModalityType,
                                granularity: Granularity,
                                query: MulticastQuery, *,
                                stream_filter: Filter | None = None,
                                settings: dict | None = None,
                                mode: StreamMode = StreamMode.CONTINUOUS,
                                name: str | None = None) -> MulticastStream:
        """Instantiate a multicast stream and populate its membership."""
        multicast = MulticastStream(
            self, modality, granularity, query, stream_filter=stream_filter,
            settings=settings, mode=mode, name=name)
        self.multicasts.append(multicast)
        multicast.refresh()
        return multicast

    def on_multicast_destroyed(self, multicast: MulticastStream) -> None:
        if multicast in self.multicasts:
            self.multicasts.remove(multicast)

    def select_users(self, query: MulticastQuery) -> list[str]:
        """Evaluate a multicast membership query against the database."""
        candidates = set(self.database.user_ids())
        if query.user_ids is not None:
            candidates &= set(query.user_ids)
        if query.place is not None:
            candidates &= set(self.database.users_in_place(query.place))
        if query.near_point is not None:
            candidates &= set(self.database.users_near(
                list(query.near_point), query.near_km))
        if query.near_user is not None:
            location = self.database.location_of(query.near_user)
            if location is None:
                candidates = set()  # person's position unknown yet
            else:
                nearby = set(self.database.users_near(
                    location["point"], query.near_user_km))
                nearby.discard(query.near_user)
                candidates &= nearby
        if query.friends_of is not None:
            friends = self._friends_within(query.friends_of, query.hops)
            candidates &= friends
        return sorted(candidates)

    def _friends_within(self, user_id: str, hops: int) -> set[str]:
        seen = {user_id}
        frontier = {user_id}
        reached: set[str] = set()
        for _ in range(hops):
            next_frontier: set[str] = set()
            for current in frontier:
                for friend in self.database.friends_of(current):
                    if friend not in seen:
                        seen.add(friend)
                        reached.add(friend)
                        next_frontier.add(friend)
            frontier = next_frontier
        return reached

    # -- inbound paths --------------------------------------------------------------------

    def deliver(self, message: Message) -> None:
        if self.crashed:
            return  # belt-and-braces; the network partitions us anyway
        protocol = message.headers.get("protocol")
        if protocol == "stream-data":
            self._on_stream_data(message.payload, reply_to=message.src,
                                 sent_at=message.sent_at)
        elif protocol == "stream-batch":
            self._on_stream_batch(message.payload, reply_to=message.src,
                                  sent_at=message.sent_at)
        elif protocol == "location-update":
            self._on_location_update(message.payload)

    def _on_registration(self, topic: str, payload: str) -> None:
        document = json.loads(payload)
        self.database.register_device(document["user_id"],
                                      document["device_id"],
                                      document.get("modalities", []))
        for listener in list(self._registration_listeners):
            listener(document["user_id"], document["device_id"])

    def _send_ack(self, record_id: str | None, reply_to: str | None) -> None:
        if record_id is None or reply_to is None:
            return
        self.acks_sent += 1
        self.network.send(self.address, reply_to, {"record_id": record_id},
                          headers={"protocol": "stream-ack"})

    def _send_batch_ack(self, record_ids, reply_to: str | None) -> None:
        """One coalesced ack envelope for a whole batch."""
        # Counts, byte-accounts (explicit size = exact sum of the N
        # singleton ack estimates) and RNG-draws (``coalesced=N`` link
        # draws) as the N singleton acks it replaces, so the sender's
        # outbox and the fault model see the same world either way.
        ids = [record_id for record_id in record_ids if record_id is not None]
        if not ids or reply_to is None:
            return
        self.acks_sent += len(ids)
        self.network.send(self.address, reply_to, {"record_ids": ids},
                          headers={"protocol": "stream-batch-ack"},
                          size=batch_ack_size(ids), coalesced=len(ids))

    def _counter(self, name: str, **labels):
        """Resolve-once telemetry counter handles for per-record loops
        (``Telemetry.counter`` sorts the label set on every call)."""
        key = (name,) + tuple(sorted(labels.items()))
        handle = self._counter_handles.get(key)
        if handle is None:
            handle = self.obs.telemetry.counter(name, **labels)
            self._counter_handles[key] = handle
        return handle

    def _update_dedup_metrics(self) -> None:
        """Surface the dedup window in the telemetry registry."""
        if self.obs is None:
            return
        self.obs.telemetry.gauge("dedup_window_size").set(len(self.dedup))
        self.obs.telemetry.gauge("dedup_duplicates").set(self.dedup.duplicates)

    def _on_stream_data(self, payload: dict, reply_to: str | None = None,
                        sent_at: float | None = None) -> None:
        obs = self.obs
        trace = None
        if obs is not None and payload.get("trace") is not None:
            from repro.obs.trace import TraceContext
            trace = TraceContext.from_dict(payload["trace"])
        record_id = payload.get("record_id")
        if self.durability is not None:
            # Durable path: admission-controlled, write-ahead journaled
            # ingest.  The ack moves to apply time — a record is only
            # acknowledged once it is journaled (or terminally shed /
            # quarantined), never while it could still die in a crash.
            self.durability.submit(payload, reply_to=reply_to,
                                   sent_at=sent_at, trace=trace,
                                   record_id=record_id)
            return
        if record_id is not None and reply_to is not None:
            # Acknowledge before the dedup decision: the ack for the
            # first copy may have been lost, and the sender keeps
            # retrying until one lands (idempotent ingest makes the
            # repeat ack harmless).
            self._send_ack(record_id, reply_to)
        if record_id is not None and self.dedup.seen(record_id):
            self.records_duplicate += 1
            self._update_dedup_metrics()
            if obs is not None:
                # Not a loss: the first copy already terminated this
                # trace; the replay is only an event on the journey.
                obs.tracer.event(trace, "duplicate_ingest",
                                 record_id=record_id)
                self._counter("records_duplicate").inc()
            return
        self._update_dedup_metrics()
        arrived_at = self.world.now
        if obs is not None:
            obs.tracer.span(trace, "transport",
                            start=arrived_at if sent_at is None else sent_at)
        record = StreamRecord.from_dict(payload)
        self.records_received += 1
        self.last_record_at = arrived_at
        self.filters.observe_record(record)
        self.database.store_record(record)
        if obs is not None:
            obs.tracer.span(trace, "ingest", start=arrived_at,
                            record_id=record_id)
            self._counter("records_ingested",
                          modality=record.modality.value).inc()
        self._dispatch_record(record, trace, arrived_at)

    def _on_stream_batch(self, payload: dict, reply_to: str | None = None,
                         sent_at: float | None = None) -> None:
        """Batch twin of :meth:`_on_stream_data`: one envelope, N records."""
        # Per-record semantics are preserved exactly — ack-before-dedup,
        # the same duplicate accounting, the same observe→dispatch order
        # per record — only the per-message costs (transport, journal
        # frames, index passes, acks) amortize across the batch.
        obs = self.obs
        batch = RecordBatch.from_payload(payload)
        if self.durability is not None:
            self.durability.submit_batch(batch, reply_to=reply_to,
                                         sent_at=sent_at)
            return
        record_ids = batch.record_ids
        self._send_batch_ack(record_ids, reply_to)
        flags = self.dedup.check_batch(record_ids)
        fresh = [index for index, dup in enumerate(flags) if not dup]
        if len(fresh) != len(record_ids):
            self.records_duplicate += len(record_ids) - len(fresh)
            if obs is not None:
                from repro.obs.trace import TraceContext
                for index, duplicate in enumerate(flags):
                    if not duplicate:
                        continue
                    trace = batch.traces[index]
                    # Not a loss: the first copy already terminated this
                    # trace; the replay is only an event on the journey.
                    obs.tracer.event(
                        None if trace is None
                        else TraceContext.from_dict(trace),
                        "duplicate_ingest", record_id=record_ids[index])
                    self._counter("records_duplicate").inc()
            batch = batch.select(fresh)
        self._update_dedup_metrics()
        if not fresh:
            return
        arrived_at = self.world.now
        self.database.store_batch(batch.store_documents())
        self.records_received += len(batch)
        self.last_record_at = arrived_at
        self._dispatch_batch(
            batch, arrived_at=arrived_at, ingest_start=arrived_at,
            pre_span=("transport",
                      arrived_at if sent_at is None else sent_at))

    def _apply_intake(self, item) -> None:
        """Route one admitted intake item to its durable apply path."""
        if "batch" in item.extras:
            self._ingest_durable_batch(item)
        else:
            self._ingest_durable(item)

    def _ingest_durable(self, item) -> None:
        """Apply one admitted record through the write-ahead journal.

        The journal entry is composite — record document + dedup id —
        so recovery restores both atomically: there is no window where
        a replayed record is deduped but absent from the database (a
        loss) or present but not deduped (a duplicate).  Raises
        :class:`repro.durability.StorageWriteError` without side
        effects when the journal append fails; the drain pump owns the
        retry/quarantine decision.
        """
        record, trace = item.record, item.trace
        obs = self.obs
        now = self.world.now
        with self.durability.journal.op(
                "ingest", "records", strict=True, document=record.to_dict(),
                record_id=item.record_id):
            self.database.store_record(record)
            if item.record_id is not None:
                self.dedup.seen(item.record_id)
        self.filters.observe_record(record)
        self.records_received += 1
        self.last_record_at = now
        if obs is not None:
            obs.tracer.span(trace, "journal_append", start=now)
            obs.tracer.span(trace, "ingest", start=item.enqueued_at,
                            record_id=item.record_id)
            self._counter("records_ingested",
                          modality=record.modality.value).inc()
        self._update_dedup_metrics()
        self._send_ack(item.record_id, item.reply_to)
        self._dispatch_record(record, trace, now)

    def _ingest_durable_batch(self, item) -> None:
        """Apply one admitted batch: a single composite journal frame."""
        # The frame carries the columnar wire envelope; its replay is
        # record-for-record identical to N singleton ``ingest`` frames
        # (see repro.durability.journal._apply).  All-or-nothing like
        # the singleton path: a failed append raises before any
        # in-memory change and the drain pump owns retry/quarantine.
        batch = item.extras["batch"]
        now = self.world.now
        record_ids = batch.record_ids
        with self.durability.journal.op(
                "ingest_batch", "records", strict=True,
                batch=batch.to_payload()):
            self.database.store_batch(batch.store_documents())
            dedup_seen = self.dedup.seen
            for record_id in record_ids:
                if record_id is not None:
                    dedup_seen(record_id)
        self.records_received += len(record_ids)
        self.last_record_at = now
        self._update_dedup_metrics()
        self._send_batch_ack(record_ids, item.reply_to)
        self._dispatch_batch(batch, arrived_at=now,
                             ingest_start=item.enqueued_at,
                             pre_span=("journal_append", now))

    def _dispatch_batch(self, batch, *, arrived_at: float,
                        ingest_start: float, pre_span) -> None:
        """Per-record observe→dispatch tail of both batch ingest paths,
        in batch order — identical to what N singleton ingests run."""
        obs = self.obs
        if obs is None and not self.streams and not self._record_listeners:
            # Nothing downstream needs record objects; fold the columns
            # straight into the filter context (mutation-identical).
            self.filters.observe_batch(batch)
            return
        span_name, span_start = pre_span
        record_ids = batch.record_ids
        for index, record in enumerate(batch.iter_records()):
            trace = record.trace if obs is not None else None
            self.filters.observe_record(record)
            if obs is not None:
                obs.tracer.span(trace, span_name, start=span_start)
                obs.tracer.span(trace, "ingest", start=ingest_start,
                                record_id=record_ids[index])
                self._counter("records_ingested",
                              modality=record.modality.value).inc()
            self._dispatch_record(record, trace, arrived_at)

    def _dispatch_record(self, record: StreamRecord, trace,
                         arrived_at: float) -> None:
        """Post-ingest delivery: server-side filtering, stream and
        listener fan-out, and the trace's delivered terminal."""
        obs = self.obs
        stream = self.streams.get(record.stream_id)
        if stream is not None:
            if not self.filters.stream_allows(record.stream_id,
                                              stream.config.filter):
                stream.records_suppressed += 1
                if obs is not None:
                    obs.tracer.mark_dropped(
                        trace, "server_filter", "cross_user_condition")
                    self._counter("records_dropped", stage="server_filter",
                                  reason="cross_user_condition").inc()
                return
            stream.deliver(record)
        if obs is not None:
            obs.tracer.span(trace, "stream_delivery", start=arrived_at,
                            listeners=len(self._record_listeners))
            obs.tracer.mark_delivered(trace)
        for listener in list(self._record_listeners):
            listener(record)

    def _on_location_update(self, payload: dict) -> None:
        self.database.update_location(
            payload["user_id"], payload["lon"], payload["lat"],
            payload.get("place"), payload["timestamp"])
        self.filters.observe_location(payload["user_id"], payload.get("place"))
        # Geo-qualified multicast memberships may have changed: the
        # §3.2 geo-fenced pattern (streams follow users as they move).
        for multicast in list(self.multicasts):
            if multicast.query.is_geo_dependent:
                multicast.refresh()

    def _on_osn_action(self, action: OsnAction) -> None:
        if self.crashed:
            # Plug-in listeners call us synchronously (no network hop
            # to drop the message): a dead process simply misses them.
            self.actions_lost_crashed += 1
            return
        self.actions_received += 1
        self._recent_action_latencies.append(self.world.now - action.created_at)
        if self.obs is not None:
            self.obs.telemetry.timer(
                "osn_action_delay", platform=action.platform).observe(
                    self.world.now - action.created_at)
        self.database.store_action(action)
        modality = _PLATFORM_MODALITY.get(action.platform)
        if modality is not None:
            self.filters.mark_osn_active(action.user_id, modality)
        self._maintain_friendships(action)
        for listener in list(self._action_listeners):
            listener(action)
        self._route_action_triggers(action)

    def _maintain_friendships(self, action: OsnAction) -> None:
        """Classify friendship actions to keep OSN links fresh (§4)."""
        friend_id = action.payload.get("friend_id")
        if friend_id is None:
            return
        if action.type is ActionType.FRIEND_ADD:
            self.database.add_friend(action.user_id, friend_id)
        elif action.type is ActionType.FRIEND_REMOVE:
            self.database.remove_friend(action.user_id, friend_id)

    def _route_action_triggers(self, action: OsnAction) -> None:
        """Decide which devices must sense because of this action."""
        own_device = self.database.device_of(action.user_id)
        if own_device is not None:
            self.triggers.send_action_trigger(own_device, action)
        # Streams conditioned on *this* user's OSN activity from other
        # devices (cross-user OSN conditions) get a targeted trigger.
        # The index holds exactly those streams; iterating in creation
        # order reproduces the old full-scan's fan-out order.
        bucket = self._osn_trigger_index.get(action.user_id)
        if not bucket:
            return
        order = self._stream_order
        for stream in sorted(bucket.values(),
                             key=lambda s: order.get(s.stream_id, 0)):
            if (stream.destroyed or stream.device_id == own_device
                    or self.streams.get(stream.stream_id) is not stream):
                continue
            self.triggers.send_action_trigger(
                stream.device_id, action, stream_ids=[stream.stream_id])

    # -- observability ---------------------------------------------------------------------

    def action_latencies(self) -> list[float]:
        """OSN action → server arrival delays (Table 3's first row)."""
        return list(self._recent_action_latencies)

    def health(self) -> dict:
        """Degraded-operation status of the server middleware.

        Uniform :class:`repro.obs.Healthcheck` schema (``status`` /
        ``detail`` / ``counters``) with the counters also flattened at
        the top level for older consumers.
        """
        if self.crashed:
            status = STATUS_DOWN
            detail = f"server {self.address}: crashed"
        else:
            status = Healthcheck.status_for(self.mqtt.connected)
            detail = (f"server {self.address}: "
                      f"{'connected' if self.mqtt.connected else 'disconnected'}"
                      f", {self.records_received} records ingested")
        extras: dict = {
            "connected": self.mqtt.connected,
            "last_seen": self.last_record_at,
            "last_net_drop": self.network.last_drop(self.address),
            "database": self.database.health(),
        }
        if self.durability is not None:
            extras["durability"] = self.durability.health()
        return Healthcheck.build(
            status=status,
            detail=detail,
            counters={
                "records_received": self.records_received,
                "duplicates_dropped": self.records_duplicate,
                "acks_sent": self.acks_sent,
                "actions_received": self.actions_received,
                "connection_losses": self.mqtt.connection_losses,
                "reconnects": self.mqtt.reconnects,
                "net_drops": self.network.drop_count(self.address),
                "crashes": self.crashes,
                "restarts": self.restarts,
                "actions_lost_crashed": self.actions_lost_crashed,
            },
            **extras,
        )
