"""Server Filter Manager: cross-user conditions over incoming streams.

"These filters can include data from multiple users, as streams coming
from one user can be conditioned on data coming from another user"
(§3.2).  The manager keeps a per-user context cache fed by every
incoming record and by OSN actions, and suppresses records whose
cross-user conditions do not hold.

Hot-path design: streams register their filters as *gates*.  A gate
pre-extracts the cross-user conditions once, records which
``(user, modality)`` context cells they read, and caches its verdict.
Incoming records only invalidate the gates that actually depend on the
modality they carry — so a stream conditioned on user A's activity is
never re-evaluated because user B sent an accelerometer sample.  Time
only enters through OSN activity windows, so a cached verdict computed
while a window was open carries a ``valid_until`` at the earliest
window expiry; everything else stays valid until an invalidation.
"""

from __future__ import annotations

import math
from typing import Any

from repro.core.common.conditions import Condition, Operator
from repro.core.common.filters import Filter
from repro.core.common.modality import (
    CLASSIFIED_FOR,
    OSN_MODALITIES,
    ModalityType,
    ModalityValue,
)
from repro.core.common.granularity import Granularity
from repro.core.common.records import StreamRecord
from repro.simkit.world import World

#: How long an OSN action keeps a user's platform modality "active"
#: for cross-user conditions.
OSN_ACTIVE_WINDOW_S = 120.0

_VIRTUAL_OF_SENSOR = {sensor: virtual for virtual, sensor in CLASSIFIED_FOR.items()}


class _Gate:
    """One stream's cross-user conditions plus its cached verdict."""

    __slots__ = ("source", "cross", "deps", "verdict", "valid_until")

    def __init__(self, source: Filter):
        self.source = source
        self.cross: list[Condition] = source.server_conditions()
        self.deps: frozenset[tuple[str, ModalityType]] = frozenset(
            (condition.user_id, condition.modality)
            for condition in self.cross)
        self.verdict: bool | None = None
        self.valid_until = -math.inf


class ServerFilterManager:
    """Per-user context plus cross-user condition evaluation."""

    def __init__(self, world: World):
        self._world = world
        self._context: dict[str, dict[ModalityType, Any]] = {}
        self._osn_active_until: dict[tuple[str, ModalityType], float] = {}
        self.conditions_evaluated = 0
        #: Stream gates keyed by stream id, and the inverted dependency
        #: index (context cell -> gate keys) that drives invalidation.
        self._gates: dict[str, _Gate] = {}
        self._dependents: dict[tuple[str, ModalityType], set[str]] = {}
        self.gate_cache_hits = 0
        self.gate_evaluations = 0

    # -- context maintenance ---------------------------------------------------

    def observe_record(self, record: StreamRecord) -> None:
        """Fold an incoming record into its user's context."""
        user_context = self._context.setdefault(record.user_id, {})
        user_context[record.modality] = record.value
        self._invalidate(record.user_id, record.modality)
        if record.granularity is Granularity.CLASSIFIED:
            virtual = _VIRTUAL_OF_SENSOR.get(record.modality)
            if virtual is not None:
                user_context[virtual] = record.value
                self._invalidate(record.user_id, virtual)

    def observe_batch(self, batch) -> None:
        """Columnar :meth:`observe_record`: fold a whole batch into the
        context without materializing record objects."""
        # Mutation-for-mutation identical to observe_record per
        # reconstructed record in batch order — the batched ingest
        # fast path uses it when nothing downstream needs the records,
        # so the context (and every later gate verdict) cannot tell
        # the two apart.
        modality_of: dict[str, ModalityType] = {}
        context = self._context
        classified = Granularity.CLASSIFIED.value
        for user_id, wire_modality, value, granularity in zip(
                batch.user_ids, batch.modalities, batch.values,
                batch.granularities):
            modality = modality_of.get(wire_modality)
            if modality is None:
                modality = modality_of[wire_modality] = (
                    ModalityType(wire_modality))
            user_context = context.setdefault(user_id, {})
            user_context[modality] = value
            self._invalidate(user_id, modality)
            if granularity == classified:
                virtual = _VIRTUAL_OF_SENSOR.get(modality)
                if virtual is not None:
                    user_context[virtual] = value
                    self._invalidate(user_id, virtual)

    def observe_location(self, user_id: str, place: str | None) -> None:
        if place is not None:
            self._context.setdefault(user_id, {})[ModalityType.PLACE] = place
            self._invalidate(user_id, ModalityType.PLACE)

    def mark_osn_active(self, user_id: str, modality: ModalityType,
                        window_s: float = OSN_ACTIVE_WINDOW_S) -> None:
        self._osn_active_until[(user_id, modality)] = self._world.now + window_s
        self._invalidate(user_id, modality)

    def context_value(self, user_id: str, modality: ModalityType) -> Any:
        if modality in OSN_MODALITIES:
            until = self._osn_active_until.get((user_id, modality), -1.0)
            return ModalityValue.ACTIVE if self._world.now < until else "inactive"
        return self._context.get(user_id, {}).get(modality)

    # -- stream gates ----------------------------------------------------------

    def stream_allows(self, key: str, stream_filter: Filter) -> bool:
        """Do ``stream_filter``'s cross-user conditions hold right now?

        Registration is implicit and keyed on the filter's identity, so
        a stream whose filter was swapped re-registers on first use.
        Verdicts are cached until a depended-on context cell changes or
        an OSN activity window involved in the verdict expires.
        """
        gate = self._gates.get(key)
        if gate is None or gate.source is not stream_filter:
            gate = self._register(key, stream_filter)
        if not gate.cross:
            return True
        if gate.verdict is not None and self._world.now < gate.valid_until:
            self.gate_cache_hits += 1
            return gate.verdict
        self.gate_evaluations += 1
        verdict, valid_until = self._evaluate(gate.cross)
        gate.verdict = verdict
        gate.valid_until = valid_until
        return verdict

    def drop_gate(self, key: str) -> None:
        """Forget a destroyed stream's gate."""
        gate = self._gates.pop(key, None)
        if gate is None:
            return
        for dep in gate.deps:
            dependents = self._dependents.get(dep)
            if dependents is not None:
                dependents.discard(key)
                if not dependents:
                    del self._dependents[dep]

    def _register(self, key: str, stream_filter: Filter) -> _Gate:
        self.drop_gate(key)
        gate = _Gate(stream_filter)
        self._gates[key] = gate
        for dep in gate.deps:
            self._dependents.setdefault(dep, set()).add(key)
        return gate

    def _invalidate(self, user_id: str, modality: ModalityType) -> None:
        dependents = self._dependents.get((user_id, modality))
        if not dependents:
            return
        for key in dependents:
            self._gates[key].verdict = None

    # -- evaluation -----------------------------------------------------------------

    def cross_user_conditions_satisfied(
            self, conditions: list[Condition]) -> bool:
        """Evaluate the user-qualified conditions of a stream's filter."""
        satisfied, _ = self._evaluate(
            [condition for condition in conditions if condition.is_cross_user])
        return satisfied

    def _evaluate(self, cross: list[Condition]) -> tuple[bool, float]:
        """Evaluate pre-filtered cross-user conditions; also returns
        how long the verdict stays valid absent context changes (open
        OSN windows are the only time-dependent input)."""
        now = self._world.now
        valid_until = math.inf
        for condition in cross:
            self.conditions_evaluated += 1
            if condition.modality in OSN_MODALITIES:
                until = self._osn_active_until.get(
                    (condition.user_id, condition.modality), -1.0)
                active = now < until
                if active:
                    valid_until = min(valid_until, until)
                observed: Any = (ModalityValue.ACTIVE if active
                                 else "inactive")
                # "equals active" means the user acted recently; other
                # operators compare against the same activity flag.
                if condition.operator is Operator.EQUALS and \
                        condition.value == ModalityValue.ACTIVE:
                    if not active:
                        return False, valid_until
                    continue
            else:
                observed = self._context.get(
                    condition.user_id, {}).get(condition.modality)
            if not condition.evaluate(observed):
                return False, valid_until
        return True, valid_until
