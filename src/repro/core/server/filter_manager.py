"""Server Filter Manager: cross-user conditions over incoming streams.

"These filters can include data from multiple users, as streams coming
from one user can be conditioned on data coming from another user"
(§3.2).  The manager keeps a per-user context cache fed by every
incoming record and by OSN actions, and suppresses records whose
cross-user conditions do not hold.
"""

from __future__ import annotations

from typing import Any

from repro.core.common.conditions import Condition, Operator
from repro.core.common.modality import (
    CLASSIFIED_FOR,
    OSN_MODALITIES,
    ModalityType,
    ModalityValue,
)
from repro.core.common.granularity import Granularity
from repro.core.common.records import StreamRecord
from repro.simkit.world import World

#: How long an OSN action keeps a user's platform modality "active"
#: for cross-user conditions.
OSN_ACTIVE_WINDOW_S = 120.0

_VIRTUAL_OF_SENSOR = {sensor: virtual for virtual, sensor in CLASSIFIED_FOR.items()}


class ServerFilterManager:
    """Per-user context plus cross-user condition evaluation."""

    def __init__(self, world: World):
        self._world = world
        self._context: dict[str, dict[ModalityType, Any]] = {}
        self._osn_active_until: dict[tuple[str, ModalityType], float] = {}
        self.conditions_evaluated = 0

    # -- context maintenance ---------------------------------------------------

    def observe_record(self, record: StreamRecord) -> None:
        """Fold an incoming record into its user's context."""
        user_context = self._context.setdefault(record.user_id, {})
        user_context[record.modality] = record.value
        if record.granularity is Granularity.CLASSIFIED:
            virtual = _VIRTUAL_OF_SENSOR.get(record.modality)
            if virtual is not None:
                user_context[virtual] = record.value

    def observe_location(self, user_id: str, place: str | None) -> None:
        if place is not None:
            self._context.setdefault(user_id, {})[ModalityType.PLACE] = place

    def mark_osn_active(self, user_id: str, modality: ModalityType,
                        window_s: float = OSN_ACTIVE_WINDOW_S) -> None:
        self._osn_active_until[(user_id, modality)] = self._world.now + window_s

    def context_value(self, user_id: str, modality: ModalityType) -> Any:
        if modality in OSN_MODALITIES:
            until = self._osn_active_until.get((user_id, modality), -1.0)
            return ModalityValue.ACTIVE if self._world.now < until else "inactive"
        return self._context.get(user_id, {}).get(modality)

    # -- evaluation -----------------------------------------------------------------

    def cross_user_conditions_satisfied(
            self, conditions: list[Condition]) -> bool:
        """Evaluate the user-qualified conditions of a stream's filter."""
        for condition in conditions:
            if not condition.is_cross_user:
                continue
            self.conditions_evaluated += 1
            observed = self.context_value(condition.user_id, condition.modality)
            if condition.modality in OSN_MODALITIES:
                # "equals active" means the user acted recently; other
                # operators compare against the same activity flag.
                if condition.operator is Operator.EQUALS and \
                        condition.value == ModalityValue.ACTIVE:
                    if observed != ModalityValue.ACTIVE:
                        return False
                    continue
            if not condition.evaluate(observed):
                return False
        return True
