"""Aggregators: many streams in, one joined stream out (§3.1).

"In an aggregator, data from individual streams is multiplexed to the
same join stream, which can further be processed as any other stream
in the system" — so an aggregator exposes the same listener/filter
surface as a stream and remembers arrival order.
"""

from __future__ import annotations

from typing import Callable

from repro.core.common.filters import Filter
from repro.core.common.records import StreamRecord
from repro.core.server.server_stream import ServerStream

RecordListener = Callable[[StreamRecord], None]


class Aggregator:
    """Wraps streams into a single aggregated stream."""

    def __init__(self, name: str):
        self.name = name
        self._members: list[ServerStream] = []
        self._listeners: list[RecordListener] = []
        self._filter = Filter()
        self.records_out = 0

    # -- membership ------------------------------------------------------------

    def add_stream(self, stream: ServerStream) -> "Aggregator":
        """Multiplex ``stream`` into this aggregator."""
        if stream not in self._members:
            self._members.append(stream)
            stream.add_listener(self._on_record)
        return self

    def remove_stream(self, stream: ServerStream) -> None:
        if stream in self._members:
            self._members.remove(stream)
            stream.remove_listener(self._on_record)

    @classmethod
    def wrap(cls, name: str, streams: list[ServerStream]) -> "Aggregator":
        """Build an aggregator over ``streams`` in one call."""
        aggregator = cls(name)
        for stream in streams:
            aggregator.add_stream(stream)
        return aggregator

    def member_count(self) -> int:
        return len(self._members)

    # -- stream-like surface ------------------------------------------------------

    def add_listener(self, listener: RecordListener) -> "Aggregator":
        self._listeners.append(listener)
        return self

    def set_filter(self, aggregate_filter: Filter) -> "Aggregator":
        """Post-filter the joined stream (local, value-based conditions).

        Evaluated against each record's classified value: a condition
        on the record's own modality family passes records through,
        any other modality is ignored (the member streams already did
        their own filtering).
        """
        self._filter = aggregate_filter
        return self

    def _on_record(self, record: StreamRecord) -> None:
        for condition in self._filter.conditions:
            if condition.is_cross_user:
                continue
            if not condition.evaluate(record.value):
                return
        self.records_out += 1
        for listener in list(self._listeners):
            listener(record)
