"""SenSocial server middleware (the Java-library half of Figure 3).

The server component registers users/devices, taps OSN plug-ins,
remotely creates and manages streams on mobiles (XML configs over
MQTT), triggers OSN-action-based one-off sensing, filters incoming
streams with cross-user conditions, aggregates related streams, and
manages multicast streams over geo- or OSN-selected user groups.
"""

from repro.core.server.storage import ServerDatabase
from repro.core.server.server_stream import ServerStream
from repro.core.server.aggregator import Aggregator
from repro.core.server.trigger import TriggerManager
from repro.core.server.filter_manager import ServerFilterManager
from repro.core.server.multicast import MulticastQuery, MulticastStream
from repro.core.server.manager import ServerSenSocialManager

__all__ = [
    "Aggregator",
    "MulticastQuery",
    "MulticastStream",
    "ServerDatabase",
    "ServerFilterManager",
    "ServerSenSocialManager",
    "ServerStream",
    "TriggerManager",
]
