"""Idempotent-ingest support: a sliding dedup window of record ids.

QoS-1 transport and the mobile outbox both guarantee *at-least-once*
delivery; the server turns that into *exactly-once* ingest by
remembering the last N record ids and discarding re-appearances.  The
window is bounded (memory stays flat under heavy traffic) and N is
sized far above any plausible retransmission horizon: a replay only
slips through if more than ``window`` fresh records arrived in
between, by which point every QoS layer has long given up retrying.
"""

from __future__ import annotations

from collections import OrderedDict


class RecordDeduper:
    """Sliding-window set of recently seen record ids."""

    def __init__(self, window: int = 4096):
        if window <= 0:
            raise ValueError(f"dedup window must be > 0, got {window}")
        self.window = window
        self._seen: "OrderedDict[str, None]" = OrderedDict()
        self.duplicates = 0

    def seen(self, record_id: str) -> bool:
        """Record ``record_id``; True when it is a duplicate."""
        if record_id in self._seen:
            self._seen.move_to_end(record_id)
            self.duplicates += 1
            return True
        self._seen[record_id] = None
        while len(self._seen) > self.window:
            self._seen.popitem(last=False)
        return False

    def remember(self, record_id: str) -> None:
        """Insert ``record_id`` without counting a duplicate.

        Used when restoring the window after a crash (journal replay)
        and when a record is terminally disposed without ingest (shed
        or quarantined) — a later retransmission must dedup, but the
        insertion itself is not a duplicate sighting.
        """
        if record_id in self._seen:
            self._seen.move_to_end(record_id)
            return
        self._seen[record_id] = None
        while len(self._seen) > self.window:
            self._seen.popitem(last=False)

    def snapshot(self) -> list[str]:
        """Window contents oldest-first, for checkpoint persistence."""
        return list(self._seen)

    def __len__(self) -> int:
        return len(self._seen)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._seen
