"""Idempotent-ingest support: a sliding dedup window of record ids.

QoS-1 transport and the mobile outbox both guarantee *at-least-once*
delivery; the server turns that into *exactly-once* ingest by
remembering the last N record ids and discarding re-appearances.  The
window is bounded (memory stays flat under heavy traffic) and N is
sized far above any plausible retransmission horizon: a replay only
slips through if more than ``window`` fresh records arrived in
between, by which point every QoS layer has long given up retrying.
"""

from __future__ import annotations

from collections import OrderedDict


class RecordDeduper:
    """Sliding-window set of recently seen record ids."""

    def __init__(self, window: int = 4096):
        if window <= 0:
            raise ValueError(f"dedup window must be > 0, got {window}")
        self.window = window
        self._seen: "OrderedDict[str, None]" = OrderedDict()
        self.duplicates = 0
        #: Ids folded in from other shards and retained by the bound.
        self.replicated = 0

    def seen(self, record_id: str) -> bool:
        """Record ``record_id``; True when it is a duplicate."""
        if record_id in self._seen:
            self._seen.move_to_end(record_id)
            self.duplicates += 1
            return True
        self._seen[record_id] = None
        self._evict_overflow(self._seen)
        return False

    def check_batch(self, record_ids) -> list[bool]:
        """Per-id duplicate flags: the window run over a whole batch."""
        # Semantically identical to calling ``seen`` per id in order
        # (same counters, same final window contents, same flags) —
        # the batched ingest path uses it so one call replaces N, with
        # the dict lookups and the eviction bound hoisted out of the
        # hot loop.  ``None`` ids (id-less payloads) are never deduped
        # and flag fresh, matching the per-record path.
        window = self._seen
        flags = []
        for record_id in record_ids:
            duplicate = record_id is not None and record_id in window
            if duplicate:
                window.move_to_end(record_id)
                self.duplicates += 1
            elif record_id is not None:
                window[record_id] = None
                # Evict inline (not once at the end): a batch larger
                # than the window's free slack must age out ids *as it
                # inserts*, exactly as N sequential ``seen`` calls
                # would, so a late duplicate of an id the batch itself
                # evicted flags fresh.
                self._evict_overflow(window)
            flags.append(duplicate)
        return flags

    def remember(self, record_id: str) -> None:
        """Insert ``record_id`` without counting a duplicate.

        Used when restoring the window after a crash (journal replay)
        and when a record is terminally disposed without ingest (shed
        or quarantined) — a later retransmission must dedup, but the
        insertion itself is not a duplicate sighting.
        """
        if record_id in self._seen:
            self._seen.move_to_end(record_id)
            return
        self._seen[record_id] = None
        self._evict_overflow(self._seen)

    def merge_replicated(self, record_ids) -> int:
        """Fold another shard's window into this one, bounded.

        Cluster rebalances and drains replicate a departing shard's
        dedup ids onto the survivors so a retransmission of a record
        the departed shard acknowledged is absorbed, not re-ingested.
        Replicated ids enter as the *oldest* entries: they evict before
        this shard's own recent ids, and the merged window obeys the
        same size bound as local inserts — repeated rebalances can
        never grow a survivor's window past ``window``.

        Returns how many replicated ids the bounded window retained.
        """
        fresh = [record_id for record_id in record_ids
                 if record_id not in self._seen]
        if not fresh:
            return 0
        merged: "OrderedDict[str, None]" = OrderedDict()
        for record_id in fresh:
            merged[record_id] = None
        merged.update(self._seen)
        self._evict_overflow(merged)
        retained = sum(1 for record_id in fresh if record_id in merged)
        self._seen = merged
        self.replicated += retained
        return retained

    def _evict_overflow(self, window: "OrderedDict[str, None]") -> None:
        """The one bounded-eviction path: oldest-first to the bound."""
        # ``seen``/``remember``/``check_batch``/``merge_replicated``
        # all funnel through here so the bound can never drift between
        # the singleton, batch and replication paths.
        limit = self.window
        while len(window) > limit:
            window.popitem(last=False)

    def snapshot(self) -> list[str]:
        """Window contents oldest-first, for checkpoint persistence."""
        return list(self._seen)

    def __len__(self) -> int:
        return len(self._seen)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._seen


#: The batch-ingest spec names the window ``DedupWindow``; keep both
#: names pointing at the one implementation.
DedupWindow = RecordDeduper
