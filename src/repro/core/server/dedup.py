"""Idempotent-ingest support: a sliding dedup window of record ids.

QoS-1 transport and the mobile outbox both guarantee *at-least-once*
delivery; the server turns that into *exactly-once* ingest by
remembering the last N record ids and discarding re-appearances.  The
window is bounded (memory stays flat under heavy traffic) and N is
sized far above any plausible retransmission horizon: a replay only
slips through if more than ``window`` fresh records arrived in
between, by which point every QoS layer has long given up retrying.
"""

from __future__ import annotations

from collections import OrderedDict


class RecordDeduper:
    """Sliding-window set of recently seen record ids."""

    def __init__(self, window: int = 4096):
        if window <= 0:
            raise ValueError(f"dedup window must be > 0, got {window}")
        self.window = window
        self._seen: "OrderedDict[str, None]" = OrderedDict()
        self.duplicates = 0
        #: Ids folded in from other shards and retained by the bound.
        self.replicated = 0

    def seen(self, record_id: str) -> bool:
        """Record ``record_id``; True when it is a duplicate."""
        if record_id in self._seen:
            self._seen.move_to_end(record_id)
            self.duplicates += 1
            return True
        self._seen[record_id] = None
        while len(self._seen) > self.window:
            self._seen.popitem(last=False)
        return False

    def remember(self, record_id: str) -> None:
        """Insert ``record_id`` without counting a duplicate.

        Used when restoring the window after a crash (journal replay)
        and when a record is terminally disposed without ingest (shed
        or quarantined) — a later retransmission must dedup, but the
        insertion itself is not a duplicate sighting.
        """
        if record_id in self._seen:
            self._seen.move_to_end(record_id)
            return
        self._seen[record_id] = None
        while len(self._seen) > self.window:
            self._seen.popitem(last=False)

    def merge_replicated(self, record_ids) -> int:
        """Fold another shard's window into this one, bounded.

        Cluster rebalances and drains replicate a departing shard's
        dedup ids onto the survivors so a retransmission of a record
        the departed shard acknowledged is absorbed, not re-ingested.
        Replicated ids enter as the *oldest* entries: they evict before
        this shard's own recent ids, and the merged window obeys the
        same size bound as local inserts — repeated rebalances can
        never grow a survivor's window past ``window``.

        Returns how many replicated ids the bounded window retained.
        """
        fresh = [record_id for record_id in record_ids
                 if record_id not in self._seen]
        if not fresh:
            return 0
        merged: "OrderedDict[str, None]" = OrderedDict()
        for record_id in fresh:
            merged[record_id] = None
        merged.update(self._seen)
        while len(merged) > self.window:
            merged.popitem(last=False)
        retained = sum(1 for record_id in fresh if record_id in merged)
        self._seen = merged
        self.replicated += retained
        return retained

    def snapshot(self) -> list[str]:
        """Window contents oldest-first, for checkpoint persistence."""
        return list(self._seen)

    def __len__(self) -> int:
        return len(self._seen)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._seen
