"""Multicast streams: one handle over many geographically or
OSN-related devices (§3.1/§3.2).

A multicast stream selects its member users through a query over the
server database — geographic location ("users in Paris", "users within
2 km of a point") and/or OSN links ("friends of A") — instantiates a
per-device stream on every member, and transparently distributes
filters and settings to all of them.  ``refresh()`` re-evaluates the
query; the manager calls it when member-relevant state (a location
update) changes, which implements the §3.2 geo-fenced example where
streams follow a moving person.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.common.errors import MiddlewareError
from repro.core.common.filters import Filter
from repro.core.common.granularity import Granularity
from repro.core.common.modality import ModalityType
from repro.core.common.records import StreamRecord
from repro.core.common.stream_config import StreamMode
from repro.core.server.server_stream import ServerStream

RecordListener = Callable[[StreamRecord], None]


@dataclass(frozen=True)
class MulticastQuery:
    """Member selection: geo and OSN clauses are ANDed together."""

    #: Users whose classified place equals this city name.
    place: str | None = None
    #: Users within ``near_km`` of ``near_point`` ([lon, lat]).
    near_point: tuple[float, float] | None = None
    near_km: float = 5.0
    #: Users currently collocated with this user (§3.2's "sensor data
    #: gathering from users who are collocated with a specific person");
    #: membership follows the person as they move.
    near_user: str | None = None
    near_user_km: float = 1.0
    #: OSN friends of this user (within ``hops`` friendship hops).
    friends_of: str | None = None
    hops: int = 1
    #: Explicit user list (intersected with the other clauses).
    user_ids: tuple[str, ...] | None = None

    def __post_init__(self):
        if (self.place is None and self.near_point is None
                and self.near_user is None and self.friends_of is None
                and self.user_ids is None):
            raise MiddlewareError("a multicast query needs at least one clause")
        if self.hops < 1:
            raise MiddlewareError(f"hops must be >= 1, got {self.hops}")
        if self.near_user_km <= 0:
            raise MiddlewareError(
                f"near_user_km must be > 0, got {self.near_user_km}")

    @property
    def is_geo_dependent(self) -> bool:
        """Does membership depend on anyone's location?"""
        return (self.place is not None or self.near_point is not None
                or self.near_user is not None)


class MulticastStream:
    """Related streams of multiple clients abstracted into one entity."""

    def __init__(self, manager, modality: ModalityType,
                 granularity: Granularity, query: MulticastQuery, *,
                 stream_filter: Filter | None = None,
                 settings: dict | None = None,
                 mode: StreamMode = StreamMode.CONTINUOUS,
                 name: str | None = None):
        self._manager = manager
        # Naming is scoped to the owning manager (not a module global):
        # back-to-back simulations in one process must produce the same
        # stream names.
        self.name = name or manager.allocate_multicast_name()
        self.modality = modality
        self.granularity = granularity
        self.query = query
        self.mode = mode
        self._filter = stream_filter if stream_filter is not None else Filter()
        self._settings = dict(settings or {})
        self._listeners: list[RecordListener] = []
        self._members: dict[str, ServerStream] = {}  # user_id -> stream
        self.destroyed = False
        self.refreshes = 0

    # -- membership ---------------------------------------------------------

    def members(self) -> list[str]:
        return sorted(self._members)

    def member_stream(self, user_id: str) -> ServerStream | None:
        return self._members.get(user_id)

    def refresh(self) -> tuple[list[str], list[str]]:
        """Re-evaluate the query; returns (joined, left) user ids."""
        if self.destroyed:
            return [], []
        self.refreshes += 1
        selected = set(self._manager.select_users(self.query))
        joined, left = [], []
        for user_id in sorted(selected - set(self._members)):
            stream = self._manager.create_stream(
                user_id, self.modality, self.granularity,
                stream_filter=self._filter, settings=self._settings,
                mode=self.mode)
            for listener in self._listeners:
                stream.add_listener(listener)
            self._members[user_id] = stream
            joined.append(user_id)
        for user_id in sorted(set(self._members) - selected):
            self._members.pop(user_id).destroy()
            left.append(user_id)
        return joined, left

    # -- stream-like surface ---------------------------------------------------

    def add_listener(self, listener: RecordListener) -> "MulticastStream":
        """Listen on every member stream, present and future."""
        self._listeners.append(listener)
        for stream in self._members.values():
            stream.add_listener(listener)
        return self

    def set_filter(self, stream_filter: Filter) -> "MulticastStream":
        """Distribute a filter to every member device (§3.1)."""
        self._filter = stream_filter
        for stream in self._members.values():
            stream.set_filter(stream_filter)
        return self

    def configure(self, settings: dict) -> "MulticastStream":
        self._settings.update(settings)
        for stream in self._members.values():
            stream.configure(settings)
        return self

    def destroy(self) -> None:
        for stream in self._members.values():
            stream.destroy()
        self._members.clear()
        self.destroyed = True
        self._manager.on_multicast_destroyed(self)
