"""Trigger Manager: the controlled server→mobile communication link.

"Triggers can carry either stream configuration information or signals
to start sensing based on an OSN action" (§3.2).  Action triggers are
compiled into a JSON-formatted string and handed to the MQTT broker
(§4).  Server-side processing (querying the user registry, compiling
the trigger) takes a few seconds — the ~9 s gap between Table 3's
OSN-to-server and OSN-to-mobile delays — modelled as a delay drawn
before the publish.
"""

from __future__ import annotations

import json

from repro.core.common.stream_config import StreamConfig
from repro.core.mobile.mqtt_service import (
    device_config_topic,
    device_destroy_topic,
    device_rate_topic,
    device_trigger_topic,
)
from repro.device import calibration
from repro.mqtt.client import MqttClient
from repro.net.latency import GaussianLatency, LatencyModel
from repro.osn.actions import OsnAction
from repro.simkit.world import World


class TriggerManager:
    """Publishes triggers, stream configs and destroy notices to devices."""

    def __init__(self, world: World, client: MqttClient,
                 processing_delay: LatencyModel | None = None):
        self._world = world
        self._client = client
        if processing_delay is None:
            processing_delay = GaussianLatency(
                calibration.SERVER_PROCESSING_MEAN_S,
                calibration.SERVER_PROCESSING_SIGMA_S,
                floor=0.5)
        self._processing_delay = processing_delay
        self._rng = world.rng("trigger-manager")
        self.triggers_sent = 0
        self.configs_pushed = 0
        self.rates_pushed = 0

    def send_action_trigger(self, device_id: str, action: OsnAction,
                            stream_ids: list[str] | None = None) -> None:
        """Compile the OSN action into a JSON trigger and push it.

        ``stream_ids`` targets specific social-event streams; ``None``
        lets every event-based stream on the device react (the user's
        own actions).
        """
        payload = json.dumps({
            "action": action.to_document(),
            "stream_ids": stream_ids,
        })
        delay = self._processing_delay.sample(self._rng)
        self._world.scheduler.schedule(delay, self._publish,
                                       device_trigger_topic(device_id), payload)

    def push_config(self, config: StreamConfig) -> None:
        """Notify the device to download/merge a stream definition."""
        self.configs_pushed += 1
        self._client.publish(device_config_topic(config.device_id),
                             config.to_xml(), qos=1)

    def push_rate(self, device_id: str, factor: float,
                  reason: str = "") -> None:
        """Push a sensing-rate backoff/restore (SLO control loop)."""
        self.rates_pushed += 1
        self._client.publish(device_rate_topic(device_id),
                             json.dumps({"factor": factor,
                                         "reason": reason}), qos=1)

    def push_destroy(self, device_id: str, stream_id: str) -> None:
        self._client.publish(device_destroy_topic(device_id),
                             json.dumps({"stream_id": stream_id}), qos=1)

    def _publish(self, topic: str, payload: str) -> None:
        self.triggers_sent += 1
        self._client.publish(topic, payload, qos=1)
