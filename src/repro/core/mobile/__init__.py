"""SenSocial mobile middleware (the Android-library half).

Components mirror Figure 3: the SenSocial Manager (entry point), the
Sensor Manager (via :mod:`repro.sensing`), the Filter Manager (context
monitors + condition gating), the Privacy Policy Manager, and the MQTT
service that receives remote triggers and stream configurations.
"""

from repro.core.mobile.context import ContextCache
from repro.core.mobile.privacy import (
    PrivacyPolicy,
    PrivacyPolicyDescriptor,
    PrivacyPolicyManager,
)
from repro.core.mobile.stream import MobileStream, StreamState
from repro.core.mobile.filter_manager import MobileFilterManager
from repro.core.mobile.mqtt_service import MqttService
from repro.core.mobile.manager import Device, MobileSenSocialManager, User

__all__ = [
    "ContextCache",
    "Device",
    "MobileFilterManager",
    "MobileSenSocialManager",
    "MobileStream",
    "MqttService",
    "PrivacyPolicy",
    "PrivacyPolicyDescriptor",
    "PrivacyPolicyManager",
    "StreamState",
    "User",
]
