"""The mobile SenSocial Manager: entry point of the client middleware.

Implements the paper's client API (Figure 7): ``get_sensocial_manager``
→ ``get_user`` → ``get_device`` → ``get_stream(modality, granularity)``
→ ``set_filter`` / ``register_listener``, plus the machinery behind it:
stream lifecycle, privacy re-screening, condition-gated duty cycles,
OSN trigger handling, and periodic location reporting to the server.

The uplink speaks two wire shapes.  Per-record transport (the default)
sends one ``stream-data`` message per sensed record.  With ``batch_max``
set, the store-and-forward outbox coalesces queued records into
columnar ``stream-batch`` envelopes (:mod:`repro.core.common.batch`):
a fresh record on a connected link still flushes immediately as a
batch of one, while backlog — reconnect flushes, retry sweeps — leaves
in chunks of up to ``batch_max``.  Either way the byte counters, link
draws and ack bookkeeping are record-for-record identical; batching
only amortizes the per-message overhead.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.classify import ClassifierRegistry
from repro.core.common.batch import RecordBatch
from repro.core.common.errors import StreamStateError
from repro.core.common.filters import Filter
from repro.core.common.granularity import Granularity
from repro.core.common.modality import ModalityType, OSN_MODALITIES
from repro.core.common.records import StreamRecord
from repro.core.common.stream_config import StreamConfig, StreamMode, merge_configs
from repro.core.mobile.filter_manager import MobileFilterManager
from repro.core.mobile.mqtt_service import MqttService
from repro.core.mobile.outbox import Outbox
from repro.core.mobile.privacy import PrivacyPolicyManager
from repro.core.mobile.stream import MobileStream, StreamState
from repro.device import calibration
from repro.device.phone import Smartphone
from repro.device.sensors.base import SensorReading
from repro.net.network import Network
from repro.obs import Healthcheck, Observability
from repro.sensing import ESSensorManager, SensingConfig
from repro.simkit.scheduler import PeriodicTask
from repro.simkit.world import World

#: Default period for reporting the device's location to the server
#: ("the user's geographic location is updated periodically at a time
#: interval that can be configured via the SenSocial Manager", §4).
DEFAULT_LOCATION_UPDATE_PERIOD_S = 300.0

#: Application-layer framing overhead per transmitted record, bytes.
_RECORD_FRAMING_BYTES = 96

#: How often the outbox sweep re-offers unacknowledged records.
OUTBOX_SWEEP_PERIOD_S = 15.0

#: Age after which an unacknowledged transmission is presumed lost.
OUTBOX_RETRY_TIMEOUT_S = 20.0

_PLATFORM_MODALITY = {
    "facebook": ModalityType.FACEBOOK_ACTIVITY,
    "twitter": ModalityType.TWITTER_ACTIVITY,
}


class User:
    """Client-side user handle (the paper's ``User`` instance)."""

    def __init__(self, manager: "MobileSenSocialManager", user_id: str):
        self._manager = manager
        self.user_id = user_id

    def get_device(self) -> "Device":
        return Device(self._manager)


class Device:
    """Client-side device handle exposing ``get_stream`` (Figure 7)."""

    def __init__(self, manager: "MobileSenSocialManager"):
        self._manager = manager
        self.device_id = manager.phone.device_id

    def get_stream(self, modality: ModalityType | str,
                   granularity: Granularity | str = Granularity.RAW,
                   send_to_server: bool = False) -> MobileStream:
        """Create a stream of ``modality`` at ``granularity``."""
        return self._manager.create_stream(
            ModalityType(modality), Granularity.parse(granularity),
            send_to_server=send_to_server)


class MobileSenSocialManager:
    """Singleton-per-device middleware core (mobile half)."""

    _instances: dict[str, "MobileSenSocialManager"] = {}

    def __init__(self, world: World, phone: Smartphone, network: Network,
                 classifiers: ClassifierRegistry | None = None,
                 broker_address: str = "mqtt-broker",
                 server_address: str = "sensocial-server",
                 batch_max: int | None = None):
        if batch_max is not None and batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        #: Batched record transport: coalesce up to this many queued
        #: records per wire envelope (``None`` = per-record transport).
        #: Flush boundaries come from the virtual clock (outbox sweep /
        #: reconnect), never wall time, so batching stays deterministic.
        self.batch_max = batch_max
        self.world = world
        self.phone = phone
        self.network = network
        self.server_address = server_address
        self.classifiers = classifiers if classifiers is not None else ClassifierRegistry()
        self.sensing = ESSensorManager.get_for(world, phone)
        self.filter_manager = MobileFilterManager(
            world, phone, self.sensing, self.classifiers)
        self.privacy = PrivacyPolicyManager()
        self.privacy.on_policy_change(self._rescreen_streams)
        self.mqtt = MqttService(world, network, self, broker_address)
        self.streams: dict[str, MobileStream] = {}
        self._tasks: dict[str, PeriodicTask] = {}
        self._stream_classifiers: dict[str, Any] = {}
        self._privacy_reasons: dict[str, str] = {}
        self._stream_seq = itertools.count(1)
        self._record_seq = itertools.count(1)
        self._location_task: PeriodicTask | None = None
        self._outbox_task: PeriodicTask | None = None
        self._location_classifier = self.classifiers.create(
            "location", phone.battery, phone.cpu)
        self.triggers_handled = 0
        self.records_transmitted = 0
        self.records_acked = 0
        #: Envelope accounting, the uplink mirror of the broker's
        #: ``batch_publishes`` / ``batched_records_routed``: wire
        #: envelopes sent and the records they carried.  Equal values
        #: mean every flush was a batch of one (no backlog coalesced).
        self.batches_sent = 0
        self.batched_records_sent = 0
        #: Server-pushed sensing-rate backoff: continuous duty cycles
        #: are stretched by this factor.  1.0 = nominal rate, and the
        #: multiplication by exactly 1.0 keeps unbackoffed runs
        #: bit-identical.
        self.rate_backoff_factor = 1.0
        self.rate_backoffs_applied = 0
        #: Observability hub (``None`` when tracing/telemetry is off).
        self.obs = Observability.of(world)
        #: Store-and-forward queue for server-bound records: survives
        #: partitions and broker restarts; drained by server acks.
        self.outbox = Outbox()
        self.outbox.on_evict = self._on_outbox_evict
        phone.on_protocol("stream-ack", self._on_stream_ack)
        phone.on_protocol("stream-batch-ack", self._on_stream_batch_ack)
        self.mqtt.client.on_connection_change(self._on_connectivity_change)
        #: OSN action → trigger arrival delays (Table 3's second row).
        self.trigger_latencies: list[float] = []
        phone.heap.allocate("sensocial-core",
                            calibration.HEAP_SENSOCIAL_CORE_MB,
                            calibration.HEAP_SENSOCIAL_CORE_OBJECTS)
        phone.cpu.set_load("sensocial-core", calibration.CPU_BASE_LOAD_PCT)

    # -- lifecycle --------------------------------------------------------

    @classmethod
    def get_sensocial_manager(cls, world: World, phone: Smartphone,
                              network: Network,
                              **kwargs) -> "MobileSenSocialManager":
        """The paper's ``SenSocialManager.getSenSocialManager()``."""
        manager = cls._instances.get(phone.device_id)
        if manager is None or manager.world is not world:
            manager = cls(world, phone, network, **kwargs)
            cls._instances[phone.device_id] = manager
        return manager

    @classmethod
    def reset_instances(cls) -> None:
        """Forget all per-device singletons (tests/benches)."""
        cls._instances.clear()
        ESSensorManager.reset_instances()

    def start(self, location_update_period_s: float | None =
              DEFAULT_LOCATION_UPDATE_PERIOD_S) -> None:
        """Connect to the broker, register, begin location reporting."""
        self.mqtt.start()
        if location_update_period_s is not None and self._location_task is None:
            self._location_task = self.world.scheduler.every(
                location_update_period_s, self._report_location,
                delay=location_update_period_s / 2)
        if self._outbox_task is None:
            self._outbox_task = self.world.scheduler.every(
                OUTBOX_SWEEP_PERIOD_S, self._outbox_sweep,
                delay=OUTBOX_SWEEP_PERIOD_S)

    def stop(self) -> None:
        for stream_id in list(self.streams):
            self.destroy_stream(stream_id)
        if self._location_task is not None:
            self._location_task.cancel()
            self._location_task = None
        if self._outbox_task is not None:
            self._outbox_task.cancel()
            self._outbox_task = None
        self.mqtt.stop()

    # -- the paper's client API ------------------------------------------------

    def get_user_id(self) -> str:
        return self.phone.user_id

    def get_user(self, user_id: str) -> User:
        return User(self, user_id)

    # -- stream lifecycle ----------------------------------------------------------

    def create_stream(self, modality: ModalityType | str,
                      granularity: Granularity | str = Granularity.RAW, *,
                      stream_filter: Filter | None = None,
                      mode: StreamMode = StreamMode.CONTINUOUS,
                      settings: dict | None = None,
                      send_to_server: bool = False,
                      created_by: str = "mobile",
                      stream_id: str | None = None) -> MobileStream:
        """Create and activate a stream on this device."""
        modality = ModalityType(modality)
        granularity = Granularity.parse(granularity)
        if stream_id is None:
            stream_id = f"{self.phone.device_id}-s{next(self._stream_seq)}"
        config = StreamConfig(
            stream_id=stream_id,
            device_id=self.phone.device_id,
            modality=modality,
            granularity=granularity,
            mode=mode,
            filter=stream_filter if stream_filter is not None else Filter(),
            settings=dict(settings or {}),
            send_to_server=send_to_server,
            created_by=created_by,
        )
        return self.create_stream_from_config(config)

    def create_stream_from_config(self, config: StreamConfig) -> MobileStream:
        if config.stream_id in self.streams:
            raise StreamStateError(f"stream {config.stream_id!r} already exists")
        stream = MobileStream(self, config)
        self.streams[config.stream_id] = stream
        self.phone.heap.allocate(f"stream-{config.stream_id}",
                                 calibration.HEAP_PER_STREAM_MB,
                                 calibration.HEAP_PER_STREAM_OBJECTS)
        violation = self.privacy.screen(config)
        if self.obs is not None:
            self.obs.telemetry.counter(
                "privacy_screens", device=self.phone.device_id,
                blocked=violation is not None).inc()
        if violation is not None:
            stream.state = StreamState.PAUSED_PRIVACY
            self._privacy_reasons[config.stream_id] = violation
        else:
            self._activate(stream)
        return stream

    def get_stream(self, stream_id: str) -> MobileStream | None:
        return self.streams.get(stream_id)

    def active_streams(self) -> list[MobileStream]:
        return [stream for stream in self.streams.values()
                if stream.state is StreamState.ACTIVE]

    def privacy_block_reason(self, stream_id: str) -> str | None:
        """Why a stream is privacy-paused (``None`` if it is not)."""
        return self._privacy_reasons.get(stream_id)

    def reconfigure_stream(self, stream: MobileStream,
                           new_config: StreamConfig) -> None:
        """Swap a stream's config, re-screening and re-wiring sampling."""
        was_active = stream.state is StreamState.ACTIVE
        if was_active:
            self._deactivate(stream)
        stream.config = new_config
        violation = self.privacy.screen(new_config)
        if violation is not None:
            stream.state = StreamState.PAUSED_PRIVACY
            self._privacy_reasons[stream.stream_id] = violation
            return
        self._privacy_reasons.pop(stream.stream_id, None)
        if was_active or stream.state is StreamState.PAUSED_PRIVACY:
            stream.state = StreamState.ACTIVE
            self._activate(stream)

    def destroy_stream(self, stream_id: str, from_server: bool = False) -> None:
        stream = self.streams.pop(stream_id, None)
        if stream is None:
            return
        if stream.state is StreamState.ACTIVE:
            self._deactivate(stream)
        stream.state = StreamState.DESTROYED
        self._privacy_reasons.pop(stream_id, None)
        self._stream_classifiers.pop(stream_id, None)
        self.phone.heap.free(f"stream-{stream_id}")

    def on_stream_state_changed(self, stream: MobileStream) -> None:
        """Hook for application pause/resume."""
        if stream.state is StreamState.ACTIVE:
            self._activate(stream)
        else:
            self._deactivate(stream)

    # -- remote management ---------------------------------------------------------

    def handle_config_xml(self, xml: str) -> None:
        """A pushed stream definition arrived over MQTT."""
        downloaded = StreamConfig.from_xml(xml)
        if downloaded.device_id != self.phone.device_id:
            return
        existing = self.streams.get(downloaded.stream_id)
        if existing is None:
            self.create_stream_from_config(downloaded)
            return
        merged = merge_configs([existing.config], downloaded)[0]
        self.reconfigure_stream(existing, merged)

    def handle_trigger(self, trigger: dict) -> None:
        """An OSN action trigger arrived: run one-off sensing (§4)."""
        self.triggers_handled += 1
        action = trigger.get("action", {})
        if "created_at" in action:
            self.trigger_latencies.append(self.world.now - action["created_at"])
            if self.obs is not None:
                self.obs.telemetry.timer(
                    "trigger_arrival_delay",
                    device=self.phone.device_id).observe(
                        self.world.now - action["created_at"])
        platform_modality = _PLATFORM_MODALITY.get(action.get("platform"))
        if platform_modality is not None:
            self.filter_manager.context.mark_osn_active(platform_modality)
        target_ids = trigger.get("stream_ids")
        for stream in list(self.streams.values()):
            if stream.state is not StreamState.ACTIVE:
                continue
            if stream.mode is not StreamMode.SOCIAL_EVENT:
                continue
            if target_ids is not None and stream.stream_id not in target_ids:
                continue
            if not self._osn_conditions_match(stream, action):
                continue
            local = [condition for condition in
                     stream.config.filter.local_conditions()
                     if condition.modality not in OSN_MODALITIES]
            if not self.filter_manager.local_conditions_satisfied(local):
                stream.cycles_skipped += 1
                continue
            self.sensing.sense_once(
                stream.modality.value,
                lambda reading, stream=stream: self._on_reading(
                    stream, reading, osn_action=dict(action)))

    def _osn_conditions_match(self, stream: MobileStream, action: dict) -> bool:
        osn_conditions = [condition for condition in
                          stream.config.filter.osn_conditions()
                          if not condition.is_cross_user]
        return all(self.filter_manager.osn_condition_satisfied(condition, action)
                   for condition in osn_conditions)

    def apply_rate_backoff(self, factor: float) -> None:
        """Server-pushed adaptive sensing: stretch duty cycles by
        ``factor`` (1.0 restores the nominal rate).

        Reschedules every active continuous stream's sampling task at
        the scaled period; one-off (SOCIAL_EVENT) sensing is untouched,
        so OSN-triggered records keep flowing at full fidelity.
        """
        factor = max(1.0, float(factor))
        if factor == self.rate_backoff_factor:
            return
        self.rate_backoff_factor = factor
        self.rate_backoffs_applied += 1
        for stream in self.streams.values():
            if stream.state is not StreamState.ACTIVE:
                continue
            if stream.mode is not StreamMode.CONTINUOUS:
                continue
            task = self._tasks.pop(stream.stream_id, None)
            if task is None:
                continue
            task.cancel()
            sensing_config = SensingConfig.from_settings(
                stream.config.settings).scaled(factor)
            self._tasks[stream.stream_id] = self.world.scheduler.every(
                sensing_config.duty_cycle_s,
                lambda stream=stream: self._cycle(stream),
                delay=sensing_config.duty_cycle_s)
        if self.obs is not None:
            self.obs.telemetry.gauge(
                "sensing_rate_factor",
                device=self.phone.device_id).set(factor)
            self.obs.telemetry.counter(
                "rate_backoffs_applied",
                device=self.phone.device_id).inc()

    # -- sampling machinery -----------------------------------------------------------

    def _activate(self, stream: MobileStream) -> None:
        self.filter_manager.acquire_monitors(
            stream.config.filter.conditional_sensors())
        if stream.mode is StreamMode.CONTINUOUS:
            sensing_config = SensingConfig.from_settings(
                stream.config.settings).scaled(self.rate_backoff_factor)
            self._tasks[stream.stream_id] = self.world.scheduler.every(
                sensing_config.duty_cycle_s,
                lambda: self._cycle(stream),
                delay=self.phone.sensor(stream.modality.value).window_seconds)
        load = (calibration.CPU_SERVER_STREAM_PCT if stream.is_server_bound
                else calibration.CPU_LOCAL_STREAM_PCT)
        self.phone.cpu.set_load(f"stream-{stream.stream_id}", load)

    def _deactivate(self, stream: MobileStream) -> None:
        task = self._tasks.pop(stream.stream_id, None)
        if task is not None:
            task.cancel()
        self.filter_manager.release_monitors(
            stream.config.filter.conditional_sensors())
        self.phone.cpu.clear_load(f"stream-{stream.stream_id}")

    def _cycle(self, stream: MobileStream) -> None:
        """One duty cycle of a continuous stream: gate, then sample."""
        if stream.state is not StreamState.ACTIVE:
            return
        if not self.filter_manager.local_conditions_satisfied(
                stream.config.filter.local_conditions()):
            stream.cycles_skipped += 1
            if self.obs is not None:
                self.obs.telemetry.counter(
                    "filter_cycles_skipped", device=self.phone.device_id,
                    stream=stream.stream_id).inc()
            return
        self.sensing.sense_once(
            stream.modality.value,
            lambda reading: self._on_reading(stream, reading, osn_action=None))

    def _on_reading(self, stream: MobileStream, reading: SensorReading,
                    osn_action: dict | None) -> None:
        if stream.state is not StreamState.ACTIVE:
            return  # privacy or app pause landed while sensing
        obs = self.obs
        trace = None
        if obs is not None:
            trace = obs.tracer.start_trace(
                device=self.phone.device_id, stream=stream.stream_id,
                modality=stream.modality.value)
            obs.tracer.span(trace, "sense", start=reading.timestamp,
                            osn_triggered=osn_action is not None)
            obs.telemetry.counter("records_sensed",
                                  device=self.phone.device_id,
                                  modality=stream.modality.value).inc()
        self.filter_manager.context.update(stream.modality, reading.raw)
        if stream.granularity is Granularity.CLASSIFIED:
            classifier = self._stream_classifiers.get(stream.stream_id)
            if classifier is None:
                classifier = self.classifiers.create(
                    stream.modality.value, self.phone.battery, self.phone.cpu)
                self._stream_classifiers[stream.stream_id] = classifier
            classified = classifier.classify(reading)
            value, details = classified.label, classified.details
            wire_bytes = classified.wire_bytes
            if obs is not None:
                obs.tracer.span(trace, "classify", label=str(value))
        else:
            value, details = reading.raw, dict(reading.meta)
            wire_bytes = reading.wire_bytes
        record = StreamRecord(
            stream_id=stream.stream_id,
            user_id=self.phone.user_id,
            device_id=self.phone.device_id,
            modality=stream.modality,
            granularity=stream.granularity,
            timestamp=reading.timestamp,
            value=value,
            details=details,
            osn_action=osn_action,
            wire_bytes=wire_bytes,
            trace=trace,
        )
        stream.deliver(record)
        if obs is not None:
            obs.tracer.span(trace, "deliver_local",
                            listeners=stream.listener_count())
        if stream.is_server_bound:
            self.records_transmitted += 1
            payload = record.to_dict()
            payload["record_id"] = \
                f"{self.phone.device_id}-r{next(self._record_seq)}"
            entry = self.outbox.put(payload["record_id"], payload,
                                    wire_bytes + _RECORD_FRAMING_BYTES,
                                    self.world.now)
            if trace is not None:
                entry.meta["trace"] = trace
            if obs is not None:
                obs.tracer.event(trace, "outbox_enqueue",
                                 record_id=payload["record_id"])
                obs.telemetry.gauge(
                    "outbox_depth",
                    device=self.phone.device_id).set(len(self.outbox))
            if self.mqtt.client.connected:
                if self.batch_max is not None:
                    self._transmit_batch([entry])
                else:
                    self._transmit(entry)
        elif obs is not None:
            # Local-only records terminate here: the journey's scope
            # never includes the server.
            obs.tracer.mark_delivered(trace, scope="local")

    # -- reliable record transport ------------------------------------

    def _transmit(self, entry) -> None:
        self.phone.send(self.server_address, "stream-data", entry.payload,
                        size=entry.size)
        self.outbox.mark_sent(entry.record_id, self.world.now)
        if self.obs is not None:
            self.obs.tracer.event(entry.meta.get("trace"), "transmit",
                                  attempt=entry.sends)
            self.obs.telemetry.counter(
                "records_transmitted", device=self.phone.device_id,
                retry=entry.sends > 1).inc()

    def _transmit_batch(self, entries) -> None:
        """Send queued records as one columnar wire envelope.

        The envelope's explicit size is the sum of the member sizes and
        the link draws once per member (``coalesced``), so radios, byte
        counters and the fault model account exactly as the per-record
        sends would.  Each member is still individually outbox-tracked
        and individually acked (the server acks whole batches with a
        ``stream-batch-ack`` listing every id).
        """
        batch = RecordBatch.from_documents(
            [entry.payload for entry in entries])
        self.phone.send(self.server_address, "stream-batch",
                        batch.to_payload(),
                        size=sum(entry.size for entry in entries),
                        coalesced=len(entries))
        self.batches_sent += 1
        self.batched_records_sent += len(entries)
        now = self.world.now
        obs = self.obs
        for entry in entries:
            self.outbox.mark_sent(entry.record_id, now)
            if obs is not None:
                obs.tracer.event(entry.meta.get("trace"), "transmit",
                                 attempt=entry.sends)
                obs.telemetry.counter(
                    "records_transmitted", device=self.phone.device_id,
                    retry=entry.sends > 1).inc()
        if obs is not None:
            obs.telemetry.histogram(
                "batch_size", stage="publish").observe(len(entries))

    def _flush_outbox(self, force: bool = False) -> None:
        """(Re)send every due unacknowledged record while connected.

        With batching on, due records coalesce into envelopes of up to
        ``batch_max`` members — the flush boundary (sweep tick or
        reconnect) is the batch boundary.
        """
        if not self.mqtt.client.connected:
            return  # store and forward: the reconnect callback flushes
        due = self.outbox.due(self.world.now, OUTBOX_RETRY_TIMEOUT_S,
                              force=force)
        if self.batch_max is None:
            for entry in due:
                self._transmit(entry)
            return
        due = list(due)
        for start in range(0, len(due), self.batch_max):
            self._transmit_batch(due[start:start + self.batch_max])

    def _outbox_sweep(self) -> None:
        self._flush_outbox(force=False)

    def _on_connectivity_change(self, connected: bool) -> None:
        if connected:
            # Anything sent into the dying link is suspect: replay it
            # all; the server's dedup window absorbs the duplicates.
            self._flush_outbox(force=True)

    def _on_stream_ack(self, payload, message) -> None:
        entry = self.outbox.get(payload["record_id"])
        if self.outbox.ack(payload["record_id"]):
            self.records_acked += 1
            if self.obs is not None and entry is not None:
                # The outbox span closes on the server's ack: the full
                # store-and-forward residence time of the record.
                self.obs.tracer.span(entry.meta.get("trace"), "outbox",
                                     start=entry.enqueued_at,
                                     sends=entry.sends)
                self.obs.telemetry.gauge(
                    "outbox_depth",
                    device=self.phone.device_id).set(len(self.outbox))

    def _on_stream_batch_ack(self, payload, message) -> None:
        """Amortized ack handling: one envelope settles every member."""
        # Same bookkeeping as the N singleton stream-acks the envelope
        # replaces — per-record outbox spans, the same acked count —
        # with the handler dispatch, the obs lookups and the
        # outbox-depth gauge write hoisted out of the per-id loop.
        outbox = self.outbox
        obs = self.obs
        acked = 0
        for record_id in payload["record_ids"]:
            entry = outbox.get(record_id)
            if not outbox.ack(record_id):
                continue
            acked += 1
            if obs is not None and entry is not None:
                # The outbox span closes on the server's ack: the full
                # store-and-forward residence time of the record.
                obs.tracer.span(entry.meta.get("trace"), "outbox",
                                start=entry.enqueued_at,
                                sends=entry.sends)
        self.records_acked += acked
        if obs is not None and acked:
            obs.telemetry.gauge(
                "outbox_depth",
                device=self.phone.device_id).set(len(outbox))

    def _on_outbox_evict(self, entry) -> None:
        """The bounded outbox overflowed: the oldest record is gone."""
        if self.obs is not None:
            self.obs.tracer.mark_dropped(entry.meta.get("trace"),
                                         "outbox", "evicted_oldest")
            self.obs.telemetry.counter(
                "records_dropped", device=self.phone.device_id,
                stage="outbox", reason="evicted_oldest").inc()

    def health(self) -> dict[str, Any]:
        """Degraded-operation status of this device's middleware.

        Uniform :class:`repro.obs.Healthcheck` schema (``status`` /
        ``detail`` / ``counters``) with the counters also flattened at
        the top level for older consumers.
        """
        client = self.mqtt.client
        status = Healthcheck.status_for(client.connected,
                                        backlog=len(self.outbox))
        last_drop = (self.network.last_drop(self.phone.address)
                     or self.network.last_drop(client.address))
        return Healthcheck.build(
            status=status,
            detail=(f"device {self.phone.device_id}: "
                    f"{'connected' if client.connected else 'disconnected'}, "
                    f"{len(self.outbox)} queued"),
            counters={
                "queued": len(self.outbox),
                "enqueued": self.outbox.enqueued,
                "dropped": self.outbox.dropped_oldest,
                "acked": self.records_acked,
                "retransmissions": self.outbox.retransmissions,
                "connection_losses": client.connection_losses,
                "reconnects": client.reconnects,
                "net_drops": (self.network.drop_count(self.phone.address)
                              + self.network.drop_count(client.address)),
            },
            device_id=self.phone.device_id,
            connected=client.connected,
            last_seen=client.last_inbound,
            last_net_drop=last_drop,
        )

    # -- location reporting ------------------------------------------------------------

    def _report_location(self) -> None:
        self.sensing.sense_once("location", self._send_location)

    def _send_location(self, reading: SensorReading) -> None:
        classified = self._location_classifier.classify(reading)
        self.phone.send(self.server_address, "location-update", {
            "user_id": self.phone.user_id,
            "device_id": self.phone.device_id,
            "lon": reading.raw["lon"],
            "lat": reading.raw["lat"],
            "place": classified.label,
            "timestamp": reading.timestamp,
        })

    # -- privacy ----------------------------------------------------------------------

    def _rescreen_streams(self) -> None:
        """Policy change: pause violators, resume cleared streams (§4)."""
        for stream in self.streams.values():
            violation = self.privacy.screen(stream.config)
            if violation is not None and stream.state is StreamState.ACTIVE:
                self._deactivate(stream)
                stream.state = StreamState.PAUSED_PRIVACY
                self._privacy_reasons[stream.stream_id] = violation
            elif violation is None and stream.state is StreamState.PAUSED_PRIVACY:
                self._privacy_reasons.pop(stream.stream_id, None)
                stream.state = StreamState.ACTIVE
                self._activate(stream)
