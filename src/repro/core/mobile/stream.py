"""The mobile Stream object.

A stream is the handle applications hold: they register listeners on
it, set filters, reconfigure duty cycles, and pause/resume it.  The
SenSocial Manager owns the sampling machinery; the stream keeps state
and delivers records.
"""

from __future__ import annotations

from dataclasses import replace
from enum import Enum
from typing import Callable

from repro.core.common.errors import StreamStateError
from repro.core.common.filters import Filter
from repro.core.common.records import StreamRecord
from repro.core.common.stream_config import StreamConfig, StreamMode

#: Application listener receiving records (``SenSocialListener``).
RecordListener = Callable[[StreamRecord], None]


class StreamState(str, Enum):
    """Lifecycle states of a mobile stream."""

    ACTIVE = "active"
    #: Paused by the Privacy Policy Manager; resumes automatically when
    #: a policy change clears the stream (§4).
    PAUSED_PRIVACY = "paused_privacy"
    #: Paused by the application.
    PAUSED = "paused"
    DESTROYED = "destroyed"


class MobileStream:
    """One contextual data stream on one device."""

    def __init__(self, manager, config: StreamConfig):
        self._manager = manager
        self.config = config
        self.state = StreamState.ACTIVE
        self._listeners: list[RecordListener] = []
        self.records_delivered = 0
        self.cycles_skipped = 0  # condition gate stopped sampling

    # -- identity ---------------------------------------------------------

    @property
    def stream_id(self) -> str:
        return self.config.stream_id

    @property
    def modality(self):
        return self.config.modality

    @property
    def granularity(self):
        return self.config.granularity

    @property
    def mode(self) -> StreamMode:
        return self.config.effective_mode()

    @property
    def is_server_bound(self) -> bool:
        return self.config.send_to_server

    # -- application API ----------------------------------------------------

    def register_listener(self, listener: RecordListener) -> "MobileStream":
        """The paper's ``registerListener()``."""
        self._listeners.append(listener)
        return self

    def remove_listener(self, listener: RecordListener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def set_filter(self, stream_filter: Filter) -> "MobileStream":
        """Replace the stream's filter (Figure 7's ``setFilter``).

        Goes through the manager so the privacy screen and the context
        monitors are refreshed.
        """
        self._require_not_destroyed()
        self._manager.reconfigure_stream(self, self.config.with_filter(stream_filter))
        return self

    def configure(self, settings: dict) -> "MobileStream":
        """Update duty cycle / sample rate (the key-value settings object)."""
        self._require_not_destroyed()
        merged = dict(self.config.settings)
        merged.update(settings)
        self._manager.reconfigure_stream(self, replace(self.config, settings=merged))
        return self

    def pause(self) -> None:
        """Application-level pause."""
        self._require_not_destroyed()
        if self.state is StreamState.ACTIVE:
            self.state = StreamState.PAUSED
            self._manager.on_stream_state_changed(self)

    def resume(self) -> None:
        self._require_not_destroyed()
        if self.state is StreamState.PAUSED:
            self.state = StreamState.ACTIVE
            self._manager.on_stream_state_changed(self)

    def destroy(self) -> None:
        self._manager.destroy_stream(self.stream_id)

    # -- manager-facing ---------------------------------------------------------

    def deliver(self, record: StreamRecord) -> None:
        """Hand a record to every registered listener."""
        self.records_delivered += 1
        for listener in list(self._listeners):
            listener(record)

    def listener_count(self) -> int:
        return len(self._listeners)

    def _require_not_destroyed(self) -> None:
        if self.state is StreamState.DESTROYED:
            raise StreamStateError(f"stream {self.stream_id!r} is destroyed")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MobileStream {self.stream_id} {self.modality.value}/"
                f"{self.granularity.value} {self.state.value}>")
