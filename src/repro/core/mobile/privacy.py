"""Privacy Policy Manager (§4 "Ensuring Privacy Compliance").

Policies restrict *which* modalities may be sensed and at *what*
granularity (raw vs classified).  Every stream creation, modification
and policy change re-screens the stream set: non-compliant streams are
paused, and move back to the working state once a later policy change
clears them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.common.granularity import Granularity
from repro.core.common.modality import ModalityType, sensor_for_modality
from repro.core.common.stream_config import StreamConfig


@dataclass(frozen=True)
class PrivacyPolicy:
    """Per-modality allowance."""

    modality: ModalityType
    allow_raw: bool = True
    allow_classified: bool = True

    def allows(self, granularity: Granularity) -> bool:
        if granularity is Granularity.RAW:
            return self.allow_raw
        return self.allow_classified


@dataclass
class PrivacyPolicyDescriptor:
    """The ``PrivacyPolicyDescriptor`` file: the active policy set.

    Modalities without an explicit policy are fully allowed — the
    descriptor is a restriction list the developer (or the user,
    through exposed settings) tightens.
    """

    policies: dict[ModalityType, PrivacyPolicy] = field(default_factory=dict)

    def set_policy(self, policy: PrivacyPolicy) -> None:
        self.policies[policy.modality] = policy

    def remove_policy(self, modality: ModalityType) -> None:
        self.policies.pop(modality, None)

    def allows(self, modality: ModalityType, granularity: Granularity) -> bool:
        policy = self.policies.get(modality)
        if policy is None:
            return True
        return policy.allows(granularity)

    def violation(self, config: StreamConfig) -> str | None:
        """Why ``config`` violates the descriptor, or ``None`` if clean.

        Screens both the stream's own modality/granularity and the
        modalities its filtering conditions force the phone to sense
        ("Privacy Policy Manager screens for both the modality required
        by the stream and its filtering conditions", §3.2).
        """
        if not self.allows(config.modality, config.granularity):
            return (f"stream modality {config.modality.value!r} at "
                    f"{config.granularity.value!r} granularity is not allowed")
        for condition in config.filter.local_conditions():
            sensor = sensor_for_modality(condition.modality)
            if sensor is None:
                continue
            # Evaluating a condition needs (at least) classified data
            # from its backing sensor.
            if not self.allows(sensor, Granularity.CLASSIFIED):
                return (f"filter condition on {condition.modality.value!r} "
                        f"requires sensing {sensor.value!r}, which is not allowed")
        return None


class PrivacyPolicyManager:
    """Screens stream configs and pauses/resumes streams on changes."""

    def __init__(self, descriptor: PrivacyPolicyDescriptor | None = None):
        self.descriptor = descriptor if descriptor is not None else PrivacyPolicyDescriptor()
        self._rescreen_hooks = []
        self.screens_performed = 0

    def on_policy_change(self, hook) -> None:
        """Register a callback run after every policy change."""
        self._rescreen_hooks.append(hook)

    def set_policy(self, policy: PrivacyPolicy) -> None:
        """Install/replace one policy and re-screen all streams."""
        self.descriptor.set_policy(policy)
        self._notify()

    def remove_policy(self, modality: ModalityType) -> None:
        self.descriptor.remove_policy(modality)
        self._notify()

    def screen(self, config: StreamConfig) -> str | None:
        """Check one stream config; returns the violation or ``None``."""
        self.screens_performed += 1
        return self.descriptor.violation(config)

    def _notify(self) -> None:
        for hook in list(self._rescreen_hooks):
            hook()
