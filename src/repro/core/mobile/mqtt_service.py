"""The mobile MQTT service (§4 "Remote Stream Management").

Receives pushed triggers and stream configurations over MQTT — chosen
over HTTP because push needs no polling and costs less battery — and
registers the device with the server on startup.  The
``FilterDownloader``/``FilterMerge`` flow of §4 is the config topic:
XML definitions arrive here and are merged into the existing set by
the SenSocial Manager.
"""

from __future__ import annotations

import json

from repro.mqtt.client import MqttClient
from repro.net.network import Network
from repro.simkit.world import World


def device_trigger_topic(device_id: str) -> str:
    return f"sensocial/device/{device_id}/trigger"


def device_config_topic(device_id: str) -> str:
    return f"sensocial/device/{device_id}/config"


def device_destroy_topic(device_id: str) -> str:
    return f"sensocial/device/{device_id}/destroy"


def device_rate_topic(device_id: str) -> str:
    """Server-pushed sensing-rate control (SLO backoff/restore)."""
    return f"sensocial/device/{device_id}/rate"


#: Topic filter the server subscribes to for device announcements.
REGISTRATION_FILTER = "sensocial/register/+"


def registration_topic(device_id: str) -> str:
    """Per-device announcement topic.

    Registrations are published *retained* so a server that connects
    (or re-subscribes) later still learns about every device — plain
    fire-and-forget registration would be lost if it raced the server's
    subscription.
    """
    return f"sensocial/register/{device_id}"


class MqttService:
    """Owns the phone's MQTT connection and dispatches inbound pushes."""

    def __init__(self, world: World, network: Network, manager,
                 broker_address: str = "mqtt-broker"):
        self._manager = manager
        phone = manager.phone
        self.client = MqttClient(
            world, network,
            client_id=f"sensocial-{phone.device_id}",
            address=f"mqtt/{phone.device_id}",
            broker_address=broker_address,
            radio=phone.radio,
        )
        self.triggers_received = 0
        self.configs_received = 0
        self.reannouncements = 0
        self.rate_updates_received = 0
        self._rate_control = False
        # A reconnection may follow a broker restart that wiped the
        # retained registration: announce again, it is idempotent.
        self.client.on_connection_change(self._on_connection_change)

    def start(self) -> None:
        """Connect, subscribe to the device topics, announce the device."""
        device_id = self._manager.phone.device_id
        self.client.connect(clean_session=False)
        self.client.subscribe(device_trigger_topic(device_id), self._on_trigger)
        self.client.subscribe(device_config_topic(device_id), self._on_config)
        self.client.subscribe(device_destroy_topic(device_id), self._on_destroy)
        self._announce()

    def enable_rate_control(self) -> None:
        """Subscribe to server-pushed sensing-rate updates.

        Opt-in (and idempotent) rather than part of :meth:`start` so a
        deployment without an SLO control plane exchanges exactly the
        same MQTT packets as before the rate topic existed.
        """
        if self._rate_control:
            return
        self._rate_control = True
        device_id = self._manager.phone.device_id
        self.client.subscribe(device_rate_topic(device_id), self._on_rate)

    def _announce(self) -> None:
        device_id = self._manager.phone.device_id
        self.client.publish(registration_topic(device_id), json.dumps({
            "user_id": self._manager.phone.user_id,
            "device_id": device_id,
            "modalities": self._manager.phone.supported_modalities(),
        }), qos=1, retain=True)

    def _on_connection_change(self, connected: bool) -> None:
        if connected:
            self.reannouncements += 1
            self._announce()

    def stop(self) -> None:
        self.client.disconnect()

    # -- inbound pushes ------------------------------------------------------

    def _on_trigger(self, topic: str, payload: str) -> None:
        self.triggers_received += 1
        self._manager.handle_trigger(json.loads(payload))

    def _on_config(self, topic: str, payload: str) -> None:
        self.configs_received += 1
        self._manager.handle_config_xml(payload)

    def _on_destroy(self, topic: str, payload: str) -> None:
        document = json.loads(payload)
        self._manager.destroy_stream(document["stream_id"], from_server=True)

    def _on_rate(self, topic: str, payload: str) -> None:
        document = json.loads(payload)
        self.rate_updates_received += 1
        self._manager.apply_rate_backoff(document.get("factor", 1.0))
