"""Store-and-forward outbox for server-bound stream records.

The mobile middleware never hands a record straight to the radio and
hopes: every server-bound record enters this bounded queue, is
transmitted when the device believes it is connected, and leaves only
when the server acknowledges the record id.  During a partition the
queue absorbs new records; on reconnection everything unacknowledged
is replayed (the server's dedup window makes replays idempotent).
When the queue is full the *oldest* record is evicted and counted —
fresh context beats stale context, and the counter keeps the loss
honest.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

#: Default queue bound: roughly an hour of records at the fastest
#: default duty cycle, small enough for a phone's flash budget.
DEFAULT_CAPACITY = 512


@dataclass
class OutboxEntry:
    """One record awaiting server acknowledgement."""

    record_id: str
    payload: dict[str, Any]
    size: int
    enqueued_at: float
    last_sent_at: float | None = None
    sends: int = 0
    meta: dict[str, Any] = field(default_factory=dict)


class Outbox:
    """Bounded, acknowledgement-driven record queue."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"outbox capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, OutboxEntry]" = OrderedDict()
        self.enqueued = 0
        self.acked = 0
        self.dropped_oldest = 0
        self.retransmissions = 0
        #: Optional observer called with every evicted entry, so the
        #: owner can attribute the drop (stage + reason) in its traces.
        self.on_evict = None

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, record_id: str) -> OutboxEntry | None:
        """The queued entry for ``record_id``, if still unacknowledged."""
        return self._entries.get(record_id)

    def put(self, record_id: str, payload: dict[str, Any], size: int,
            now: float) -> OutboxEntry:
        """Queue a record; evicts (and counts) the oldest when full."""
        while len(self._entries) >= self.capacity:
            _, evicted = self._entries.popitem(last=False)
            self.dropped_oldest += 1
            if self.on_evict is not None:
                self.on_evict(evicted)
        entry = OutboxEntry(record_id=record_id, payload=payload,
                            size=size, enqueued_at=now)
        self._entries[record_id] = entry
        self.enqueued += 1
        return entry

    def ack(self, record_id: str) -> bool:
        """The server confirmed the record; forget it.  Idempotent."""
        if self._entries.pop(record_id, None) is None:
            return False
        self.acked += 1
        return True

    def mark_sent(self, record_id: str, now: float) -> None:
        entry = self._entries.get(record_id)
        if entry is None:
            return
        if entry.sends > 0:
            self.retransmissions += 1
        entry.sends += 1
        entry.last_sent_at = now

    def due(self, now: float, retry_after: float,
            force: bool = False) -> list[OutboxEntry]:
        """Entries that should be (re)transmitted now.

        An entry is due when it has never been sent, when its last send
        is older than ``retry_after`` (the ack is presumed lost), or —
        with ``force`` — unconditionally (used on reconnection, where
        anything sent into the dying link is suspect).
        """
        return [entry for entry in self._entries.values()
                if force or entry.last_sent_at is None
                or now - entry.last_sent_at >= retry_after]

    def pending_ids(self) -> list[str]:
        return list(self._entries)

    def stats(self) -> dict[str, int]:
        return {
            "queued": len(self._entries),
            "enqueued": self.enqueued,
            "acked": self.acked,
            "dropped_oldest": self.dropped_oldest,
            "retransmissions": self.retransmissions,
        }
