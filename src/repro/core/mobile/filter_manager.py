"""Mobile Filter Manager: context monitors and condition gating.

Two responsibilities from §3.2:

* maintain **context monitors** — continuous sensing subscriptions for
  every sensor some stream's filter conditions depend on ("conditional
  modalities are sampled continuously"), feeding the context cache;
* **gate** each stream's sampling cycle on its local conditions, so
  energy-costly sensors are sampled "only on satisfaction of the
  conditions based on a less energy consuming sensor" (§5.5).
"""

from __future__ import annotations

from repro.classify import ClassifierRegistry
from repro.core.common.conditions import Condition, Operator
from repro.core.common.modality import (
    CLASSIFIED_FOR,
    OSN_MODALITIES,
    ModalityType,
    ModalityValue,
)
from repro.core.mobile.context import ContextCache
from repro.device.phone import Smartphone
from repro.device.sensors.base import SensorReading
from repro.sensing import ESSensorManager, SensingConfig
from repro.simkit.world import World

#: Virtual modalities inferred from each sensor (inverse of CLASSIFIED_FOR).
_VIRTUAL_OF_SENSOR = {sensor: virtual for virtual, sensor in CLASSIFIED_FOR.items()}


class MobileFilterManager:
    """Owns the context cache and evaluates stream filters."""

    def __init__(self, world: World, phone: Smartphone,
                 sensing: ESSensorManager, classifiers: ClassifierRegistry):
        self._world = world
        self._phone = phone
        self._sensing = sensing
        self._classifiers = classifiers
        self.context = ContextCache(world)
        #: sensor modality -> (subscription, refcount)
        self._monitors: dict[ModalityType, tuple[object, int]] = {}
        self._monitor_classifiers = {}
        self.conditions_evaluated = 0

    # -- context monitors --------------------------------------------------

    def acquire_monitors(self, sensors: set[ModalityType]) -> None:
        """Reference-count continuous monitors for ``sensors``."""
        for sensor in sensors:
            entry = self._monitors.get(sensor)
            if entry is not None:
                subscription, refcount = entry
                self._monitors[sensor] = (subscription, refcount + 1)
                continue
            subscription = self._sensing.subscribe(
                sensor.value, SensingConfig(),
                lambda reading, sensor=sensor: self._on_monitor_reading(
                    sensor, reading))
            self._monitors[sensor] = (subscription, 1)

    def release_monitors(self, sensors: set[ModalityType]) -> None:
        for sensor in sensors:
            entry = self._monitors.get(sensor)
            if entry is None:
                continue
            subscription, refcount = entry
            if refcount <= 1:
                self._sensing.unsubscribe(subscription.subscription_id)
                del self._monitors[sensor]
            else:
                self._monitors[sensor] = (subscription, refcount - 1)

    def active_monitors(self) -> list[ModalityType]:
        return sorted(self._monitors, key=lambda modality: modality.value)

    def _on_monitor_reading(self, sensor: ModalityType,
                            reading: SensorReading) -> None:
        """Classify a monitor reading and refresh the context cache."""
        self.context.update(sensor, reading.raw)
        virtual = _VIRTUAL_OF_SENSOR.get(sensor)
        if virtual is None:
            return
        classifier = self._monitor_classifiers.get(sensor)
        if classifier is None:
            classifier = self._classifiers.create(
                sensor.value, self._phone.battery, self._phone.cpu)
            self._monitor_classifiers[sensor] = classifier
        classified = classifier.classify(reading)
        self.context.update(virtual, classified.label)

    # -- evaluation ------------------------------------------------------------

    def local_conditions_satisfied(self, conditions: list[Condition]) -> bool:
        """Evaluate non-OSN local conditions against the context cache."""
        for condition in conditions:
            if condition.is_cross_user or condition.modality in OSN_MODALITIES:
                continue
            self.conditions_evaluated += 1
            if not condition.evaluate(self.context.get(condition.modality)):
                return False
        return True

    @staticmethod
    def osn_condition_satisfied(condition: Condition, action: dict) -> bool:
        """Evaluate an OSN condition against a trigger's action payload.

        ``equals active`` matches any action on the platform;
        ``equals <type>`` matches that action type ("when the user
        likes a page"); ``contains <text>`` matches post content
        ("posts about football").
        """
        platform = {"facebook_activity": "facebook",
                    "twitter_activity": "twitter"}[condition.modality.value]
        if action.get("platform") != platform:
            return False
        if condition.operator is Operator.EQUALS:
            if condition.value == ModalityValue.ACTIVE:
                return True
            return action.get("type") == condition.value
        if condition.operator is Operator.IN:
            return action.get("type") in condition.value
        if condition.operator is Operator.CONTAINS:
            return str(condition.value).lower() in str(
                action.get("content", "")).lower()
        return condition.evaluate(action.get("type"))
