"""The mobile context cache: latest observed value per modality.

Filter conditions are evaluated against this cache.  OSN-activity
modalities are special: a trigger marks the platform *active* for a
short window (the paper couples the context sampled "as the relevant
posts are made"), after which it reads inactive again.  ``time_of_day``
is derived from the simulated clock.
"""

from __future__ import annotations

from typing import Any

from repro.core.common.modality import OSN_MODALITIES, ModalityType, ModalityValue
from repro.simkit.world import World

#: How long an OSN action keeps its platform modality "active".
OSN_ACTIVE_WINDOW_S = 120.0

#: Simulated seconds per day, for deriving the hour of day.
_DAY_S = 24 * 3600.0


class ContextCache:
    """Latest context values, fed by the Filter Manager's monitors."""

    def __init__(self, world: World):
        self._world = world
        self._values: dict[ModalityType, tuple[Any, float]] = {}
        self._osn_active_until: dict[ModalityType, float] = {}

    def update(self, modality: ModalityType, value: Any) -> None:
        """Record a fresh observation of ``modality``."""
        self._values[modality] = (value, self._world.now)

    def mark_osn_active(self, modality: ModalityType,
                        window_s: float = OSN_ACTIVE_WINDOW_S) -> None:
        """An OSN action arrived: hold the platform active for a window."""
        if modality not in OSN_MODALITIES:
            raise ValueError(f"{modality!r} is not an OSN modality")
        self._osn_active_until[modality] = self._world.now + window_s

    def get(self, modality: ModalityType) -> Any:
        """Current value of ``modality``; ``None`` when never observed."""
        if modality in OSN_MODALITIES:
            active_until = self._osn_active_until.get(modality, -1.0)
            if self._world.now < active_until:
                return ModalityValue.ACTIVE
            return "inactive"
        if modality is ModalityType.TIME_OF_DAY:
            return (self._world.now % _DAY_S) / 3600.0
        entry = self._values.get(modality)
        return entry[0] if entry is not None else None

    def age(self, modality: ModalityType) -> float | None:
        """Seconds since ``modality`` was last observed."""
        entry = self._values.get(modality)
        if entry is None:
            return None
        return self._world.now - entry[1]

    def observed_modalities(self) -> list[ModalityType]:
        return sorted(self._values, key=lambda modality: modality.value)
