"""Dot-notation path access into nested documents.

``get_path(doc, "home.city")`` reads ``doc["home"]["city"]``; list
elements are addressable by numeric segments (``"tags.0"``), matching
MongoDB's field-path semantics closely enough for the middleware.
"""

from __future__ import annotations

from typing import Any

#: Sentinel distinguishing "path absent" from "value is None".
MISSING = object()


def get_path(document: Any, path: str) -> Any:
    """Resolve ``path`` inside ``document``; ``MISSING`` if absent."""
    current = document
    for segment in path.split("."):
        if isinstance(current, dict):
            if segment not in current:
                return MISSING
            current = current[segment]
        elif isinstance(current, list) and segment.isdigit():
            index = int(segment)
            if index >= len(current):
                return MISSING
            current = current[index]
        else:
            return MISSING
    return current


def set_path(document: dict, path: str, value: Any) -> None:
    """Write ``value`` at ``path``, creating intermediate dicts."""
    segments = path.split(".")
    current = document
    for segment in segments[:-1]:
        if isinstance(current, list) and segment.isdigit():
            current = current[int(segment)]
            continue
        if not isinstance(current, dict):
            raise TypeError(f"cannot descend into {type(current).__name__} at {segment!r}")
        if segment not in current or not isinstance(current[segment], (dict, list)):
            current[segment] = {}
        current = current[segment]
    last = segments[-1]
    if isinstance(current, list) and last.isdigit():
        current[int(last)] = value
    else:
        current[last] = value


def delete_path(document: dict, path: str) -> bool:
    """Remove the value at ``path``; returns whether anything was removed."""
    segments = path.split(".")
    current = document
    for segment in segments[:-1]:
        if isinstance(current, dict) and segment in current:
            current = current[segment]
        elif isinstance(current, list) and segment.isdigit() and int(segment) < len(current):
            current = current[int(segment)]
        else:
            return False
    last = segments[-1]
    if isinstance(current, dict) and last in current:
        del current[last]
        return True
    return False
