"""Journaled docstore: collections whose mutations are write-ahead
logged.

:class:`JournaledCollection` wraps every mutating op of
:class:`~repro.docstore.collection.Collection` in a journal entry
(append-before-apply); :class:`JournaledDocumentStore` hands out
journaled collections so a whole database is recoverable from the
journal's snapshot + tail.  Reads are untouched — same cursors, same
indexes, same scan accounting.

The journal object is duck-typed (see
:class:`repro.durability.journal.WriteAheadJournal`): it must provide
an ``op(name, collection, **payload)`` context manager and a
``suspended()`` context manager.  Keeping the coupling this loose
means the docstore package never imports ``repro.durability``.
"""

from __future__ import annotations

from repro.docstore.collection import Collection
from repro.docstore.store import DocumentStore


class JournaledCollection(Collection):
    """A collection that write-ahead journals every mutation."""

    def __init__(self, name: str, journal):
        super().__init__(name)
        self._journal = journal

    # -- journaled writes --------------------------------------------
    # ``replace_one`` needs no override: it delegates to ``update_one``
    # and journals through it (one entry per underlying op).

    def insert_one(self, document: dict) -> int:
        with self._journal.op("insert_one", self.name, document=document):
            return super().insert_one(document)

    def insert_many(self, documents, *, copy_documents: bool = True) -> list[int]:
        # One journal frame for the whole batch; replay re-runs the
        # inserts sequentially, which assigns the same ids (the journal
        # captures the documents before ``_id`` assignment) and fails
        # partially at the same document a partial live apply would.
        docs = list(documents)
        with self._journal.op("insert_many", self.name, documents=docs):
            return super().insert_many(docs, copy_documents=copy_documents)

    def update_one(self, query: dict, update: dict, upsert: bool = False) -> int:
        with self._journal.op("update_one", self.name, query=query,
                              update=update, upsert=upsert):
            return super().update_one(query, update, upsert)

    def update_many(self, query: dict, update: dict) -> int:
        with self._journal.op("update_many", self.name, query=query,
                              update=update):
            return super().update_many(query, update)

    def delete_one(self, query: dict) -> int:
        with self._journal.op("delete_one", self.name, query=query):
            return super().delete_one(query)

    def delete_many(self, query: dict) -> int:
        with self._journal.op("delete_many", self.name, query=query):
            return super().delete_many(query)

    def drop(self) -> None:
        with self._journal.op("drop", self.name):
            super().drop()

    def create_index(self, path: str, unique: bool = False) -> None:
        if path in self._indexes:
            return  # idempotent re-creation must not journal a no-op
        with self._journal.op("create_index", self.name, path=path,
                              unique=unique):
            super().create_index(path, unique)


class JournaledDocumentStore(DocumentStore):
    """A document store whose collections journal their mutations."""

    def __init__(self, journal, name: str = "sensocial"):
        super().__init__(name)
        self.journal = journal

    def collection(self, name: str) -> Collection:
        if name not in self._collections:
            self._collections[name] = JournaledCollection(name, self.journal)
        return self._collections[name]

    def drop_collection(self, name: str) -> None:
        if name not in self._collections:
            return
        with self.journal.op("drop_collection", name):
            super().drop_collection(name)

    def health(self) -> dict:
        doc = super().health()
        doc["counters"]["journal_lag"] = self.journal.lag
        doc["journal_lag"] = self.journal.lag
        doc["journal"] = {
            "lag": self.journal.lag,
            "entries_written": self.journal.entries_written,
            "checkpoints": self.journal.medium.checkpoints,
            "append_failures": self.journal.medium.append_failures,
            "lost_appends": self.journal.lost_appends,
            "truncated_entries": self.journal.medium.truncated_entries,
            "log_bytes": self.journal.medium.log_bytes,
        }
        return doc
