"""Geospatial helpers and query predicates.

Locations are ``[longitude, latitude]`` pairs (MongoDB's legacy
coordinate convention, which the 2014-era SenSocial server used).
Distances are great-circle kilometres via the haversine formula —
needed both for ``$near`` user selection in multicast streams and for
the mobility model's city geometry.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.docstore.errors import QueryError

EARTH_RADIUS_KM = 6371.0088


def haversine_km(a: Sequence[float], b: Sequence[float]) -> float:
    """Great-circle distance between two ``[lon, lat]`` points, in km."""
    lon1, lat1 = math.radians(a[0]), math.radians(a[1])
    lon2, lat2 = math.radians(b[0]), math.radians(b[1])
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def _as_point(value: Any) -> tuple[float, float] | None:
    if (isinstance(value, (list, tuple)) and len(value) == 2
            and all(isinstance(c, (int, float)) for c in value)):
        return float(value[0]), float(value[1])
    if isinstance(value, dict) and "lon" in value and "lat" in value:
        return float(value["lon"]), float(value["lat"])
    return None


def match_near(value: Any, operand: Any) -> bool:
    """``$near``: field within ``$maxDistance`` km of ``$point``."""
    if not isinstance(operand, dict) or "$point" not in operand:
        raise QueryError("$near operand must be {'$point': [lon, lat], "
                         "'$maxDistance': km}")
    center = _as_point(operand["$point"])
    if center is None:
        raise QueryError(f"$near $point is not a coordinate: {operand['$point']!r}")
    max_km = float(operand.get("$maxDistance", math.inf))
    point = _as_point(value)
    if point is None:
        return False
    return haversine_km(point, center) <= max_km


def match_within(value: Any, operand: Any) -> bool:
    """``$within``: field inside a ``$box`` or ``$center`` region."""
    point = _as_point(value)
    if point is None:
        return False
    if not isinstance(operand, dict):
        raise QueryError("$within operand must be a dict")
    if "$box" in operand:
        (lon1, lat1), (lon2, lat2) = operand["$box"]
        low_lon, high_lon = sorted((lon1, lon2))
        low_lat, high_lat = sorted((lat1, lat2))
        return low_lon <= point[0] <= high_lon and low_lat <= point[1] <= high_lat
    if "$center" in operand:
        center, radius_km = operand["$center"]
        center_point = _as_point(center)
        if center_point is None:
            raise QueryError(f"$center point is not a coordinate: {center!r}")
        return haversine_km(point, center_point) <= float(radius_km)
    raise QueryError("$within requires $box or $center")
