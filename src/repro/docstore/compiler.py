"""Query compilation: a query dict becomes a predicate closure tree.

:func:`repro.docstore.query.matches` re-interprets the query dict
against every document — re-dispatching operator names, re-splitting
dot-paths and re-validating operands per document.  The compiler does
all of that exactly once per *query shape*: the result is a
:class:`CompiledQuery` whose ``predicate`` is a tree of closures with
paths pre-split, regexes pre-compiled and ``$in`` operands pre-hashed,
LRU-cached by the query's structural key so repeated queries (the
common case on the server's hot paths) skip compilation entirely.

Semantics are bit-identical to the interpreter — including *when*
errors surface: a malformed operand or unknown operator raises the
same :class:`~repro.docstore.errors.QueryError` only when a document
actually reaches it, never at compile time, so an invalid query over
an empty collection stays silent exactly as it always has.

The compiler also extracts the planner's food: conjunctive top-level
equality constraints (including through ``$and``) and indexable
``$in`` lists, which :meth:`Collection._candidates` intersects/unions
against hash indexes (the paper's §5.5 indexing prescription).
"""

from __future__ import annotations

import re
from collections import OrderedDict
from typing import Any, Callable

from repro.docstore.errors import QueryError
from repro.docstore.geo import match_near, match_within
from repro.docstore.paths import MISSING
from repro.docstore.query import (
    _compare,
    _eq_with_arrays,
    _matches_condition,
    matches,
)

Predicate = Callable[[Any], bool]


class CompiledQuery:
    """A compiled plan: the predicate plus the planner's constraints."""

    __slots__ = ("predicate", "equalities", "in_lists", "always_true")

    def __init__(self, predicate: Predicate, equalities: tuple, in_lists: tuple):
        #: ``predicate(document) -> bool`` — closure tree.
        self.predicate = predicate
        #: ``(path, value)`` conjunctive equality constraints (top
        #: level and through ``$and``), usable for index intersection.
        self.equalities = equalities
        #: ``(path, (values...))`` indexable ``$in`` constraints.
        self.in_lists = in_lists
        #: True when the query has no conditions at all — callers can
        #: skip the predicate entirely.
        self.always_true = not equalities and not in_lists and \
            predicate is _TRUE

    def __call__(self, document: dict) -> bool:
        return self.predicate(document)


def _always_true(_document: Any) -> bool:
    return True


_TRUE: Predicate = _always_true


# -- LRU cache ---------------------------------------------------------

_CACHE: "OrderedDict[Any, CompiledQuery]" = OrderedDict()
_CACHE_MAX = 256
_hits = 0
_misses = 0


def _structural_key(value: Any):
    """A hashable, order-sensitive key for a query dict.

    Scalars carry their type name so ``1``/``True``/``"1"`` (which
    compare differently under ``$gt`` etc.) never share a cache slot.
    Raises ``TypeError`` for values it cannot freeze — the query then
    simply compiles uncached.
    """
    if isinstance(value, dict):
        return ("d",) + tuple((key, _structural_key(item))
                              for key, item in value.items())
    if isinstance(value, (list, tuple)):
        return ("l",) + tuple(_structural_key(item) for item in value)
    if value is None or isinstance(value, (str, int, float, bool)):
        return (type(value).__name__, value)
    raise TypeError(f"unfreezable query value {type(value).__name__}")


def cache_info() -> dict[str, int]:
    return {"hits": _hits, "misses": _misses, "size": len(_CACHE),
            "max_size": _CACHE_MAX}


def cache_clear() -> None:
    global _hits, _misses
    _CACHE.clear()
    _hits = 0
    _misses = 0


def compile_query(query: dict) -> CompiledQuery:
    """Compile (or fetch the cached plan for) ``query``."""
    global _hits, _misses
    if not isinstance(query, dict):
        raise QueryError(f"query must be a dict, got {type(query).__name__}")
    try:
        key = _structural_key(query)
    except TypeError:
        key = None
    if key is not None:
        cached = _CACHE.get(key)
        if cached is not None:
            _hits += 1
            _CACHE.move_to_end(key)
            return cached
    _misses += 1
    predicate, equalities, in_lists = _compile_query(query)
    compiled = CompiledQuery(predicate, tuple(equalities), tuple(in_lists))
    if key is not None:
        _CACHE[key] = compiled
        if len(_CACHE) > _CACHE_MAX:
            _CACHE.popitem(last=False)
    return compiled


# -- compilation -------------------------------------------------------

def _raiser(error: Exception) -> Predicate:
    """A predicate that raises ``error`` when a document reaches it —
    this is how compile-time-detectable mistakes stay lazy."""

    def raise_it(_value: Any) -> bool:
        raise error

    return raise_it


def _interpreted(fragment: dict) -> Predicate:
    """Fallback: evaluate a query fragment with the interpreter (used
    for shapes whose lazy error behavior is cheaper to inherit than to
    reproduce)."""
    return lambda document: matches(document, fragment)


def _compile_query(query: dict) -> tuple[Predicate, list, list]:
    predicates: list[Predicate] = []
    equalities: list[tuple[str, Any]] = []
    in_lists: list[tuple[str, tuple]] = []
    for key, condition in query.items():
        if key == "$and":
            branches = _compile_branches(condition)
            for branch_pred, branch_eqs, branch_ins in branches:
                predicates.append(branch_pred)
                equalities.extend(branch_eqs)
                in_lists.extend(branch_ins)
        elif key == "$or":
            branch_preds = [pred for pred, _, _ in _compile_branches(condition)]
            predicates.append(_any_of(branch_preds))
        elif key == "$nor":
            branch_preds = [pred for pred, _, _ in _compile_branches(condition)]
            predicates.append(_none_of(branch_preds))
        elif key.startswith("$"):
            predicates.append(_raiser(
                QueryError(f"unknown top-level operator {key!r}")))
        else:
            getter = _make_getter(key)
            value_pred = _compile_condition(condition)
            predicates.append(_field(getter, value_pred))
            _extract_constraints(key, condition, equalities, in_lists)
    if not predicates:
        return _TRUE, equalities, in_lists
    if len(predicates) == 1:
        return predicates[0], equalities, in_lists
    return _all_of(predicates), equalities, in_lists


def _compile_branches(condition: Any) -> list[tuple[Predicate, list, list]]:
    """Compile the sub-queries of ``$and``/``$or``/``$nor``."""
    try:
        subs = list(condition)
    except TypeError:
        # The interpreter would raise the TypeError while iterating,
        # per document; keep that behavior.
        return [(_interpreted({"$and": condition}), [], [])]
    branches = []
    for sub in subs:
        if isinstance(sub, dict):
            branches.append(_compile_query(sub))
        else:
            # ``matches`` raises "query must be a dict" per document.
            branches.append((_interpreted_sub(sub), [], []))
    return branches


def _interpreted_sub(sub: Any) -> Predicate:
    return lambda document: matches(document, sub)


def _all_of(predicates: list[Predicate]) -> Predicate:
    def pred(document: Any) -> bool:
        for p in predicates:
            if not p(document):
                return False
        return True
    return pred


def _any_of(predicates: list[Predicate]) -> Predicate:
    def pred(document: Any) -> bool:
        for p in predicates:
            if p(document):
                return True
        return False
    return pred


def _none_of(predicates: list[Predicate]) -> Predicate:
    def pred(document: Any) -> bool:
        for p in predicates:
            if p(document):
                return False
        return True
    return pred


def _field(getter: Callable[[Any], Any], value_pred: Predicate) -> Predicate:
    return lambda document: value_pred(getter(document))


def _make_getter(path: str) -> Callable[[Any], Any]:
    """A pre-split dot-path getter (``get_path`` without the per-call
    ``str.split``)."""
    segments = path.split(".")
    if len(segments) == 1:
        def get_flat(document: Any, _key: str = path) -> Any:
            if isinstance(document, dict):
                return document.get(_key, MISSING)
            return MISSING
        return get_flat
    prepared = [(seg, int(seg) if seg.isdigit() else None) for seg in segments]

    def get_deep(document: Any) -> Any:
        current = document
        for segment, index in prepared:
            if isinstance(current, dict):
                if segment not in current:
                    return MISSING
                current = current[segment]
            elif isinstance(current, list) and index is not None:
                if index >= len(current):
                    return MISSING
                current = current[index]
            else:
                return MISSING
        return current

    return get_deep


def _is_operator_dict(condition: Any) -> bool:
    return (isinstance(condition, dict) and bool(condition)
            and all(key.startswith("$") for key in condition))


def _compile_condition(condition: Any) -> Predicate:
    """Compile one field's condition (mirror of ``_matches_condition``)."""
    if _is_operator_dict(condition):
        ops = [_compile_operator(op, operand)
               for op, operand in condition.items()]
        if len(ops) == 1:
            return ops[0]
        return _all_of(ops)
    return _eq_pred(condition)


def _eq_pred(operand: Any) -> Predicate:
    return lambda value: _eq_with_arrays(value, operand)


def _compile_operator(operator: str, operand: Any) -> Predicate:
    if operator == "$eq":
        return _eq_pred(operand)
    if operator == "$ne":
        eq = _eq_pred(operand)
        return lambda value: not eq(value)
    if operator in ("$gt", "$gte", "$lt", "$lte"):
        return lambda value: _compare(value, operator, operand)
    if operator in ("$in", "$nin"):
        if not isinstance(operand, (list, tuple)):
            return _raiser(QueryError(f"{operator} requires a list operand"))
        member = _membership_pred(tuple(operand))
        if operator == "$in":
            return member
        return lambda value: not member(value)
    if operator == "$exists":
        expected = bool(operand)
        return lambda value: (value is not MISSING) == expected
    if operator == "$regex":
        try:
            rx = re.compile(operand)
        except (re.error, TypeError):
            # Invalid patterns must keep their lazy behavior: never
            # raise while values are non-strings, raise on the first
            # string value — exactly what re-compiling per call did.
            return lambda value: _compare(value, "$regex", operand)
        return lambda value: (isinstance(value, str)
                              and rx.search(value) is not None)
    if operator == "$size":
        return lambda value: isinstance(value, list) and len(value) == operand
    if operator == "$elemMatch":
        return _elem_match_pred(operand)
    if operator == "$not":
        inner = _compile_condition(operand)
        return lambda value: not inner(value)
    if operator == "$near":
        return lambda value: match_near(value, operand)
    if operator == "$within":
        return lambda value: match_within(value, operand)
    return _raiser(QueryError(f"unknown query operator {operator!r}"))


def _membership_pred(operand: tuple) -> Predicate:
    """``$in`` with a hash-set fast path when every operand item is a
    hashable, self-equal scalar (``NaN`` and unhashables fall back to
    the interpreter's linear scan semantics)."""
    try:
        operand_set = frozenset(operand)
        hashable = all(item == item for item in operand)
    except TypeError:
        hashable = False
    if not hashable:
        return lambda value: any(_eq_with_arrays(value, item)
                                 for item in operand)
    none_matches = None in operand_set

    def member(value: Any) -> bool:
        if value is MISSING:
            return none_matches
        if isinstance(value, list):
            return any(_eq_with_arrays(value, item) for item in operand)
        try:
            return value in operand_set
        except TypeError:
            return any(value == item for item in operand)

    return member


def _elem_match_pred(operand: Any) -> Predicate:
    """``$elemMatch``: dict elements are matched as sub-queries, scalar
    elements as conditions — decided per element, like the interpreter."""
    condition_pred = _compile_condition(operand)
    if isinstance(operand, dict):
        sub_query = compile_query(operand)

        def pred(value: Any) -> bool:
            if not isinstance(value, list):
                return False
            for element in value:
                if isinstance(element, dict):
                    if sub_query.predicate(element):
                        return True
                elif condition_pred(element):
                    return True
            return False
    else:
        def pred(value: Any) -> bool:
            if not isinstance(value, list):
                return False
            for element in value:
                if isinstance(element, dict):
                    # ``matches`` raises "query must be a dict" here —
                    # lazily, only when a dict element shows up.
                    if matches(element, operand):
                        return True
                elif condition_pred(element):
                    return True
            return False
    return pred


def _extract_constraints(path: str, condition: Any,
                         equalities: list, in_lists: list) -> None:
    """Record the planner-usable constraints of one field condition."""
    if _is_operator_dict(condition):
        if "$eq" in condition:
            equalities.append((path, condition["$eq"]))
        in_operand = condition.get("$in")
        if isinstance(in_operand, (list, tuple)):
            in_lists.append((path, tuple(in_operand)))
        return
    equalities.append((path, condition))
