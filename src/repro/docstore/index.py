"""Secondary indexes.

A :class:`HashIndex` maps a dot-path value to the set of document ids
holding it; it accelerates equality lookups and enforces uniqueness
when requested.  MongoDB's inefficient unindexed scans are what the
paper's §5.5 warns about ("querying from MongoDB can be inefficient...
addressed by building indices"); the collection's planner intersects
and unions these indexes for conjunctive equality and ``$in`` queries
and falls back to a full scan otherwise, so the trade-off is
observable in the benchmarks.

Indexes are *multikey*, like MongoDB's: a document whose indexed field
is a list is registered under the whole (frozen) list **and** under
each element, so a scalar-equality lookup finds array-element matches
too.  Buckets may therefore over-approximate — the query predicate
always re-checks candidates — but they never miss a matching document,
except for ``None`` operands (a missing field equals ``None`` in query
semantics but is never indexed; the planner refuses the index there,
see :meth:`HashIndex.usable_for`).

``lookup`` returns a cached :class:`frozenset` view — no per-call
copying — invalidated per-bucket on writes, so the planner can
intersect buckets as cheaply as set algebra allows.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.docstore.errors import DuplicateKeyError
from repro.docstore.paths import MISSING, get_path

_EMPTY: frozenset = frozenset()


def _freeze(value: Any) -> Hashable:
    """Make a document value hashable for index bucketing."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, _freeze(val)) for key, val in value.items()))
    return value


class HashIndex:
    """Multikey equality index over one dot-path field."""

    def __init__(self, path: str, unique: bool = False):
        self.path = path
        self.unique = unique
        self._buckets: dict[Hashable, set[int]] = {}
        self._doc_keys: dict[int, tuple[Hashable, ...]] = {}
        #: Uniqueness applies to the *whole* field value only (element
        #: registrations of list values never conflict).
        self._primary_owner: dict[Hashable, int] = {}
        #: Lazily-built frozenset views of buckets, handed out by
        #: ``lookup`` without copying; invalidated per-key on writes.
        self._frozen: dict[Hashable, frozenset] = {}

    def add(self, doc_id: int, document: dict) -> None:
        value = get_path(document, self.path)
        if value is MISSING:
            return
        primary = _freeze(value)
        if self.unique:
            owner = self._primary_owner.get(primary)
            if owner is not None and owner != doc_id:
                raise DuplicateKeyError(
                    f"duplicate value {value!r} for unique index on {self.path!r}")
            self._primary_owner[primary] = doc_id
        keys = [primary]
        if isinstance(value, list):
            keys.extend(_freeze(element) for element in value)
        for key in keys:
            self._buckets.setdefault(key, set()).add(doc_id)
            self._frozen.pop(key, None)
        self._doc_keys[doc_id] = tuple(keys)

    def remove(self, doc_id: int) -> None:
        keys = self._doc_keys.pop(doc_id, None)
        if keys is None:
            return
        if self.unique and self._primary_owner.get(keys[0]) == doc_id:
            del self._primary_owner[keys[0]]
        for key in keys:
            bucket = self._buckets.get(key)
            if bucket is None:
                continue
            bucket.discard(doc_id)
            self._frozen.pop(key, None)
            if not bucket:
                del self._buckets[key]

    def lookup(self, value: Any) -> frozenset:
        """Ids of documents whose indexed field equals (or, for list
        fields, contains) ``value`` — a read-only cached view, not a
        fresh copy per call."""
        return self.lookup_key(_freeze(value))

    def lookup_key(self, key: Hashable) -> frozenset:
        """Like :meth:`lookup` but for an already-frozen key."""
        view = self._frozen.get(key)
        if view is None:
            bucket = self._buckets.get(key)
            if bucket is None:
                return _EMPTY
            view = frozenset(bucket)
            self._frozen[key] = view
        return view

    def usable_for(self, operand: Any) -> bool:
        """Is a ``lookup(operand)`` *complete* (no false negatives)?

        ``None`` operands also match documents where the field is
        missing entirely — and those are never indexed — so the planner
        must fall back to a scan for them.
        """
        return operand is not None

    def __len__(self) -> int:
        return len(self._doc_keys)
