"""Secondary indexes.

A :class:`HashIndex` maps a dot-path value to the set of document ids
holding it; it accelerates equality lookups and enforces uniqueness
when requested.  MongoDB's inefficient unindexed scans are what the
paper's §5.5 warns about ("querying from MongoDB can be inefficient...
addressed by building indices"); the collection uses these indexes for
equality queries and falls back to a full scan otherwise, so the
trade-off is observable in the benchmarks.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.docstore.errors import DuplicateKeyError
from repro.docstore.paths import MISSING, get_path


def _freeze(value: Any) -> Hashable:
    """Make a document value hashable for index bucketing."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, _freeze(val)) for key, val in value.items()))
    return value


class HashIndex:
    """Equality index over one dot-path field."""

    def __init__(self, path: str, unique: bool = False):
        self.path = path
        self.unique = unique
        self._buckets: dict[Hashable, set[int]] = {}
        self._doc_keys: dict[int, Hashable] = {}

    def add(self, doc_id: int, document: dict) -> None:
        value = get_path(document, self.path)
        if value is MISSING:
            return
        key = _freeze(value)
        bucket = self._buckets.setdefault(key, set())
        if self.unique and bucket and doc_id not in bucket:
            raise DuplicateKeyError(
                f"duplicate value {value!r} for unique index on {self.path!r}")
        bucket.add(doc_id)
        self._doc_keys[doc_id] = key

    def remove(self, doc_id: int) -> None:
        key = self._doc_keys.pop(doc_id, MISSING)
        if key is MISSING:
            return
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(doc_id)
            if not bucket:
                del self._buckets[key]

    def lookup(self, value: Any) -> set[int]:
        """Document ids whose indexed field equals ``value``."""
        return set(self._buckets.get(_freeze(value), ()))

    def __len__(self) -> int:
        return len(self._doc_keys)
