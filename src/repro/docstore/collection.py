"""Collections and cursors."""

from __future__ import annotations

import copy
from typing import Any, Iterable, Iterator

from repro.docstore.errors import DocStoreError, QueryError
from repro.docstore.index import HashIndex
from repro.docstore.paths import MISSING, delete_path, get_path, set_path
from repro.docstore.query import matches
from repro.docstore.update import apply_update


class Cursor:
    """A lazy, chainable view over query results.

    ``sort`` / ``skip`` / ``limit`` compose like their MongoDB
    namesakes; iteration yields *copies* of documents so callers cannot
    corrupt the store by mutating results.
    """

    def __init__(self, documents: Iterable[dict]):
        self._documents = list(documents)
        self._sort_spec: list[tuple[str, int]] = []
        self._skip = 0
        self._limit: int | None = None
        self._projection: dict[str, int] | None = None

    def sort(self, path: str | list[tuple[str, int]], direction: int = 1) -> "Cursor":
        """Order results by one or more dot-paths (1 asc, -1 desc)."""
        if isinstance(path, str):
            self._sort_spec = [(path, direction)]
        else:
            self._sort_spec = list(path)
        return self

    def skip(self, count: int) -> "Cursor":
        self._skip = max(0, count)
        return self

    def limit(self, count: int) -> "Cursor":
        self._limit = max(0, count)
        return self

    def project(self, projection: dict) -> "Cursor":
        """Restrict returned fields (MongoDB projection semantics)."""
        flags = {bool(value) for key, value in projection.items()
                 if key != "_id"}
        if len(flags) > 1:
            raise QueryError("cannot mix include and exclude in a projection")
        self._projection = dict(projection)
        return self

    def count(self) -> int:
        """Matching documents, ignoring skip/limit (MongoDB classic)."""
        return len(self._documents)

    def _materialise(self) -> list[dict]:
        documents = self._documents
        for path, direction in reversed(self._sort_spec):
            documents = sorted(
                documents,
                key=lambda doc: _sort_key(get_path(doc, path)),
                reverse=direction < 0,
            )
        documents = documents[self._skip:]
        if self._limit is not None:
            documents = documents[:self._limit]
        return documents

    def __iter__(self) -> Iterator[dict]:
        for document in self._materialise():
            yield self._apply_projection(copy.deepcopy(document))

    def _apply_projection(self, document: dict) -> dict:
        if self._projection is None:
            return document
        include_id = bool(self._projection.get("_id", 1))
        paths = {key: bool(value) for key, value in self._projection.items()
                 if key != "_id"}
        if not paths:
            projected = dict(document)
        elif any(paths.values()):  # include mode
            projected = {}
            for path in paths:
                value = get_path(document, path)
                if value is not MISSING:
                    set_path(projected, path, value)
        else:  # exclude mode
            projected = document
            for path in paths:
                delete_path(projected, path)
        if include_id and "_id" in document:
            projected["_id"] = document["_id"]
        elif not include_id:
            projected.pop("_id", None)
        return projected

    def to_list(self) -> list[dict]:
        return list(self)

    def __len__(self) -> int:
        return len(self._materialise())


def _sort_key(value: Any):
    """Total order over mixed types: missing < None < numbers < strings."""
    if value is MISSING:
        return (0, 0)
    if value is None:
        return (1, 0)
    if isinstance(value, bool):
        return (2, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    return (4, repr(value))


class Collection:
    """A named set of documents with optional secondary indexes."""

    def __init__(self, name: str):
        self.name = name
        self._documents: dict[int, dict] = {}
        #: Next auto-assigned ``_id``; a plain int (not a generator) so
        #: snapshot/restore can persist the exact allocation state.
        self._next_id = 1
        self._indexes: dict[str, HashIndex] = {}
        self.scans = 0          # full scans performed (observability)
        self.index_lookups = 0  # queries served via an index

    # -- writes -------------------------------------------------------

    def insert_one(self, document: dict) -> int:
        """Insert a copy of ``document``; returns its ``_id``."""
        if not isinstance(document, dict):
            raise DocStoreError(f"documents must be dicts, got {type(document).__name__}")
        stored = copy.deepcopy(document)
        # The counter advances on every insert, even when the caller
        # supplies an explicit ``_id`` (itertools.count semantics).
        default_id = self._next_id
        self._next_id += 1
        doc_id = stored.setdefault("_id", default_id)
        if doc_id in self._documents:
            raise DocStoreError(f"_id {doc_id!r} already present in {self.name!r}")
        for index in self._indexes.values():
            index.add(doc_id, stored)
        self._documents[doc_id] = stored
        return doc_id

    def insert_many(self, documents: Iterable[dict]) -> list[int]:
        return [self.insert_one(document) for document in documents]

    def update_one(self, query: dict, update: dict, upsert: bool = False) -> int:
        """Update the first match; returns number of documents changed."""
        for doc_id, document in self._candidates(query):
            if matches(document, query):
                self._reindex(doc_id, document, update)
                return 1
        if upsert:
            seed = {key: value for key, value in query.items()
                    if not key.startswith("$") and not isinstance(value, dict)}
            if any(key.startswith("$") for key in update):
                # ``$setOnInsert`` only acts on this insert branch (a
                # matched update ignores it); seeded first so explicit
                # ``$set`` paths in the same update still win.
                for path, value in update.get("$setOnInsert", {}).items():
                    set_path(seed, path, value)
                apply_update(seed, update)
            else:
                seed.update(update)
            self.insert_one(seed)
            return 1
        return 0

    def update_many(self, query: dict, update: dict) -> int:
        changed = 0
        for doc_id, document in list(self._candidates(query)):
            if matches(document, query):
                self._reindex(doc_id, document, update)
                changed += 1
        return changed

    def replace_one(self, query: dict, replacement: dict) -> int:
        """Replace the first match wholesale (keeps ``_id``)."""
        if any(key.startswith("$") for key in replacement):
            raise DocStoreError("replace_one takes a plain document")
        return self.update_one(query, replacement)

    def delete_one(self, query: dict) -> int:
        for doc_id, document in self._candidates(query):
            if matches(document, query):
                self._remove(doc_id)
                return 1
        return 0

    def delete_many(self, query: dict) -> int:
        doomed = [doc_id for doc_id, document in self._candidates(query)
                  if matches(document, query)]
        for doc_id in doomed:
            self._remove(doc_id)
        return len(doomed)

    def drop(self) -> None:
        self._documents.clear()
        for index in self._indexes.values():
            for doc_id in list(index._doc_keys):
                index.remove(doc_id)

    # -- reads --------------------------------------------------------

    def find(self, query: dict | None = None,
             projection: dict | None = None) -> Cursor:
        """All documents matching ``query`` (all documents when None).

        ``projection`` selects fields MongoDB-style: ``{"name": 1}``
        keeps only the named paths (plus ``_id``); ``{"secret": 0}``
        drops the named paths.  Mixing include and exclude is rejected.
        """
        query = query or {}
        cursor = Cursor(document for _, document in self._candidates(query)
                        if matches(document, query))
        if projection:
            cursor.project(projection)
        return cursor

    def find_one(self, query: dict | None = None,
                 projection: dict | None = None) -> dict | None:
        for document in self.find(query, projection).limit(1):
            return document
        return None

    def count(self, query: dict | None = None) -> int:
        if not query:
            return len(self._documents)
        return self.find(query).count()

    def distinct(self, path: str, query: dict | None = None) -> list:
        seen = []
        for document in self.find(query):
            value = get_path(document, path)
            if value is not MISSING and value not in seen:
                seen.append(value)
        return seen

    # -- indexes ------------------------------------------------------

    def create_index(self, path: str, unique: bool = False) -> None:
        """Build a hash index over ``path`` (idempotent)."""
        if path in self._indexes:
            return
        index = HashIndex(path, unique=unique)
        for doc_id, document in self._documents.items():
            index.add(doc_id, document)
        self._indexes[path] = index

    def index_paths(self) -> list[str]:
        return sorted(self._indexes)

    # -- snapshot / restore -------------------------------------------

    def snapshot(self) -> dict:
        """Full recoverable state: documents, id counter, index specs."""
        return {
            "documents": [copy.deepcopy(document)
                          for document in self._documents.values()],
            "next_id": self._next_id,
            "indexes": [[index.path, index.unique]
                        for index in self._indexes.values()],
        }

    def restore(self, state: dict) -> None:
        """Replace this collection's contents with ``state``."""
        self._documents.clear()
        self._indexes.clear()
        for path, unique in state.get("indexes", []):
            self._indexes[path] = HashIndex(path, unique=unique)
        for document in state.get("documents", []):
            stored = copy.deepcopy(document)
            doc_id = stored["_id"]
            for index in self._indexes.values():
                index.add(doc_id, stored)
            self._documents[doc_id] = stored
        self._next_id = state.get("next_id", len(self._documents) + 1)

    # -- internals ----------------------------------------------------

    def _candidates(self, query: dict) -> Iterable[tuple[int, dict]]:
        """Documents to test, narrowed through an index when possible."""
        for path, condition in query.items():
            if path.startswith("$") or path not in self._indexes:
                continue
            if isinstance(condition, dict):
                if set(condition) == {"$eq"}:
                    condition = condition["$eq"]
                else:
                    continue
            if isinstance(condition, dict):
                continue
            self.index_lookups += 1
            ids = self._indexes[path].lookup(condition)
            return [(doc_id, self._documents[doc_id])
                    for doc_id in sorted(ids) if doc_id in self._documents]
        self.scans += 1
        return list(self._documents.items())

    def _reindex(self, doc_id: int, document: dict, update: dict) -> None:
        for index in self._indexes.values():
            index.remove(doc_id)
        try:
            apply_update(document, update)
        finally:
            for index in self._indexes.values():
                index.add(doc_id, document)

    def _remove(self, doc_id: int) -> None:
        for index in self._indexes.values():
            index.remove(doc_id)
        del self._documents[doc_id]

    def __len__(self) -> int:
        return len(self._documents)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Collection {self.name!r} docs={len(self)} indexes={self.index_paths()}>"
