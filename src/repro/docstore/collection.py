"""Collections and cursors."""

from __future__ import annotations

import copy
from typing import Any, Iterable, Iterator

from repro.docstore.compiler import CompiledQuery, compile_query
from repro.docstore.errors import DocStoreError, QueryError
from repro.docstore.index import HashIndex
from repro.docstore.paths import MISSING, get_path, set_path
from repro.docstore.update import apply_update

#: Marks "no exclusion here" in exclusion trees (``None`` is a leaf).
_KEEP = object()


class Cursor:
    """A lazy, chainable view over query results.

    ``sort`` / ``skip`` / ``limit`` compose like their MongoDB
    namesakes; iteration yields *copies* of documents so callers cannot
    corrupt the store by mutating results.

    Matching is streamed: an unsorted cursor pulls documents from the
    collection only as far as ``skip``/``limit`` require (``find_one``
    stops at the first match), and already-pulled matches are cached so
    the cursor stays re-iterable.  ``sort`` forces a full drain, since
    ordering needs every match.
    """

    def __init__(self, documents: Iterable[dict]):
        self._source = iter(documents)
        self._cache: list[dict] = []
        self._exhausted = False
        self._sort_spec: list[tuple[str, int]] = []
        self._skip = 0
        self._limit: int | None = None
        self._projection: dict[str, int] | None = None

    def sort(self, path: str | list[tuple[str, int]], direction: int = 1) -> "Cursor":
        """Order results by one or more dot-paths (1 asc, -1 desc)."""
        if isinstance(path, str):
            self._sort_spec = [(path, direction)]
        else:
            self._sort_spec = list(path)
        return self

    def skip(self, count: int) -> "Cursor":
        self._skip = max(0, count)
        return self

    def limit(self, count: int) -> "Cursor":
        self._limit = max(0, count)
        return self

    def project(self, projection: dict) -> "Cursor":
        """Restrict returned fields (MongoDB projection semantics)."""
        flags = {bool(value) for key, value in projection.items()
                 if key != "_id"}
        if len(flags) > 1:
            raise QueryError("cannot mix include and exclude in a projection")
        self._projection = dict(projection)
        return self

    def count(self) -> int:
        """Matching documents, ignoring skip/limit (MongoDB classic).

        Never sorts and never copies — a count is just a drain of the
        match stream.
        """
        return len(self._drain())

    def _matches(self) -> Iterator[dict]:
        """Stream matched documents, sharing one cache across iterators
        so the cursor is re-iterable and interleavable."""
        index = 0
        while True:
            if index < len(self._cache):
                yield self._cache[index]
                index += 1
                continue
            if self._exhausted:
                return
            try:
                document = next(self._source)
            except StopIteration:
                self._exhausted = True
                return
            self._cache.append(document)

    def _drain(self) -> list[dict]:
        if not self._exhausted:
            for _ in self._matches():
                pass
        return self._cache

    def __iter__(self) -> Iterator[dict]:
        if self._sort_spec:
            documents: list[dict] = self._drain()
            for path, direction in reversed(self._sort_spec):
                documents = sorted(
                    documents,
                    key=lambda doc: _sort_key(get_path(doc, path)),
                    reverse=direction < 0,
                )
            selected = documents[self._skip:]
            if self._limit is not None:
                selected = selected[:self._limit]
            for document in selected:
                yield self._emit(document)
            return
        if self._limit == 0:
            return
        remaining = self._limit
        skipped = 0
        for document in self._matches():
            if skipped < self._skip:
                skipped += 1
                continue
            yield self._emit(document)
            if remaining is not None:
                remaining -= 1
                if remaining == 0:
                    return

    def _emit(self, document: dict) -> dict:
        """Copy ``document`` for the caller — deep-copying only the
        parts the projection actually returns."""
        if self._projection is None:
            return copy.deepcopy(document)
        include_id = bool(self._projection.get("_id", 1))
        paths = {key: bool(value) for key, value in self._projection.items()
                 if key != "_id"}
        if not paths:
            projected = {key: copy.deepcopy(value)
                         for key, value in document.items()}
        elif any(paths.values()):  # include mode
            projected = {}
            for path in paths:
                value = get_path(document, path)
                if value is not MISSING:
                    set_path(projected, path, copy.deepcopy(value))
        else:  # exclude mode
            projected = _copy_excluding(document, _exclusion_tree(paths))
        if include_id and "_id" in document:
            projected["_id"] = copy.deepcopy(document["_id"])
        elif not include_id:
            projected.pop("_id", None)
        return projected

    def to_list(self) -> list[dict]:
        # Not ``list(self)``: that consults ``__len__`` as a length
        # hint, which would drain past an early ``limit`` exit.
        return [document for document in self]

    def __len__(self) -> int:
        """``count()`` clamped by skip/limit — computed without sorting
        or copying (sorting cannot change how many results come back).

        With a ``limit`` the stream is only drained far enough to know
        the answer, so ``len``/``list`` keep the early-exit property.
        """
        if self._limit is not None:
            needed = self._skip + self._limit
            matched = 0
            for _ in self._matches():
                matched += 1
                if matched >= needed:
                    return self._limit
            return max(0, matched - self._skip)
        return max(0, len(self._drain()) - self._skip)


def _exclusion_tree(paths: dict[str, bool]) -> dict:
    """Nest exclusion dot-paths into a tree; ``None`` marks a leaf
    (whole subtree excluded), which always wins over deeper paths —
    matching sequential ``delete_path`` calls in either order."""
    tree: dict = {}
    for path in paths:
        segments = path.split(".")
        node = tree
        for segment in segments[:-1]:
            child = node.get(segment, _KEEP)
            if child is None:  # already excluded wholesale
                node = None
                break
            if child is _KEEP:
                child = node[segment] = {}
            node = child
        if node is not None:
            node[segments[-1]] = None
    return tree


def _copy_excluding(value: Any, tree: dict) -> Any:
    """Deep-copy ``value`` skipping excluded subtrees.

    Mirrors ``delete_path`` exactly: leaf exclusions only remove dict
    keys (a leaf landing on a list index removes nothing), numeric
    segments descend into lists, and paths that don't resolve are
    no-ops.
    """
    if isinstance(value, dict):
        out = {}
        for key, val in value.items():
            sub = tree.get(key, _KEEP)
            if sub is None:
                continue
            if sub is _KEEP:
                out[key] = copy.deepcopy(val)
            else:
                out[key] = _copy_excluding(val, sub)
        return out
    if isinstance(value, list):
        out_list = []
        for position, item in enumerate(value):
            sub = tree.get(str(position), _KEEP)
            if sub is _KEEP or sub is None:
                out_list.append(copy.deepcopy(item))
            else:
                out_list.append(_copy_excluding(item, sub))
        return out_list
    return copy.deepcopy(value)


def _sort_key(value: Any):
    """Total order over mixed types: missing < None < numbers < strings."""
    if value is MISSING:
        return (0, 0)
    if value is None:
        return (1, 0)
    if isinstance(value, bool):
        return (2, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    return (4, repr(value))


class Collection:
    """A named set of documents with optional secondary indexes."""

    def __init__(self, name: str):
        self.name = name
        self._documents: dict[int, dict] = {}
        #: Next auto-assigned ``_id``; a plain int (not a generator) so
        #: snapshot/restore can persist the exact allocation state.
        self._next_id = 1
        self._indexes: dict[str, HashIndex] = {}
        self.scans = 0          # full scans performed (observability)
        self.index_lookups = 0  # queries served via an index
        #: Candidate documents actually tested against a predicate —
        #: the planner's effectiveness metric (see ``repro perf``).
        self.candidates_examined = 0

    # -- writes -------------------------------------------------------

    def insert_one(self, document: dict) -> int:
        """Insert a copy of ``document``; returns its ``_id``."""
        if not isinstance(document, dict):
            raise DocStoreError(f"documents must be dicts, got {type(document).__name__}")
        stored = copy.deepcopy(document)
        # The counter advances on every insert, even when the caller
        # supplies an explicit ``_id`` (itertools.count semantics).
        default_id = self._next_id
        self._next_id += 1
        doc_id = stored.setdefault("_id", default_id)
        if doc_id in self._documents:
            raise DocStoreError(f"_id {doc_id!r} already present in {self.name!r}")
        for index in self._indexes.values():
            index.add(doc_id, stored)
        self._documents[doc_id] = stored
        return doc_id

    def insert_many(self, documents: Iterable[dict], *,
                    copy_documents: bool = True) -> list[int]:
        """Insert a batch; returns the assigned ``_id``s in order.

        The batch hot path: ids are assigned in one sweep and each
        secondary index is updated in one pass over the whole batch
        instead of once per document.  Semantics match a sequential
        ``insert_one`` loop exactly — same ids, same key order
        (``_id`` appended last), same partial-failure behaviour — so
        any document carrying an explicit ``_id`` (possible conflicts,
        counter interleaving) falls back to that loop verbatim.

        ``copy_documents=False`` transfers ownership: the caller
        promises the dicts are freshly built and never mutated after
        the call (the batched ingest path builds them from the wire
        columns), which skips the dominant per-record ``deepcopy``.
        """
        docs = list(documents)
        for document in docs:
            if not isinstance(document, dict) or "_id" in document:
                return [self.insert_one(document) for document in docs]
        stored_docs = copy.deepcopy(docs) if copy_documents else docs
        doc_ids = []
        storage = self._documents
        for stored in stored_docs:
            doc_id = self._next_id
            self._next_id += 1
            stored["_id"] = doc_id
            storage[doc_id] = stored
            doc_ids.append(doc_id)
        for index in self._indexes.values():
            add = index.add
            for doc_id, stored in zip(doc_ids, stored_docs):
                add(doc_id, stored)
        return doc_ids

    def update_one(self, query: dict, update: dict, upsert: bool = False) -> int:
        """Update the first match; returns number of documents changed."""
        plan = compile_query(query)
        for doc_id, document in self._candidates(plan):
            self.candidates_examined += 1
            if plan.always_true or plan.predicate(document):
                self._reindex(doc_id, document, update)
                return 1
        if upsert:
            seed = {key: value for key, value in query.items()
                    if not key.startswith("$") and not isinstance(value, dict)}
            if any(key.startswith("$") for key in update):
                # ``$setOnInsert`` only acts on this insert branch (a
                # matched update ignores it); seeded first so explicit
                # ``$set`` paths in the same update still win.
                for path, value in update.get("$setOnInsert", {}).items():
                    set_path(seed, path, value)
                apply_update(seed, update)
            else:
                seed.update(update)
            self.insert_one(seed)
            return 1
        return 0

    def update_many(self, query: dict, update: dict) -> int:
        plan = compile_query(query)
        changed = 0
        for doc_id, document in list(self._candidates(plan)):
            self.candidates_examined += 1
            if plan.always_true or plan.predicate(document):
                self._reindex(doc_id, document, update)
                changed += 1
        return changed

    def replace_one(self, query: dict, replacement: dict) -> int:
        """Replace the first match wholesale (keeps ``_id``)."""
        if any(key.startswith("$") for key in replacement):
            raise DocStoreError("replace_one takes a plain document")
        return self.update_one(query, replacement)

    def delete_one(self, query: dict) -> int:
        plan = compile_query(query)
        for doc_id, document in self._candidates(plan):
            self.candidates_examined += 1
            if plan.always_true or plan.predicate(document):
                self._remove(doc_id)
                return 1
        return 0

    def delete_many(self, query: dict) -> int:
        plan = compile_query(query)
        doomed = []
        for doc_id, document in self._candidates(plan):
            self.candidates_examined += 1
            if plan.always_true or plan.predicate(document):
                doomed.append(doc_id)
        for doc_id in doomed:
            self._remove(doc_id)
        return len(doomed)

    def drop(self) -> None:
        self._documents.clear()
        for index in self._indexes.values():
            for doc_id in list(index._doc_keys):
                index.remove(doc_id)

    # -- reads --------------------------------------------------------

    def find(self, query: dict | None = None,
             projection: dict | None = None) -> Cursor:
        """All documents matching ``query`` (all documents when None).

        ``projection`` selects fields MongoDB-style: ``{"name": 1}``
        keeps only the named paths (plus ``_id``); ``{"secret": 0}``
        drops the named paths.  Mixing include and exclude is rejected.

        The candidate set is pinned when ``find`` returns (inserts
        after this call are not seen), but match evaluation streams
        lazily as the cursor is consumed.
        """
        query = query or {}
        plan = compile_query(query)
        cursor = Cursor(self._matching(plan, self._candidates(plan)))
        if projection:
            cursor.project(projection)
        return cursor

    def _matching(self, plan: CompiledQuery,
                  candidates: list[tuple[int, dict]]) -> Iterator[dict]:
        for _doc_id, document in candidates:
            self.candidates_examined += 1
            if plan.always_true or plan.predicate(document):
                yield document

    def find_one(self, query: dict | None = None,
                 projection: dict | None = None) -> dict | None:
        for document in self.find(query, projection).limit(1):
            return document
        return None

    def count(self, query: dict | None = None) -> int:
        if not query:
            return len(self._documents)
        return self.find(query).count()

    def distinct(self, path: str, query: dict | None = None) -> list:
        seen = []
        for document in self.find(query):
            value = get_path(document, path)
            if value is not MISSING and value not in seen:
                seen.append(value)
        return seen

    # -- indexes ------------------------------------------------------

    def create_index(self, path: str, unique: bool = False) -> None:
        """Build a hash index over ``path`` (idempotent)."""
        if path in self._indexes:
            return
        index = HashIndex(path, unique=unique)
        for doc_id, document in self._documents.items():
            index.add(doc_id, document)
        self._indexes[path] = index

    def index_paths(self) -> list[str]:
        return sorted(self._indexes)

    # -- snapshot / restore -------------------------------------------

    def snapshot(self) -> dict:
        """Full recoverable state: documents, id counter, index specs."""
        return {
            "documents": [copy.deepcopy(document)
                          for document in self._documents.values()],
            "next_id": self._next_id,
            "indexes": [[index.path, index.unique]
                        for index in self._indexes.values()],
        }

    def restore(self, state: dict) -> None:
        """Replace this collection's contents with ``state``."""
        self._documents.clear()
        self._indexes.clear()
        for path, unique in state.get("indexes", []):
            self._indexes[path] = HashIndex(path, unique=unique)
        for document in state.get("documents", []):
            stored = copy.deepcopy(document)
            doc_id = stored["_id"]
            for index in self._indexes.values():
                index.add(doc_id, stored)
            self._documents[doc_id] = stored
        self._next_id = state.get("next_id", len(self._documents) + 1)

    # -- internals ----------------------------------------------------

    def _candidates(self, plan: CompiledQuery) -> list[tuple[int, dict]]:
        """Documents to test, narrowed through the indexes when the
        compiled plan allows it.

        Conjunctive equality constraints (top level and inside
        ``$and``) intersect their index buckets; indexed ``$in`` lists
        union per-item buckets before intersecting.  Candidate ids come
        back sorted — the order indexed queries have always used.
        """
        ids = self._plan_ids(plan)
        if ids is None:
            self.scans += 1
            return list(self._documents.items())
        self.index_lookups += 1
        return [(doc_id, self._documents[doc_id])
                for doc_id in sorted(ids) if doc_id in self._documents]

    def _plan_ids(self, plan: CompiledQuery) -> set | None:
        """Intersected candidate id set, or None for a full scan."""
        if not self._indexes or (not plan.equalities and not plan.in_lists):
            return None
        result: set | frozenset | None = None
        for path, operand in plan.equalities:
            index = self._indexes.get(path)
            if index is None or not index.usable_for(operand):
                continue
            try:
                bucket = index.lookup(operand)
            except TypeError:  # unhashable exotic operand
                continue
            result = bucket if result is None else result & bucket
            if not result:
                return set()
        for path, items in plan.in_lists:
            index = self._indexes.get(path)
            if index is None or not all(index.usable_for(item)
                                        for item in items):
                continue
            try:
                union: set = set()
                for item in items:
                    union |= index.lookup(item)
            except TypeError:
                continue
            result = union if result is None else result & union
            if not result:
                return set()
        return set(result) if result is not None else None

    def _reindex(self, doc_id: int, document: dict, update: dict) -> None:
        for index in self._indexes.values():
            index.remove(doc_id)
        try:
            apply_update(document, update)
        finally:
            for index in self._indexes.values():
                index.add(doc_id, document)

    def _remove(self, doc_id: int) -> None:
        for index in self._indexes.values():
            index.remove(doc_id)
        del self._documents[doc_id]

    def __len__(self) -> int:
        return len(self._documents)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Collection {self.name!r} docs={len(self)} indexes={self.index_paths()}>"
