"""In-memory document store (MongoDB stand-in).

The SenSocial server stores user registrations, OSN friendship graphs
and geographic locations in MongoDB and issues document and geospatial
queries against it.  This package reproduces the MongoDB feature slice
the middleware needs: schemaless collections, dot-path queries with
comparison/logical operators, update operators, unique and hash
indexes, and planar geospatial queries (``$near`` / ``$within``).
"""

from repro.docstore.errors import (
    DocStoreError,
    DuplicateKeyError,
    QueryError,
    UpdateError,
)
from repro.docstore.collection import Collection, Cursor
from repro.docstore.geo import haversine_km
from repro.docstore.journaled import JournaledCollection, JournaledDocumentStore
from repro.docstore.query import matches
from repro.docstore.store import DocumentStore

__all__ = [
    "Collection",
    "Cursor",
    "DocStoreError",
    "DocumentStore",
    "DuplicateKeyError",
    "JournaledCollection",
    "JournaledDocumentStore",
    "QueryError",
    "UpdateError",
    "haversine_km",
    "matches",
]
