"""The query engine: does a document match a query document?

Implements the MongoDB operators the SenSocial server relies on, plus
the ones any realistic consumer of the store reaches for:

* comparisons — ``$eq $ne $gt $gte $lt $lte $in $nin``
* logical — ``$and $or $nor $not``
* structural — ``$exists $regex $size $elemMatch``
* geospatial — ``$near $within`` (delegated to :mod:`repro.docstore.geo`)

As in MongoDB, a comparison against a field whose value is a list also
matches when *any element* of the list matches.
"""

from __future__ import annotations

import re
from typing import Any

from repro.docstore.errors import QueryError
from repro.docstore.geo import match_near, match_within
from repro.docstore.paths import MISSING, get_path

_COMPARABLE = (int, float, str)


def _ordered(a: Any, b: Any) -> bool:
    """Can ``a`` and ``b`` be compared with ``<``/``>``?"""
    if isinstance(a, bool) or isinstance(b, bool):
        return False
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return True
    return isinstance(a, str) and isinstance(b, str)


def _compare(value: Any, operator: str, operand: Any) -> bool:
    if operator == "$eq":
        return _eq_with_arrays(value, operand)
    if operator == "$ne":
        return not _eq_with_arrays(value, operand)
    if operator in ("$gt", "$gte", "$lt", "$lte"):
        candidates = value if isinstance(value, list) else [value]
        for candidate in candidates:
            if candidate is MISSING or not _ordered(candidate, operand):
                continue
            if operator == "$gt" and candidate > operand:
                return True
            if operator == "$gte" and candidate >= operand:
                return True
            if operator == "$lt" and candidate < operand:
                return True
            if operator == "$lte" and candidate <= operand:
                return True
        return False
    if operator == "$in":
        if not isinstance(operand, (list, tuple)):
            raise QueryError("$in requires a list operand")
        return any(_eq_with_arrays(value, item) for item in operand)
    if operator == "$nin":
        if not isinstance(operand, (list, tuple)):
            raise QueryError("$nin requires a list operand")
        return not any(_eq_with_arrays(value, item) for item in operand)
    if operator == "$exists":
        return (value is not MISSING) == bool(operand)
    if operator == "$regex":
        if value is MISSING or not isinstance(value, str):
            return False
        return re.search(operand, value) is not None
    if operator == "$size":
        return isinstance(value, list) and len(value) == operand
    if operator == "$elemMatch":
        if not isinstance(value, list):
            return False
        return any(matches(element, operand) if isinstance(element, dict)
                   else _matches_condition(element, operand)
                   for element in value)
    if operator == "$not":
        return not _matches_condition(value, operand)
    if operator == "$near":
        return match_near(value, operand)
    if operator == "$within":
        return match_within(value, operand)
    raise QueryError(f"unknown query operator {operator!r}")


def _eq_with_arrays(value: Any, operand: Any) -> bool:
    """MongoDB equality: direct match, or any-element match for lists."""
    if value is MISSING:
        return operand is None
    if value == operand:
        return True
    if isinstance(value, list) and not isinstance(operand, list):
        return any(element == operand for element in value)
    return False


def _matches_condition(value: Any, condition: Any) -> bool:
    """Match a single field value against its condition."""
    if isinstance(condition, dict) and condition and all(
            key.startswith("$") for key in condition):
        return all(_compare(value, op, operand)
                   for op, operand in condition.items())
    return _eq_with_arrays(value, condition)


def matches(document: dict, query: dict) -> bool:
    """Does ``document`` satisfy ``query``?

    Top-level keys are ANDed together, as in MongoDB.
    """
    if not isinstance(query, dict):
        raise QueryError(f"query must be a dict, got {type(query).__name__}")
    for key, condition in query.items():
        if key == "$and":
            if not all(matches(document, sub) for sub in condition):
                return False
        elif key == "$or":
            if not any(matches(document, sub) for sub in condition):
                return False
        elif key == "$nor":
            if any(matches(document, sub) for sub in condition):
                return False
        elif key.startswith("$"):
            raise QueryError(f"unknown top-level operator {key!r}")
        else:
            if not _matches_condition(get_path(document, key), condition):
                return False
    return True
