"""Update operators: ``$set $unset $inc $mul $min $max $push $pull
$addToSet $rename $setOnInsert``.

A plain document (no ``$`` keys) replaces the matched document wholesale
except for its ``_id`` — the same convention MongoDB follows.
``$setOnInsert`` is a no-op on a matched document; its fields only
apply when an upsert inserts (handled by the collection's upsert path).
"""

from __future__ import annotations

from typing import Any

from repro.docstore.errors import UpdateError
from repro.docstore.paths import MISSING, delete_path, get_path, set_path


def is_operator_update(update: dict) -> bool:
    """True when ``update`` uses ``$`` operators (vs full replacement)."""
    if not isinstance(update, dict):
        raise UpdateError(f"update must be a dict, got {type(update).__name__}")
    has_ops = any(key.startswith("$") for key in update)
    if has_ops and not all(key.startswith("$") for key in update):
        raise UpdateError("cannot mix update operators with plain fields")
    return has_ops


def apply_update(document: dict, update: dict) -> dict:
    """Apply ``update`` to ``document`` in place and return it."""
    if not is_operator_update(update):
        preserved_id = document.get("_id")
        document.clear()
        document.update(update)
        if preserved_id is not None:
            document["_id"] = preserved_id
        return document
    for operator, spec in update.items():
        handler = _HANDLERS.get(operator)
        if handler is None:
            raise UpdateError(f"unknown update operator {operator!r}")
        if not isinstance(spec, dict):
            raise UpdateError(f"{operator} requires a dict operand")
        for path, value in spec.items():
            handler(document, path, value)
    return document


def _set(document: dict, path: str, value: Any) -> None:
    set_path(document, path, value)


def _unset(document: dict, path: str, value: Any) -> None:
    delete_path(document, path)


def _inc(document: dict, path: str, value: Any) -> None:
    current = get_path(document, path)
    if current is MISSING:
        current = 0
    if not isinstance(current, (int, float)) or isinstance(current, bool):
        raise UpdateError(f"$inc target at {path!r} is not numeric")
    set_path(document, path, current + value)


def _mul(document: dict, path: str, value: Any) -> None:
    current = get_path(document, path)
    if current is MISSING:
        current = 0
    if not isinstance(current, (int, float)) or isinstance(current, bool):
        raise UpdateError(f"$mul target at {path!r} is not numeric")
    set_path(document, path, current * value)


def _min(document: dict, path: str, value: Any) -> None:
    current = get_path(document, path)
    if current is MISSING or value < current:
        set_path(document, path, value)


def _max(document: dict, path: str, value: Any) -> None:
    current = get_path(document, path)
    if current is MISSING or value > current:
        set_path(document, path, value)


def _push(document: dict, path: str, value: Any) -> None:
    current = get_path(document, path)
    if current is MISSING:
        current = []
        set_path(document, path, current)
    if not isinstance(current, list):
        raise UpdateError(f"$push target at {path!r} is not a list")
    if isinstance(value, dict) and "$each" in value:
        current.extend(value["$each"])
    else:
        current.append(value)


def _pull(document: dict, path: str, value: Any) -> None:
    current = get_path(document, path)
    if current is MISSING:
        return
    if not isinstance(current, list):
        raise UpdateError(f"$pull target at {path!r} is not a list")
    current[:] = [item for item in current if item != value]


def _add_to_set(document: dict, path: str, value: Any) -> None:
    current = get_path(document, path)
    if current is MISSING:
        current = []
        set_path(document, path, current)
    if not isinstance(current, list):
        raise UpdateError(f"$addToSet target at {path!r} is not a list")
    if value not in current:
        current.append(value)


def _set_on_insert(document: dict, path: str, value: Any) -> None:
    """No-op on updates; the upsert insert path applies these fields."""


def _rename(document: dict, path: str, new_path: Any) -> None:
    value = get_path(document, path)
    if value is MISSING:
        return
    delete_path(document, path)
    set_path(document, str(new_path), value)


_HANDLERS = {
    "$set": _set,
    "$unset": _unset,
    "$inc": _inc,
    "$mul": _mul,
    "$min": _min,
    "$max": _max,
    "$push": _push,
    "$pull": _pull,
    "$addToSet": _add_to_set,
    "$rename": _rename,
    "$setOnInsert": _set_on_insert,
}
