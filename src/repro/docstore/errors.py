"""Document store errors."""


class DocStoreError(Exception):
    """Base class for document store errors."""


class DuplicateKeyError(DocStoreError):
    """Raised when an insert or update violates a unique index."""


class QueryError(DocStoreError):
    """Raised for malformed query documents."""


class UpdateError(DocStoreError):
    """Raised for malformed update documents."""
