"""The document store: a namespace of collections."""

from __future__ import annotations

from repro.docstore.collection import Collection


class DocumentStore:
    """MongoDB-style database: named collections created on first use."""

    def __init__(self, name: str = "sensocial"):
        self.name = name
        self._collections: dict[str, Collection] = {}

    def collection(self, name: str) -> Collection:
        """Return the collection ``name``, creating it if needed."""
        if name not in self._collections:
            self._collections[name] = Collection(name)
        return self._collections[name]

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def drop_collection(self, name: str) -> None:
        self._collections.pop(name, None)

    def collection_names(self) -> list[str]:
        return sorted(self._collections)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DocumentStore {self.name!r} collections={self.collection_names()}>"
