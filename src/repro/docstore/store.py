"""The document store: a namespace of collections."""

from __future__ import annotations

from repro.docstore.collection import Collection
from repro.obs.health import STATUS_OK, Healthcheck


class DocumentStore:
    """MongoDB-style database: named collections created on first use."""

    def __init__(self, name: str = "sensocial"):
        self.name = name
        self._collections: dict[str, Collection] = {}

    def collection(self, name: str) -> Collection:
        """Return the collection ``name``, creating it if needed."""
        if name not in self._collections:
            self._collections[name] = Collection(name)
        return self._collections[name]

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def drop_collection(self, name: str) -> None:
        self._collections.pop(name, None)

    def collection_names(self) -> list[str]:
        return sorted(self._collections)

    # -- snapshot / restore -------------------------------------------

    def snapshot(self) -> dict:
        """Full recoverable state of every collection."""
        return {"name": self.name,
                "collections": {name: self._collections[name].snapshot()
                                for name in self.collection_names()}}

    def restore(self, state: dict) -> None:
        """Replace this store's contents with ``state``.  Collections
        are created through :meth:`collection`, so a subclass (e.g. the
        journaled store) restores into its own collection type."""
        self._collections.clear()
        for name, collection_state in state.get("collections", {}).items():
            self.collection(name).restore(collection_state)

    # -- observability ------------------------------------------------

    def health(self) -> dict:
        """Uniform :class:`repro.obs.Healthcheck` document: per-
        collection document counts (an in-memory store is never
        down on its own; journaled subclasses add journal state)."""
        counters = {f"docs_{name}": len(self._collections[name])
                    for name in self.collection_names()}
        total = sum(counters.values())
        counters["collections"] = len(self._collections)
        counters["documents"] = total
        return Healthcheck.build(
            status=STATUS_OK,
            detail=(f"docstore {self.name!r}: {len(self._collections)} "
                    f"collections, {total} documents"),
            counters=counters,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DocumentStore {self.name!r} collections={self.collection_names()}>"
