"""Deterministic consistent-hash ring for device placement.

The cluster partitions devices across shard workers with a classic
consistent-hash ring (Karger et al.): every shard contributes a fixed
number of virtual points, a key is owned by the first point clockwise
from its hash, and removing a shard only moves the keys that shard
owned — the property the rebalance protocol relies on (see
``docs/SCALING.md``).

All hashing goes through :func:`stable_hash` (blake2b), **never**
Python's builtin ``hash``: builtin string hashing is salted per
interpreter run (``PYTHONHASHSEED``), and placement must be identical
across runs, across machines, and between the broker's routing-side
evaluation and the coordinator's placement-side evaluation of the same
ring (see ``tests/test_hash_stability.py``).

The ring serialises to a plain-dict *spec* (members + vnode count) so
it can ride a SUBSCRIBE packet: the broker rebuilds the identical ring
from the spec and evaluates ownership on its side of the wire
(:mod:`repro.mqtt.broker` shard-aware topic routing).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable

from repro.core.common.errors import MiddlewareError

#: Virtual points each shard contributes to the ring.  High enough
#: that small clusters spread load evenly, low enough that rebuilding
#: after a membership change stays cheap.
DEFAULT_VNODES = 128


def stable_hash(key: str) -> int:
    """A 64-bit hash of ``key`` independent of ``PYTHONHASHSEED``."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Maps string keys (device ids) to shard ids, deterministically."""

    def __init__(self, members: Iterable[str] = (),
                 vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise MiddlewareError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._members: list[str] = []
        self._points: list[int] = []
        self._owners: list[str] = []
        #: Bumped on every membership change so subscribers can tell a
        #: stale partition spec from the current one.
        self.version = 0
        for member in members:
            self.add(member)

    # -- membership ---------------------------------------------------

    def members(self) -> list[str]:
        return list(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def add(self, member: str) -> None:
        if member in self._members:
            raise MiddlewareError(f"shard {member!r} already on the ring")
        self._members.append(member)
        self._members.sort()
        self._rebuild()

    def remove(self, member: str) -> None:
        if member not in self._members:
            raise MiddlewareError(f"shard {member!r} not on the ring")
        self._members.remove(member)
        self._rebuild()

    def _rebuild(self) -> None:
        points: list[tuple[int, str]] = []
        for member in self._members:
            for vnode in range(self.vnodes):
                points.append((stable_hash(f"{member}#{vnode}"), member))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [owner for _, owner in points]
        self.version += 1

    # -- placement ----------------------------------------------------

    def owner(self, key: str) -> str:
        """The shard owning ``key`` (first ring point clockwise)."""
        if not self._members:
            raise MiddlewareError("the ring has no members")
        index = bisect_right(self._points, stable_hash(key))
        if index == len(self._points):
            index = 0  # wrap around the top of the hash space
        return self._owners[index]

    def assignments(self, keys: Iterable[str]) -> dict[str, list[str]]:
        """Group ``keys`` by owning shard (shard -> sorted keys)."""
        grouped: dict[str, list[str]] = {member: [] for member in self._members}
        for key in keys:
            grouped[self.owner(key)].append(key)
        for bucket in grouped.values():
            bucket.sort()
        return grouped

    # -- wire format --------------------------------------------------

    def to_spec(self) -> dict:
        """A plain-dict description another party can rebuild from."""
        return {"members": list(self._members), "vnodes": self.vnodes,
                "version": self.version}

    @classmethod
    def from_spec(cls, spec: dict) -> "ConsistentHashRing":
        ring = cls(spec["members"], vnodes=spec.get("vnodes", DEFAULT_VNODES))
        return ring

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ConsistentHashRing members={self._members} "
                f"vnodes={self.vnodes} v{self.version}>")
