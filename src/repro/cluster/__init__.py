"""Sharded server cluster: consistent-hash placement over shard workers.

Splits the monolithic server middleware into shard-agnostic
:class:`ShardWorker`\\ s and a :class:`ClusterCoordinator` owning
placement, routing and the merged cross-shard views.  A 1-shard
cluster is bit-identical to the monolithic server; see
``docs/SCALING.md`` for the ring, the rebalance protocol and the
zero-acknowledged-loss recovery semantics.
"""

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.database import ClusterDatabase
from repro.cluster.ring import DEFAULT_VNODES, ConsistentHashRing, stable_hash
from repro.cluster.worker import REGISTRATION_KEY_LEVEL, ShardWorker

__all__ = [
    "ClusterCoordinator",
    "ClusterDatabase",
    "ConsistentHashRing",
    "DEFAULT_VNODES",
    "REGISTRATION_KEY_LEVEL",
    "ShardWorker",
    "stable_hash",
]
