"""The cluster coordinator: placement, routing and merged views.

:class:`ClusterCoordinator` is the placement-aware half of the old
monolithic ``ServerSenSocialManager`` split (ISSUE 5).  It owns the
consistent-hash ring that maps devices to :class:`ShardWorker`\\ s,
routes ingest and OSN action triggers to the owning shard, merges
every cross-shard concern — multicast membership queries, cross-user
filter context, aggregators, the database facade — and aggregates
per-shard health into one cluster document.  Server applications talk
to the coordinator exactly as they talked to the monolith.

Two regimes:

- ``shards=1`` — a *passthrough* cluster: one worker inheriting the
  monolith's address, client id and (absent) partition spec.  Every
  coordinator method delegates, so a 1-shard run is **bit-identical**
  to the pre-cluster server (pinned by ``tests/test_cluster.py``).
- ``shards=N>1`` — the coordinator registers the public server
  address itself and forwards each data-plane message synchronously to
  the shard the ring places its device on; shards share one
  :class:`ServerFilterManager` (cross-user conditions see context from
  users on other shards, like the monolith) and one stream-id sequence
  (``srv-sN`` ids stay globally unique and creation-ordered).

Failure handling: :meth:`crash_shard` kills one worker;
:meth:`rebalance` removes dead workers from the ring, re-subscribes
survivors (the broker replays retained registrations of inherited
devices), replays the dead shard's write-ahead journal and migrates
its documents, dedup ids and live stream handles to the new owners —
the zero-acknowledged-loss protocol detailed in ``docs/SCALING.md``.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.cluster.database import ClusterDatabase, merge_status
from repro.cluster.ring import DEFAULT_VNODES, ConsistentHashRing
from repro.cluster.worker import REGISTRATION_KEY_LEVEL, ShardWorker
from repro.core.common.errors import MiddlewareError
from repro.core.common.filters import Filter
from repro.core.common.granularity import Granularity
from repro.core.common.modality import ModalityType
from repro.core.common.stream_config import StreamMode
from repro.core.server.aggregator import Aggregator
from repro.core.server.filter_manager import ServerFilterManager
from repro.core.server.manager import _PLATFORM_MODALITY
from repro.core.server.multicast import MulticastQuery, MulticastStream
from repro.core.server.server_stream import ServerStream
from repro.core.server.storage import ServerDatabase
from repro.net.message import Message
from repro.net.network import Endpoint, Network
from repro.obs import Healthcheck, Observability
from repro.obs.health import STATUS_DEGRADED, STATUS_DOWN
from repro.osn.actions import ActionType, OsnAction
from repro.simkit.world import World


class ClusterCoordinator(Endpoint):
    """N shard workers behind the monolithic server's API."""

    def __init__(self, world: World, network: Network, shards: int = 1, *,
                 broker_address: str = "mqtt-broker",
                 address: str = "sensocial-server",
                 processing_delay=None, durability=None,
                 vnodes: int = DEFAULT_VNODES):
        if shards < 1:
            raise MiddlewareError(f"a cluster needs >= 1 shard, got {shards}")
        if durability is not None and len(durability) != shards:
            raise MiddlewareError(
                f"durability list has {len(durability)} entries "
                f"for {shards} shards")
        self.world = world
        self.network = network
        self.address = address
        self.obs = Observability.of(world)
        self._passthrough = shards == 1
        #: Shared cross-user filter context (``None`` in passthrough:
        #: the single worker builds its own, like the monolith did).
        self.filters = None if self._passthrough \
            else ServerFilterManager(world)
        stream_seq = None if self._passthrough else itertools.count(1)
        self._shards: dict[str, ShardWorker] = {}
        self._order: list[str] = []
        for index in range(shards):
            shard_id = f"shard-{index}"
            worker = ShardWorker(
                world, network, shard_id,
                broker_address=broker_address,
                address=address if self._passthrough
                else f"{address.rsplit('-', 1)[0]}-{shard_id}",
                durability=None if durability is None else durability[index],
                filters=self.filters, stream_seq=stream_seq,
                processing_delay=processing_delay)
            self._shards[shard_id] = worker
            self._order.append(shard_id)
        if self._passthrough:
            self.filters = self._shards["shard-0"].filters
        self.ring = ConsistentHashRing(self._order, vnodes=vnodes)
        #: Learned placement maps, fed by per-shard registration hooks.
        self._user_device: dict[str, str] = {}
        self._user_shard: dict[str, str] = {}
        self._plugins: list = []
        self._action_listeners: list[Callable[[OsnAction], None]] = []
        self._registration_listeners: list[Callable[[str, str], None]] = []
        self.multicasts: list[MulticastStream] = []
        self._multicast_seq = itertools.count(1)
        self.rebalances = 0
        self._database = None
        if not self._passthrough:
            # The coordinator is the cluster's public ingress; shards
            # hide behind their own addresses.  (In passthrough the
            # single worker registered the public address itself.)
            network.register(address, self)
            self._database = ClusterDatabase(self)
            for shard_id in self._order:
                self._hook_registration(self._shards[shard_id])

    # -- wiring -------------------------------------------------------

    def _hook_registration(self, shard: ShardWorker) -> None:
        def hook(user_id: str, device_id: str) -> None:
            self._user_device[user_id] = device_id
            self._user_shard[user_id] = shard.shard_id
            for listener in list(self._registration_listeners):
                listener(user_id, device_id)
        shard.on_registration(hook)

    def _partition_for(self, shard_id: str) -> dict:
        spec = self.ring.to_spec()
        spec["owner"] = shard_id
        spec["key_level"] = REGISTRATION_KEY_LEVEL
        return spec

    # -- shard access -------------------------------------------------

    @property
    def _mono(self) -> ShardWorker:
        return self._shards["shard-0"]

    def shard_workers(self) -> list[ShardWorker]:
        """Active (non-retired) workers in shard order."""
        return [self._shards[shard_id] for shard_id in self._order
                if not self._shards[shard_id].retired]

    def all_shard_workers(self) -> list[ShardWorker]:
        """Every worker ever on the ring, retired ones included —
        the population cluster-wide counters aggregate over."""
        return [self._shards[shard_id] for shard_id in self._order]

    def shard_for_device(self, device_id: str) -> ShardWorker:
        return self._shards[self.ring.owner(device_id)]

    def shard_for_user(self, user_id: str) -> ShardWorker:
        """The worker holding ``user_id``'s documents.

        Registered users live with their device; users the cluster has
        never seen register (e.g. OSN-only participants) are homed by a
        deterministic user-hash so their action history still lands on
        one stable shard.
        """
        shard_id = self._user_shard.get(user_id)
        if shard_id is not None and not self._shards[shard_id].retired:
            return self._shards[shard_id]
        device_id = self._user_device.get(user_id)
        if device_id is not None:
            return self.shard_for_device(device_id)
        return self._shards[self.ring.owner(f"user:{user_id}")]

    # -- facade attributes --------------------------------------------

    @property
    def database(self):
        return self._mono.database if self._passthrough else self._database

    @property
    def durability(self):
        """Shard 0's durability controller (the storage-fault target;
        exact in passthrough, representative on a wider cluster)."""
        return self._mono.durability

    @property
    def mqtt(self):
        return self._mono.mqtt

    @property
    def dedup(self):
        return self._mono.dedup

    @property
    def streams(self) -> dict[str, ServerStream]:
        if self._passthrough:
            return self._mono.streams
        merged: dict[str, ServerStream] = {}
        for shard in self.shard_workers():
            merged.update(shard.streams)
        return merged

    @property
    def crashed(self) -> bool:
        active = self.shard_workers()
        return bool(active) and all(shard.crashed for shard in active)

    def fault_addresses(self) -> list[str]:
        """Every network address a ``server``-targeted fault hits."""
        addresses = [] if self._passthrough else [self.address]
        for shard in self.shard_workers():
            addresses.extend([shard.address, shard.mqtt.address])
        return addresses

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        for shard_id in self._order:
            self._shards[shard_id].start(
                partition=None if self._passthrough
                else self._partition_for(shard_id))

    def crash(self) -> None:
        """Whole-tier outage: every active shard dies."""
        for shard in self.shard_workers():
            shard.crash()

    def restart(self) -> None:
        for shard in self.shard_workers():
            if shard.crashed:
                shard.restart()

    def crash_shard(self, index: int) -> ShardWorker:
        """Kill one shard worker (``shard_crash`` chaos fault)."""
        shard = self._shard_at(index)
        shard.crash()
        return shard

    def restart_shard(self, index: int) -> ShardWorker:
        shard = self._shard_at(index)
        if shard.retired:
            raise MiddlewareError(
                f"shard {shard.shard_id!r} was rebalanced away; "
                f"a retired shard never rejoins the ring")
        shard.restart()
        return shard

    def _shard_at(self, index: int) -> ShardWorker:
        if not 0 <= index < len(self._order):
            raise MiddlewareError(
                f"no shard {index} in a {len(self._order)}-shard cluster")
        return self._shards[self._order[index]]

    # -- rebalance ----------------------------------------------------

    def rebalance(self) -> dict:
        """Fail crashed shards out of the ring and migrate their state.

        Protocol (each step deterministic, all on the world scheduler's
        current instant):

        1. remove every crashed shard from the ring and retire it;
        2. re-subscribe the survivors with the new ring — the broker
           replays retained registrations, so every inherited device
           re-registers on its new owner without the phone sending a
           byte;
        3. for each dead shard, replay its write-ahead journal
           (snapshot + tail) and copy users, records and OSN actions to
           the shards the new ring places them on;
        4. replicate the dead shard's dedup ids to all survivors, so a
           retransmission of a record the dead shard acknowledged is
           absorbed as a duplicate, never double-ingested;
        5. re-home the dead shard's live :class:`ServerStream` handles
           (listeners intact) onto the inheriting shards.

        A dead shard without a journal loses its documents (the same
        amnesia a non-durable monolith restart has) but devices still
        migrate via the retained-registration replay.  Acknowledged
        records are never lost when durability is on: acked ⇒
        journaled ⇒ replayed here.
        """
        if self._passthrough:
            raise MiddlewareError("a 1-shard cluster cannot rebalance")
        dead = [self._shards[shard_id] for shard_id in self._order
                if self._shards[shard_id].crashed
                and not self._shards[shard_id].retired]
        if not dead:
            return {"retired": [], "migrated": {}}
        if len(dead) == len(self.shard_workers()):
            raise MiddlewareError("cannot rebalance: no live shard left")
        for shard in dead:
            self.ring.remove(shard.shard_id)
            shard.retire()
        survivors = self.shard_workers()
        for shard in survivors:
            shard.update_partition(self._partition_for(shard.shard_id))
        migrated = {"users": 0, "records": 0, "actions": 0,
                    "dedup_ids": 0, "streams": 0}
        for shard in dead:
            self._migrate_shard_state(shard, survivors, migrated)
        self.rebalances += 1
        if self.obs is not None:
            self.obs.telemetry.counter("cluster_rebalances").inc()
        return {"retired": [shard.shard_id for shard in dead],
                "migrated": migrated}

    def _migrate_shard_state(self, dead: ShardWorker,
                             survivors: list[ShardWorker],
                             migrated: dict) -> None:
        if dead.durability is not None:
            store, dedup_ids = dead.durability.recover()
            recovered = ServerDatabase(store=store)
            for doc in list(recovered.users.find()):
                owner = self.shard_for_device(doc["device_id"])
                owner.database.register_device(
                    doc["user_id"], doc["device_id"],
                    doc.get("modalities", []))
                if doc.get("friends"):
                    owner.database.set_friends(doc["user_id"],
                                               doc["friends"])
                if doc.get("location") is not None:
                    owner.database.users.update_one(
                        {"user_id": doc["user_id"]},
                        {"$set": {"location": doc["location"]}})
                self._user_device[doc["user_id"]] = doc["device_id"]
                self._user_shard[doc["user_id"]] = owner.shard_id
                migrated["users"] += 1
            for doc in list(recovered.records.find()):
                owner = self.shard_for_device(doc["device_id"])
                owner.database.records.insert_one(
                    {key: value for key, value in doc.items()
                     if key != "_id"})
                migrated["records"] += 1
            for doc in list(recovered.actions.find()):
                owner = self.shard_for_user(doc["user_id"])
                owner.database.actions.insert_one(
                    {key: value for key, value in doc.items()
                     if key != "_id"})
                migrated["actions"] += 1
            for record_id in dedup_ids:
                # Over-approximate: any survivor may receive the
                # retransmission (the ring moved), so all of them must
                # recognise it as already acknowledged.
                for survivor in survivors:
                    survivor.dedup.remember(record_id)
                migrated["dedup_ids"] += 1
        for stream_id in list(dead.streams):
            stream = dead.release_stream(stream_id)
            if stream is None or stream.destroyed:
                continue
            self.shard_for_device(stream.device_id).adopt_stream(stream)
            migrated["streams"] += 1

    # -- ingress data plane -------------------------------------------

    def deliver(self, message: Message) -> None:
        """Route one data-plane message to its device's owner shard.

        The forward is a synchronous method call — the coordinator and
        its shards are one process tier, so routing adds no network hop
        and no latency, preserving the monolith's timing exactly.
        """
        protocol = message.headers.get("protocol")
        if protocol == "stream-data":
            device_id = message.payload.get("device_id")
            shard = self.shard_for_device(device_id) \
                if device_id is not None else self._mono
            shard.deliver(message)
        elif protocol == "location-update":
            shard = self.shard_for_user(message.payload["user_id"])
            if shard.crashed:
                return
            shard._on_location_update(message.payload)
            # The owning shard refreshed nothing: multicasts live here.
            for multicast in list(self.multicasts):
                if multicast.query.is_geo_dependent:
                    multicast.refresh()

    # -- plug-ins and listeners ---------------------------------------

    def attach_plugin(self, plugin) -> None:
        if self._passthrough:
            self._mono.attach_plugin(plugin)
            return
        self._plugins.append(plugin)
        plugin.add_listener(self._on_osn_action)

    def plugins(self) -> list:
        return self._mono.plugins() if self._passthrough \
            else list(self._plugins)

    def add_action_listener(self, listener) -> None:
        if self._passthrough:
            self._mono.add_action_listener(listener)
            return
        self._action_listeners.append(listener)

    def register_listener(self, listener) -> None:
        if self._passthrough:
            self._mono.register_listener(listener)
            return
        # Records are dispatched by whichever shard ingests them, so
        # the listener must ride every shard; global callback order is
        # record arrival order, exactly as on the monolith.
        for shard in self.shard_workers():
            shard.register_listener(listener)

    def on_registration(self, listener) -> None:
        if self._passthrough:
            self._mono.on_registration(listener)
            return
        self._registration_listeners.append(listener)

    # -- user/graph management ----------------------------------------

    def sync_social_graph(self, graph) -> None:
        if self._passthrough:
            self._mono.sync_social_graph(graph)
            return
        database = self.database
        for user_id in graph.users():
            if database.is_registered(user_id):
                database.set_friends(user_id, [
                    friend for friend in graph.friends(user_id)
                    if database.is_registered(friend)])

    def registered_users(self) -> list[str]:
        return self.database.user_ids()

    def device_of(self, user_id: str) -> str | None:
        return self.database.device_of(user_id)

    # -- remote stream lifecycle --------------------------------------

    def create_stream(self, user_id: str, modality, granularity=Granularity.CLASSIFIED, *,
                      stream_filter: Filter | None = None,
                      settings: dict | None = None,
                      mode: StreamMode = StreamMode.CONTINUOUS) -> ServerStream:
        if self._passthrough:
            return self._mono.create_stream(
                user_id, modality, granularity, stream_filter=stream_filter,
                settings=settings, mode=mode)
        device_id = self.database.device_of(user_id)
        if device_id is None:
            raise MiddlewareError(f"user {user_id!r} has no registered device")
        return self.shard_for_device(device_id).create_stream(
            user_id, modality, granularity, stream_filter=stream_filter,
            settings=settings, mode=mode)

    def destroy_stream(self, stream_id: str) -> None:
        if self._passthrough:
            self._mono.destroy_stream(stream_id)
            return
        for shard in self.shard_workers():
            if stream_id in shard.streams:
                shard.destroy_stream(stream_id)
                return

    # -- aggregation and multicast ------------------------------------

    def allocate_multicast_name(self) -> str:
        if self._passthrough:
            return self._mono.allocate_multicast_name()
        return f"mcast-{next(self._multicast_seq)}"

    def create_aggregator(self, name: str,
                          streams: list[ServerStream]) -> Aggregator:
        return Aggregator.wrap(name, streams)

    def create_multicast_stream(self, modality: ModalityType,
                                granularity: Granularity,
                                query: MulticastQuery, *,
                                stream_filter: Filter | None = None,
                                settings: dict | None = None,
                                mode: StreamMode = StreamMode.CONTINUOUS,
                                name: str | None = None) -> MulticastStream:
        if self._passthrough:
            return self._mono.create_multicast_stream(
                modality, granularity, query, stream_filter=stream_filter,
                settings=settings, mode=mode, name=name)
        multicast = MulticastStream(
            self, modality, granularity, query, stream_filter=stream_filter,
            settings=settings, mode=mode, name=name)
        self.multicasts.append(multicast)
        multicast.refresh()
        return multicast

    def on_multicast_destroyed(self, multicast: MulticastStream) -> None:
        if self._passthrough:
            self._mono.on_multicast_destroyed(multicast)
            return
        if multicast in self.multicasts:
            self.multicasts.remove(multicast)

    def select_users(self, query: MulticastQuery) -> list[str]:
        """Monolith membership semantics over the merged database."""
        if self._passthrough:
            return self._mono.select_users(query)
        database = self.database
        candidates = set(database.user_ids())
        if query.user_ids is not None:
            candidates &= set(query.user_ids)
        if query.place is not None:
            candidates &= set(database.users_in_place(query.place))
        if query.near_point is not None:
            candidates &= set(database.users_near(
                list(query.near_point), query.near_km))
        if query.near_user is not None:
            location = database.location_of(query.near_user)
            if location is None:
                candidates = set()
            else:
                nearby = set(database.users_near(
                    location["point"], query.near_user_km))
                nearby.discard(query.near_user)
                candidates &= nearby
        if query.friends_of is not None:
            candidates &= self._friends_within(query.friends_of, query.hops)
        return sorted(candidates)

    def _friends_within(self, user_id: str, hops: int) -> set[str]:
        seen = {user_id}
        frontier = {user_id}
        reached: set[str] = set()
        for _ in range(hops):
            next_frontier: set[str] = set()
            for current in frontier:
                for friend in self.database.friends_of(current):
                    if friend not in seen:
                        seen.add(friend)
                        reached.add(friend)
                        next_frontier.add(friend)
            frontier = next_frontier
        return reached

    # -- OSN action plane ---------------------------------------------

    def _on_osn_action(self, action: OsnAction) -> None:
        """Cluster version of the monolith's action intake: account on
        the owning shard, mark shared filter context, maintain
        cross-shard friendships, then route triggers globally."""
        shard = self.shard_for_user(action.user_id)
        if shard.crashed:
            shard.actions_lost_crashed += 1
            return
        shard.actions_received += 1
        latency = self.world.now - action.created_at
        shard._recent_action_latencies.append(latency)
        if self.obs is not None:
            self.obs.telemetry.timer(
                "osn_action_delay", platform=action.platform).observe(latency)
        shard.database.store_action(action)
        modality = _PLATFORM_MODALITY.get(action.platform)
        if modality is not None:
            self.filters.mark_osn_active(action.user_id, modality)
        self._maintain_friendships(action)
        for listener in list(self._action_listeners):
            listener(action)
        self._route_action_triggers(action)

    def _maintain_friendships(self, action: OsnAction) -> None:
        friend_id = action.payload.get("friend_id")
        if friend_id is None:
            return
        if action.type is ActionType.FRIEND_ADD:
            self.database.add_friend(action.user_id, friend_id)
        elif action.type is ActionType.FRIEND_REMOVE:
            self.database.remove_friend(action.user_id, friend_id)

    def _route_action_triggers(self, action: OsnAction) -> None:
        """Fan one action out to every device it must trigger, in
        global stream-creation order (the shared ``srv-sN`` sequence
        makes per-shard order slots globally comparable)."""
        own_device = self._user_device.get(action.user_id)
        if own_device is None:
            own_device = self.database.device_of(action.user_id)
        if own_device is not None:
            self.shard_for_device(own_device).triggers.send_action_trigger(
                own_device, action)
        entries: list[tuple[int, ShardWorker, ServerStream]] = []
        for shard in self.shard_workers():
            bucket = shard._osn_trigger_index.get(action.user_id)
            if not bucket:
                continue
            for stream in bucket.values():
                if (stream.destroyed or stream.device_id == own_device
                        or shard.streams.get(stream.stream_id) is not stream):
                    continue
                entries.append((shard._stream_order.get(stream.stream_id, 0),
                                shard, stream))
        for _, shard, stream in sorted(entries, key=lambda entry: entry[0]):
            shard.triggers.send_action_trigger(
                stream.device_id, action, stream_ids=[stream.stream_id])

    # -- observability ------------------------------------------------

    def action_latencies(self) -> list[float]:
        if self._passthrough:
            return self._mono.action_latencies()
        merged: list[float] = []
        for shard in self.all_shard_workers():
            merged.extend(shard.action_latencies())
        return merged

    def health(self) -> dict:
        """One cluster document aggregating every shard's health.

        Counters are summed over *all* shards, retired ones included —
        records a dead shard ingested before its crash stay counted, so
        delivery accounting (``ChaosReport.records_lost``) holds across
        a rebalance.
        """
        if self._passthrough:
            return self._mono.health()
        shard_docs = {shard.shard_id: shard.health()
                      for shard in self.all_shard_workers()}
        counters: dict[str, float] = {}
        for doc in shard_docs.values():
            for key, value in doc["counters"].items():
                if isinstance(value, (int, float)):
                    counters[key] = counters.get(key, 0) + value
        active = self.shard_workers()
        down = [shard for shard in active if shard.crashed]
        if active and len(down) == len(active):
            status = STATUS_DOWN
        elif down or len(active) < len(self._order):
            status = STATUS_DEGRADED
        else:
            status = merge_status(doc["status"]
                                  for doc in shard_docs.values())
        detail = (f"cluster {self.address}: "
                  f"{len(active) - len(down)}/{len(self._order)} shards up, "
                  f"{int(counters.get('records_received', 0))} records "
                  f"ingested")
        last_seen = [shard.last_record_at for shard in self.all_shard_workers()
                     if shard.last_record_at is not None]
        extras: dict = {
            "connected": any(shard.mqtt.connected for shard in active),
            "last_seen": max(last_seen) if last_seen else None,
            "database": self.database.health(),
            "ring": self.ring.to_spec(),
            "rebalances": self.rebalances,
            "shards": shard_docs,
        }
        durable = [shard for shard in self.all_shard_workers()
                   if shard.durability is not None]
        if durable:
            extras["durability"] = self._durability_health(durable)
        return Healthcheck.build(status=status, detail=detail,
                                 counters=counters, **extras)

    def _durability_health(self, durable: list[ShardWorker]) -> dict:
        docs = {shard.shard_id: shard.durability.health()
                for shard in durable}
        counters: dict[str, float] = {}
        for doc in docs.values():
            for key, value in doc["counters"].items():
                if isinstance(value, (int, float)):
                    counters[key] = counters.get(key, 0) + value
        return Healthcheck.build(
            status=merge_status(doc["status"] for doc in docs.values()),
            detail=f"cluster durability over {len(docs)} shards",
            counters=counters, shards=docs)

    def cluster_report(self) -> dict:
        """Placement + per-shard work snapshot (the ``repro cluster``
        CLI surface and the scaling benchmark's raw material)."""
        return {
            "shards": len(self._order),
            "active": len(self.shard_workers()),
            "ring": self.ring.to_spec(),
            "rebalances": self.rebalances,
            "work": {shard.shard_id: shard.work_done()
                     for shard in self.all_shard_workers()},
            "records": {shard.shard_id: shard.records_received
                        for shard in self.all_shard_workers()},
            "devices": self.ring.assignments(
                sorted(set(self._user_device.values()))),
        }
