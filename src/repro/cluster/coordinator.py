"""The cluster coordinator: placement, routing and merged views.

:class:`ClusterCoordinator` is the placement-aware half of the old
monolithic ``ServerSenSocialManager`` split (ISSUE 5).  It owns the
consistent-hash ring that maps devices to :class:`ShardWorker`\\ s,
routes ingest and OSN action triggers to the owning shard, merges
every cross-shard concern — multicast membership queries, cross-user
filter context, aggregators, the database facade — and aggregates
per-shard health into one cluster document.  Server applications talk
to the coordinator exactly as they talked to the monolith.

Two regimes:

- ``shards=1`` — a *passthrough* cluster: one worker inheriting the
  monolith's address, client id and (absent) partition spec.  Every
  coordinator method delegates, so a 1-shard run is **bit-identical**
  to the pre-cluster server (pinned by ``tests/test_cluster.py``).
- ``shards=N>1`` — the coordinator registers the public server
  address itself and forwards each data-plane message synchronously to
  the shard the ring places its device on; shards share one
  :class:`ServerFilterManager` (cross-user conditions see context from
  users on other shards, like the monolith) and one stream-id sequence
  (``srv-sN`` ids stay globally unique and creation-ordered).

Failure handling: :meth:`crash_shard` kills one worker;
:meth:`rebalance` removes dead workers from the ring, re-subscribes
survivors (the broker replays retained registrations of inherited
devices), replays the dead shard's write-ahead journal and migrates
its documents, dedup ids and live stream handles to the new owners —
the zero-acknowledged-loss protocol detailed in ``docs/SCALING.md``.
"""

from __future__ import annotations

import itertools
import time
from typing import Callable

from repro.cluster.database import ClusterDatabase, merge_status
from repro.cluster.ring import DEFAULT_VNODES, ConsistentHashRing
from repro.cluster.worker import REGISTRATION_KEY_LEVEL, ShardWorker
from repro.core.common.errors import MiddlewareError
from repro.core.common.filters import Filter
from repro.core.common.granularity import Granularity
from repro.core.common.modality import ModalityType
from repro.core.common.stream_config import StreamMode
from repro.core.server.aggregator import Aggregator
from repro.core.server.filter_manager import ServerFilterManager
from repro.core.server.manager import _PLATFORM_MODALITY
from repro.core.server.multicast import MulticastQuery, MulticastStream
from repro.core.server.server_stream import ServerStream
from repro.core.server.storage import ServerDatabase
from repro.net.message import Message
from repro.net.network import Endpoint, Network
from repro.obs import Healthcheck, Observability
from repro.obs.health import STATUS_DEGRADED, STATUS_DOWN
from repro.osn.actions import ActionType, OsnAction
from repro.simkit.world import World


class ClusterCoordinator(Endpoint):
    """N shard workers behind the monolithic server's API."""

    def __init__(self, world: World, network: Network, shards: int = 1, *,
                 broker_address: str = "mqtt-broker",
                 address: str = "sensocial-server",
                 processing_delay=None, durability=None,
                 vnodes: int = DEFAULT_VNODES, durability_factory=None):
        if shards < 1:
            raise MiddlewareError(f"a cluster needs >= 1 shard, got {shards}")
        if durability is not None and len(durability) != shards:
            raise MiddlewareError(
                f"durability list has {len(durability)} entries "
                f"for {shards} shards")
        self.world = world
        self.network = network
        self.address = address
        self.obs = Observability.of(world)
        self._broker_address = broker_address
        self._processing_delay = processing_delay
        self._shard_address_base = address.rsplit('-', 1)[0]
        #: Builds a fresh durability controller for each shard
        #: :meth:`add_shard` spawns (``None`` on non-durable clusters).
        self._durability_factory = durability_factory
        self._passthrough = shards == 1
        #: Shared cross-user filter context (``None`` in passthrough:
        #: the single worker builds its own, like the monolith did).
        self.filters = None if self._passthrough \
            else ServerFilterManager(world)
        #: Shared stream-id sequence (``None`` until a passthrough
        #: cluster converts: it then adopts the worker's own counter).
        self._stream_seq = None if self._passthrough else itertools.count(1)
        self._shards: dict[str, ShardWorker] = {}
        self._order: list[str] = []
        for index in range(shards):
            shard_id = f"shard-{index}"
            worker = ShardWorker(
                world, network, shard_id,
                broker_address=broker_address,
                address=address if self._passthrough
                else f"{self._shard_address_base}-{shard_id}",
                durability=None if durability is None else durability[index],
                filters=self.filters, stream_seq=self._stream_seq,
                processing_delay=processing_delay)
            self._shards[shard_id] = worker
            self._order.append(shard_id)
        if self._passthrough:
            self.filters = self._shards["shard-0"].filters
        #: Monotonic shard-id allocator — retired ids are never reused,
        #: so journal state and broker sessions can't be inherited by
        #: an unrelated later shard.
        self._shard_seq = itertools.count(shards)
        self.ring = ConsistentHashRing(self._order, vnodes=vnodes)
        #: Learned placement maps, fed by per-shard registration hooks.
        self._user_device: dict[str, str] = {}
        self._user_shard: dict[str, str] = {}
        self._plugins: list = []
        self._action_listeners: list[Callable[[OsnAction], None]] = []
        self._registration_listeners: list[Callable[[str, str], None]] = []
        #: Record listeners tracked cluster-side so shards added later
        #: inherit every listener registered before they existed.
        self._record_listeners: list[Callable] = []
        self.multicasts: list[MulticastStream] = []
        self._multicast_seq = itertools.count(1)
        self.rebalances = 0
        self.scale_outs = 0
        self.scale_ins = 0
        self.rolling_upgrades = 0
        #: One entry per lifecycle operation (rebalance / add / remove /
        #: upgrade): moved-device counts, migrated document counts and
        #: wall-clock step timings — the ``repro cluster`` CLI surface.
        self.lifecycle_log: list[dict] = []
        #: SLO control plane, when one is deployed over this cluster
        #: (set by :class:`repro.obs.control.SloControlPlane`).
        self.slo_control = None
        self._database = None
        if not self._passthrough:
            # The coordinator is the cluster's public ingress; shards
            # hide behind their own addresses.  (In passthrough the
            # single worker registered the public address itself.)
            network.register(address, self)
            self._database = ClusterDatabase(self)
            for shard_id in self._order:
                self._hook_registration(self._shards[shard_id])

    # -- wiring -------------------------------------------------------

    def _hook_registration(self, shard: ShardWorker) -> None:
        def hook(user_id: str, device_id: str) -> None:
            self._user_device[user_id] = device_id
            self._user_shard[user_id] = shard.shard_id
            for listener in list(self._registration_listeners):
                listener(user_id, device_id)
        shard.on_registration(hook)

    def _partition_for(self, shard_id: str) -> dict:
        spec = self.ring.to_spec()
        spec["owner"] = shard_id
        spec["key_level"] = REGISTRATION_KEY_LEVEL
        return spec

    # -- shard access -------------------------------------------------

    @property
    def _mono(self) -> ShardWorker:
        return self._shards["shard-0"]

    def shard_workers(self) -> list[ShardWorker]:
        """Active (non-retired) workers in shard order."""
        return [self._shards[shard_id] for shard_id in self._order
                if not self._shards[shard_id].retired]

    def all_shard_workers(self) -> list[ShardWorker]:
        """Every worker ever on the ring, retired ones included —
        the population cluster-wide counters aggregate over."""
        return [self._shards[shard_id] for shard_id in self._order]

    def shard_for_device(self, device_id: str) -> ShardWorker:
        return self._shards[self.ring.owner(device_id)]

    def shard_for_user(self, user_id: str) -> ShardWorker:
        """The worker holding ``user_id``'s documents.

        Registered users live with their device; users the cluster has
        never seen register (e.g. OSN-only participants) are homed by a
        deterministic user-hash so their action history still lands on
        one stable shard.
        """
        shard_id = self._user_shard.get(user_id)
        if shard_id is not None and not self._shards[shard_id].retired:
            return self._shards[shard_id]
        device_id = self._user_device.get(user_id)
        if device_id is not None:
            return self.shard_for_device(device_id)
        return self._shards[self.ring.owner(f"user:{user_id}")]

    # -- facade attributes --------------------------------------------

    @property
    def database(self):
        return self._mono.database if self._passthrough else self._database

    @property
    def durability(self):
        """Shard 0's durability controller (the storage-fault target;
        exact in passthrough, representative on a wider cluster)."""
        return self._mono.durability

    @property
    def mqtt(self):
        return self._mono.mqtt

    @property
    def dedup(self):
        return self._mono.dedup

    @property
    def streams(self) -> dict[str, ServerStream]:
        if self._passthrough:
            return self._mono.streams
        merged: dict[str, ServerStream] = {}
        for shard in self.shard_workers():
            merged.update(shard.streams)
        return merged

    @property
    def crashed(self) -> bool:
        active = self.shard_workers()
        return bool(active) and all(shard.crashed for shard in active)

    def fault_addresses(self) -> list[str]:
        """Every network address a ``server``-targeted fault hits."""
        addresses = [] if self._passthrough else [self.address]
        for shard in self.shard_workers():
            addresses.extend([shard.address, shard.mqtt.address])
        return addresses

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        for shard_id in self._order:
            self._shards[shard_id].start(
                partition=None if self._passthrough
                else self._partition_for(shard_id))

    def crash(self) -> None:
        """Whole-tier outage: every active shard dies."""
        for shard in self.shard_workers():
            shard.crash()

    def restart(self) -> None:
        for shard in self.shard_workers():
            if shard.crashed:
                shard.restart()

    def crash_shard(self, index: int) -> ShardWorker:
        """Kill one shard worker (``shard_crash`` chaos fault)."""
        shard = self._shard_at(index)
        shard.crash()
        return shard

    def restart_shard(self, index: int) -> ShardWorker:
        shard = self._shard_at(index)
        if shard.retired:
            raise MiddlewareError(
                f"shard {shard.shard_id!r} was rebalanced away; "
                f"a retired shard never rejoins the ring")
        shard.restart()
        return shard

    def _shard_at(self, index: int) -> ShardWorker:
        if not 0 <= index < len(self._order):
            raise MiddlewareError(
                f"no shard {index} in a {len(self._order)}-shard cluster")
        return self._shards[self._order[index]]

    # -- rebalance ----------------------------------------------------

    def rebalance(self) -> dict:
        """Fail crashed shards out of the ring and migrate their state.

        Protocol (each step deterministic, all on the world scheduler's
        current instant):

        1. remove every crashed shard from the ring and retire it;
        2. re-subscribe the survivors with the new ring — the broker
           replays retained registrations, so every inherited device
           re-registers on its new owner without the phone sending a
           byte;
        3. for each dead shard, replay its write-ahead journal
           (snapshot + tail) and copy users, records and OSN actions to
           the shards the new ring places them on;
        4. replicate the dead shard's dedup ids to all survivors, so a
           retransmission of a record the dead shard acknowledged is
           absorbed as a duplicate, never double-ingested;
        5. re-home the dead shard's live :class:`ServerStream` handles
           (listeners intact) onto the inheriting shards.

        A dead shard without a journal loses its documents (the same
        amnesia a non-durable monolith restart has) but devices still
        migrate via the retained-registration replay.  Acknowledged
        records are never lost when durability is on: acked ⇒
        journaled ⇒ replayed here.
        """
        if self._passthrough:
            raise MiddlewareError("a 1-shard cluster cannot rebalance")
        dead = [self._shards[shard_id] for shard_id in self._order
                if self._shards[shard_id].crashed
                and not self._shards[shard_id].retired]
        if not dead:
            return {"retired": [], "migrated": {}}
        if len(dead) == len(self.shard_workers()):
            raise MiddlewareError("cannot rebalance: no live shard left")
        timings: dict[str, float] = {}
        step = time.perf_counter()
        dead_ids = {shard.shard_id for shard in dead}
        moved_devices = [device for device in
                         sorted(set(self._user_device.values()))
                         if self.ring.owner(device) in dead_ids]
        for shard in dead:
            self.ring.remove(shard.shard_id)
            shard.retire()
        timings["retire"] = time.perf_counter() - step
        step = time.perf_counter()
        survivors = self.shard_workers()
        for shard in survivors:
            shard.update_partition(self._partition_for(shard.shard_id))
        timings["resubscribe"] = time.perf_counter() - step
        step = time.perf_counter()
        migrated = {"users": 0, "records": 0, "actions": 0,
                    "dedup_ids": 0, "streams": 0}
        for shard in dead:
            self._migrate_shard_state(shard, survivors, migrated)
        timings["migrate"] = time.perf_counter() - step
        self.rebalances += 1
        if self.obs is not None:
            self.obs.telemetry.counter("cluster_rebalances").inc()
        entry = {"op": "rebalance", "at": self.world.now,
                 "retired": [shard.shard_id for shard in dead],
                 "migrated": migrated,
                 "moved_devices": len(moved_devices),
                 "step_timings_s": timings}
        self.lifecycle_log.append(entry)
        return {"retired": entry["retired"], "migrated": migrated}

    def _migrate_shard_state(self, dead: ShardWorker,
                             survivors: list[ShardWorker],
                             migrated: dict) -> None:
        if dead.durability is not None:
            store, dedup_ids = dead.durability.recover()
            self._migrate_documents(ServerDatabase(store=store), migrated)
            # Over-approximate: any survivor may receive the
            # retransmission (the ring moved), so all of them must
            # recognise it as already acknowledged.  The merge is
            # bounded — replicated ids enter as the oldest entries of
            # each survivor's window and evict by the same window
            # policy as local inserts.
            for survivor in survivors:
                survivor.dedup.merge_replicated(dedup_ids)
            migrated["dedup_ids"] += len(dedup_ids)
        self._migrate_streams(dead, migrated)

    def _migrate_documents(self, database: ServerDatabase,
                           migrated: dict) -> None:
        """Copy a departing shard's documents to their new ring owners."""
        for doc in list(database.users.find()):
            owner = self.shard_for_device(doc["device_id"])
            owner.database.register_device(
                doc["user_id"], doc["device_id"],
                doc.get("modalities", []))
            if doc.get("friends"):
                owner.database.set_friends(doc["user_id"],
                                           doc["friends"])
            if doc.get("location") is not None:
                owner.database.users.update_one(
                    {"user_id": doc["user_id"]},
                    {"$set": {"location": doc["location"]}})
            self._user_device[doc["user_id"]] = doc["device_id"]
            self._user_shard[doc["user_id"]] = owner.shard_id
            migrated["users"] += 1
        for doc in list(database.records.find()):
            owner = self.shard_for_device(doc["device_id"])
            owner.database.records.insert_one(
                {key: value for key, value in doc.items()
                 if key != "_id"})
            migrated["records"] += 1
        for doc in list(database.actions.find()):
            owner = self.shard_for_user(doc["user_id"])
            owner.database.actions.insert_one(
                {key: value for key, value in doc.items()
                 if key != "_id"})
            migrated["actions"] += 1

    def _migrate_streams(self, source: ShardWorker, migrated: dict,
                         devices: set[str] | None = None) -> None:
        """Re-home ``source``'s live stream handles onto ring owners.

        With ``devices`` given, only streams on those devices move
        (scale-out moves a slice); otherwise every stream moves
        (crash rebalance and drain move everything).
        """
        for stream_id in list(source.streams):
            stream = source.streams[stream_id]
            if devices is not None and stream.device_id not in devices:
                continue
            released = source.release_stream(stream_id)
            if released is None or released.destroyed:
                continue
            self.shard_for_device(released.device_id).adopt_stream(released)
            migrated["streams"] += 1

    # -- elastic lifecycle --------------------------------------------

    def _spawn_worker(self, shard_id: str, durability) -> ShardWorker:
        """Construct a worker for a shard joining an N>1 cluster and
        wire it into the coordinator's listener planes."""
        worker = ShardWorker(
            self.world, self.network, shard_id,
            broker_address=self._broker_address,
            address=f"{self._shard_address_base}-{shard_id}",
            durability=durability, filters=self.filters,
            stream_seq=self._stream_seq,
            processing_delay=self._processing_delay)
        self._shards[shard_id] = worker
        self._order.append(shard_id)
        self._hook_registration(worker)
        for listener in self._record_listeners:
            worker.register_listener(listener)
        return worker

    def _leave_passthrough(self) -> None:
        """Convert a 1-shard passthrough cluster to multi-shard mode.

        The single worker has been impersonating the monolith: it holds
        the public network address, the shared context objects and every
        application listener.  Scale-out needs the coordinator in the
        middle, so ownership moves up — *without* touching the worker's
        MQTT session (client id, subscription and broker queue survive
        unchanged; only the plain network address is re-homed, and the
        network resolves endpoints at delivery time, so even in-flight
        messages land on the coordinator).
        """
        worker = self._mono
        # 1. Address takeover: worker moves to its shard address, the
        #    coordinator becomes the public ingress.
        self.network.unregister(worker.address)
        worker.address = f"{self._shard_address_base}-{worker.shard_id}"
        self.network.register(worker.address, worker)
        self.network.register(self.address, self)
        # 2. Adopt the shared context the worker built for itself.
        self.filters = worker.filters
        self._stream_seq = worker._stream_seq
        self._multicast_seq = worker._multicast_seq
        # 3. Action plane: plugins re-point at the coordinator (the
        #    worker's listener must stop firing or every action would
        #    be accounted twice).
        for plugin in worker.plugins():
            plugin.remove_listener(worker._on_osn_action)
            plugin.add_listener(self._on_osn_action)
            self._plugins.append(plugin)
        worker._plugins.clear()
        self._action_listeners.extend(worker._action_listeners)
        worker._action_listeners.clear()
        # 4. Registration and record listeners: registration hooks move
        #    up (the coordinator's per-shard hook re-fires them); record
        #    listeners stay on the worker (records dispatch shard-side)
        #    and are tracked here so later shards inherit them.
        self._registration_listeners.extend(worker._registration_listeners)
        worker._registration_listeners.clear()
        self._record_listeners.extend(worker._record_listeners)
        # 5. Multicasts re-home: membership queries must now run over
        #    the merged database, not one shard's slice.
        for multicast in worker.multicasts:
            multicast._manager = self
            self.multicasts.append(multicast)
        worker.multicasts.clear()
        # 6. Merged views + placement maps.
        self._database = ClusterDatabase(self)
        for doc in list(worker.database.users.find()):
            self._user_device[doc["user_id"]] = doc["device_id"]
            self._user_shard[doc["user_id"]] = worker.shard_id
        self._hook_registration(worker)
        self._passthrough = False
        # Deliberately NOT re-subscribing here: the subscribe is a
        # network message, and one carrying the pre-growth one-member
        # ring would land at the broker *after* add_shard() migrated
        # documents away — its retained replay would re-register the
        # moved devices right back.  add_shard() sends the worker one
        # SUBSCRIBE with the grown ring instead.

    def add_shard(self, *, strategy: str = "snapshot") -> dict:
        """Scale out: grow the ring by one freshly bootstrapped shard.

        Protocol (all on the scheduler's current instant — no window in
        which a record can route to a shard that doesn't own it):

        1. a passthrough cluster first converts to multi-shard mode
           (:meth:`_leave_passthrough`);
        2. a new worker spawns on a never-used shard id, with its own
           journal when the cluster is durable;
        3. the ring grows; the devices whose ownership moved are
           exactly the consistent-hash delta (≈1/N of the fleet);
        4. the moved slice migrates: documents copy over (and are
           *deleted* from the old owners — both stay active, so a stale
           copy would double-count in merged reads), dedup ids
           replicate bounded, live stream handles re-home;
        5. the new shard subscribes with the grown ring and the
           broker replays its slice's retained registrations; the old
           owners re-subscribe with narrowed slices.

        ``strategy`` picks how a durable new shard loads the migrated
        documents: ``"snapshot"`` bulk-imports under a suspended
        journal and pays one checkpoint; ``"replay"`` journals every
        document individually (the cost baseline —
        ``benchmarks/test_cluster_scaling.py`` quantifies the gap).
        """
        if strategy not in ("snapshot", "replay"):
            raise MiddlewareError(
                f"unknown bootstrap strategy {strategy!r} "
                f"(expected 'snapshot' or 'replay')")
        timings: dict[str, float] = {}
        step = time.perf_counter()
        if self._passthrough:
            self._leave_passthrough()
            timings["convert"] = time.perf_counter() - step
        step = time.perf_counter()
        shard_id = f"shard-{next(self._shard_seq)}"
        durability = None
        if self._durability_factory is not None:
            durability = self._durability_factory()
        elif any(shard.durability is not None
                 for shard in self.shard_workers()):
            from repro.durability import ServerDurability
            durability = ServerDurability(self.world)
        worker = self._spawn_worker(shard_id, durability)
        timings["spawn"] = time.perf_counter() - step
        step = time.perf_counter()
        devices = sorted(set(self._user_device.values()))
        old_owner = {device: self.ring.owner(device) for device in devices}
        self.ring.add(shard_id)
        moved = [device for device in devices
                 if self.ring.owner(device) == shard_id
                 and old_owner[device] != shard_id]
        timings["ring"] = time.perf_counter() - step
        step = time.perf_counter()
        migrated = {"users": 0, "records": 0, "actions": 0,
                    "dedup_ids": 0, "streams": 0}
        bootstrap = self._bootstrap_new_shard(worker, moved, strategy,
                                              migrated)
        timings["migrate"] = time.perf_counter() - step
        step = time.perf_counter()
        worker.start(partition=self._partition_for(shard_id))
        for shard in self.shard_workers():
            if shard is not worker:
                shard.update_partition(self._partition_for(shard.shard_id))
        timings["resubscribe"] = time.perf_counter() - step
        self.scale_outs += 1
        if self.obs is not None:
            self.obs.telemetry.counter("cluster_scale_outs").inc()
        entry = {"op": "add_shard", "at": self.world.now,
                 "shard": shard_id, "strategy": strategy,
                 "moved_devices": len(moved), "migrated": migrated,
                 "bootstrap": bootstrap, "step_timings_s": timings}
        self.lifecycle_log.append(entry)
        return entry

    def _bootstrap_new_shard(self, worker: ShardWorker, moved: list[str],
                             strategy: str, migrated: dict) -> dict:
        """Move the ownership delta onto a joining shard and load it.

        Dedup ids replicate *before* the document import so a snapshot
        bootstrap's checkpoint persists the seeded window alongside the
        store — a crash right after the import recovers both.
        """
        moved_set = set(moved)
        moved_list = sorted(moved_set)
        zeros = {"journal_appends": 0, "checkpoints": 0}
        work_before = worker.durability.bootstrap_work() \
            if worker.durability is not None else zeros
        sources = [shard for shard in self.shard_workers()
                   if shard is not worker]
        for source in sources:
            migrated["dedup_ids"] += worker.dedup.merge_replicated(
                source.dedup.snapshot())
        documents: dict[str, list[dict]] = {"users": [], "records": [],
                                            "actions": []}
        moving_users: set[str] = set()
        if moved_list:
            device_query = {"device_id": {"$in": moved_list}}
            for source in sources:
                for doc in list(source.database.users.find(device_query)):
                    documents["users"].append(doc)
                    moving_users.add(doc["user_id"])
                    self._user_device[doc["user_id"]] = doc["device_id"]
                    self._user_shard[doc["user_id"]] = worker.shard_id
                documents["records"].extend(
                    source.database.records.find(device_query))
                source.database.users.delete_many(device_query)
                source.database.records.delete_many(device_query)
            if moving_users:
                user_query = {"user_id": {"$in": sorted(moving_users)}}
                for source in sources:
                    documents["actions"].extend(
                        source.database.actions.find(user_query))
                    source.database.actions.delete_many(user_query)
        documents = {name: [{key: value for key, value in doc.items()
                             if key != "_id"} for doc in docs]
                     for name, docs in documents.items()}
        total = sum(len(docs) for docs in documents.values())
        if worker.durability is not None and strategy == "snapshot":
            worker.durability.import_state(documents)
        else:
            for doc in documents["users"]:
                worker.database.users.insert_one(doc)
            for doc in documents["records"]:
                worker.database.records.insert_one(doc)
            for doc in documents["actions"]:
                worker.database.actions.insert_one(doc)
        migrated["users"] += len(documents["users"])
        migrated["records"] += len(documents["records"])
        migrated["actions"] += len(documents["actions"])
        for source in sources:
            self._migrate_streams(source, migrated, devices=moved_set)
        work_after = worker.durability.bootstrap_work() \
            if worker.durability is not None else zeros
        return {"strategy": strategy, "documents": total,
                "journal_appends": (work_after["journal_appends"]
                                    - work_before["journal_appends"]),
                "checkpoints": (work_after["checkpoints"]
                                - work_before["checkpoints"])}

    def remove_shard(self, index: int) -> dict:
        """Scale in: drain a *healthy* shard and retire it from the ring.

        Unlike :meth:`rebalance` (which salvages a crashed shard's
        state from its journal), scale-in hands off from the live
        process: the durable intake queue is flushed first, so every
        admitted record is applied and journaled before the handoff
        reads the store — nothing acked dies with the shard.  The
        retired shard keeps its documents (the merged views read only
        active shards, exactly like the crash path) and cleanly drops
        its broker session.
        """
        if self._passthrough:
            raise MiddlewareError(
                "a 1-shard cluster cannot scale in; grow it first")
        shard = self._shard_at(index)
        if shard.retired:
            raise MiddlewareError(
                f"shard {shard.shard_id!r} is already retired")
        if shard.crashed:
            raise MiddlewareError(
                f"shard {shard.shard_id!r} crashed; use rebalance() — "
                f"scale-in drains a healthy shard")
        if len(self.shard_workers()) == 1:
            raise MiddlewareError("cannot remove the last active shard")
        timings: dict[str, float] = {}
        step = time.perf_counter()
        drained = shard.drain()
        timings["drain"] = time.perf_counter() - step
        step = time.perf_counter()
        devices = sorted(set(self._user_device.values()))
        moved = [device for device in devices
                 if self.ring.owner(device) == shard.shard_id]
        self.ring.remove(shard.shard_id)
        shard.retire(unsubscribe=True)
        timings["retire"] = time.perf_counter() - step
        step = time.perf_counter()
        survivors = self.shard_workers()
        for survivor in survivors:
            survivor.update_partition(self._partition_for(survivor.shard_id))
        timings["resubscribe"] = time.perf_counter() - step
        step = time.perf_counter()
        migrated = {"users": 0, "records": 0, "actions": 0,
                    "dedup_ids": 0, "streams": 0}
        self._migrate_documents(shard.database, migrated)
        dedup_ids = shard.dedup.snapshot()
        for survivor in survivors:
            survivor.dedup.merge_replicated(dedup_ids)
        migrated["dedup_ids"] += len(dedup_ids)
        self._migrate_streams(shard, migrated)
        timings["migrate"] = time.perf_counter() - step
        self.scale_ins += 1
        if self.obs is not None:
            self.obs.telemetry.counter("cluster_scale_ins").inc()
        entry = {"op": "remove_shard", "at": self.world.now,
                 "shard": shard.shard_id, "drained": drained,
                 "moved_devices": len(moved), "migrated": migrated,
                 "step_timings_s": timings}
        self.lifecycle_log.append(entry)
        return entry

    def upgrade_shard(self, index: int) -> dict:
        """Drain → restart → rejoin one shard (one rolling-upgrade step).

        The restart is atomic at the current instant: the shard's
        endpoints are never down across a scheduler tick, so nothing
        in flight drops.  A durable shard replays its journal and
        resumes exactly-once; a non-durable one restarts amnesiac but
        re-learns its devices from the retained-registration replay the
        rejoin subscription triggers.
        """
        shard = self._shard_at(index)
        if shard.retired:
            raise MiddlewareError(
                f"shard {shard.shard_id!r} was rebalanced away; "
                f"a retired shard cannot be upgraded")
        timings: dict[str, float] = {}
        step = time.perf_counter()
        drained = shard.drain()
        timings["drain"] = time.perf_counter() - step
        step = time.perf_counter()
        shard.crash()
        shard.restart()
        timings["restart"] = time.perf_counter() - step
        step = time.perf_counter()
        shard.resubscribe()
        timings["rejoin"] = time.perf_counter() - step
        if self.obs is not None:
            self.obs.telemetry.counter("cluster_shard_upgrades").inc()
        entry = {"op": "upgrade_shard", "at": self.world.now,
                 "shard": shard.shard_id, "drained": drained,
                 "recovered": shard.durability is not None,
                 "step_timings_s": timings}
        self.lifecycle_log.append(entry)
        return entry

    def rolling_restart(self) -> dict:
        """Upgrade every active shard in sequence, cluster serving
        throughout — at most one shard is mid-restart at any time."""
        upgraded: list[str] = []
        drained = 0
        for index, shard_id in enumerate(self._order):
            if self._shards[shard_id].retired:
                continue
            entry = self.upgrade_shard(index)
            upgraded.append(shard_id)
            drained += entry["drained"]
        self.rolling_upgrades += 1
        if self.obs is not None:
            self.obs.telemetry.counter("cluster_rolling_upgrades").inc()
        summary = {"op": "rolling_restart", "at": self.world.now,
                   "shards": upgraded, "drained": drained}
        self.lifecycle_log.append(summary)
        return summary

    # -- consistency + elasticity -------------------------------------

    def verify_consistent(self) -> list[str]:
        """Cross-check ring, shard set and placement; [] when sound.

        The ``repro cluster`` CLI exits non-zero on any problem — the
        invariants every lifecycle operation must restore:

        - ring members == active (non-retired) shard ids;
        - every active shard's subscription carries the current ring
          (same members, same version);
        - every registered device's documents live on the shard the
          ring places it on.
        """
        problems: list[str] = []
        active = [shard_id for shard_id in self._order
                  if not self._shards[shard_id].retired]
        if sorted(self.ring.members()) != sorted(active):
            problems.append(
                f"ring members {sorted(self.ring.members())} != "
                f"active shards {sorted(active)}")
        if not self._passthrough:
            for shard_id in active:
                spec = self._shards[shard_id].registration_partition
                if spec is None:
                    problems.append(
                        f"{shard_id}: no partition spec on a "
                        f"multi-shard cluster")
                    continue
                if sorted(spec.get("members", [])) != sorted(
                        self.ring.members()):
                    problems.append(
                        f"{shard_id}: subscription members "
                        f"{sorted(spec.get('members', []))} != ring")
                if spec.get("version") != self.ring.version:
                    problems.append(
                        f"{shard_id}: subscription ring version "
                        f"{spec.get('version')} != {self.ring.version}")
            for shard_id in active:
                shard = self._shards[shard_id]
                if shard.crashed:
                    continue
                for doc in shard.database.users.find():
                    owner = self.ring.owner(doc["device_id"])
                    if owner != shard_id:
                        problems.append(
                            f"device {doc['device_id']!r} lives on "
                            f"{shard_id} but the ring owns it to {owner}")
        return problems

    def elasticity_advice(self, threshold: float = 1.5) -> dict:
        """Hot-shard detection from the deterministic work counters.

        A shard is *hot* when its work exceeds ``threshold`` × the
        cluster mean; any hot shard with overall skew past the
        threshold recommends a scale-out.  Pure observation — calling
        this never changes cluster state (:meth:`maybe_autoscale`
        acts on it).
        """
        work = {shard.shard_id: shard.work_done()
                for shard in self.shard_workers()}
        mean = sum(work.values()) / len(work) if work else 0.0
        skew = (max(work.values()) / mean) if mean else 1.0
        hot = sorted(shard_id for shard_id, done in work.items()
                     if mean and done > threshold * mean)
        if self.obs is not None:
            self.obs.telemetry.gauge("cluster_work_skew").set(skew)
            self.obs.telemetry.gauge("cluster_hot_shards").set(len(hot))
        return {"work": work, "mean_work": mean, "skew": skew,
                "hot_shards": hot, "threshold": threshold,
                "recommend_add_shard": bool(hot) and skew >= threshold}

    def maybe_autoscale(self, threshold: float = 1.5,
                        max_shards: int = 8,
                        strategy: str = "snapshot") -> dict:
        """Telemetry-driven elasticity: scale out when a shard runs hot
        (and the cluster is still below ``max_shards``)."""
        advice = self.elasticity_advice(threshold)
        advice["scaled"] = False
        if (advice["recommend_add_shard"]
                and len(self.shard_workers()) < max_shards):
            advice["added"] = self.add_shard(strategy=strategy)
            advice["scaled"] = True
        return advice

    # -- ingress data plane -------------------------------------------

    def deliver(self, message: Message) -> None:
        """Route one data-plane message to its device's owner shard.

        The forward is a synchronous method call — the coordinator and
        its shards are one process tier, so routing adds no network hop
        and no latency, preserving the monolith's timing exactly.
        """
        protocol = message.headers.get("protocol")
        if protocol == "stream-data" or protocol == "stream-batch":
            # Batch envelopes carry their (single) originating device at
            # the payload top level, so both shapes route identically.
            device_id = message.payload.get("device_id")
            shard = self.shard_for_device(device_id) \
                if device_id is not None else self._mono
            shard.deliver(message)
        elif protocol == "location-update":
            shard = self.shard_for_user(message.payload["user_id"])
            if shard.crashed:
                return
            shard._on_location_update(message.payload)
            # The owning shard refreshed nothing: multicasts live here.
            for multicast in list(self.multicasts):
                if multicast.query.is_geo_dependent:
                    multicast.refresh()

    # -- plug-ins and listeners ---------------------------------------

    def attach_plugin(self, plugin) -> None:
        if self._passthrough:
            self._mono.attach_plugin(plugin)
            return
        self._plugins.append(plugin)
        plugin.add_listener(self._on_osn_action)

    def plugins(self) -> list:
        return self._mono.plugins() if self._passthrough \
            else list(self._plugins)

    def add_action_listener(self, listener) -> None:
        if self._passthrough:
            self._mono.add_action_listener(listener)
            return
        self._action_listeners.append(listener)

    def register_listener(self, listener) -> None:
        if self._passthrough:
            self._mono.register_listener(listener)
            return
        # Records are dispatched by whichever shard ingests them, so
        # the listener must ride every shard; global callback order is
        # record arrival order, exactly as on the monolith.  Tracked
        # cluster-side too, so shards added later inherit it.
        self._record_listeners.append(listener)
        for shard in self.shard_workers():
            shard.register_listener(listener)

    def on_registration(self, listener) -> None:
        if self._passthrough:
            self._mono.on_registration(listener)
            return
        self._registration_listeners.append(listener)

    # -- user/graph management ----------------------------------------

    def sync_social_graph(self, graph) -> None:
        if self._passthrough:
            self._mono.sync_social_graph(graph)
            return
        database = self.database
        for user_id in graph.users():
            if database.is_registered(user_id):
                database.set_friends(user_id, [
                    friend for friend in graph.friends(user_id)
                    if database.is_registered(friend)])

    def registered_users(self) -> list[str]:
        return self.database.user_ids()

    def device_of(self, user_id: str) -> str | None:
        return self.database.device_of(user_id)

    # -- remote stream lifecycle --------------------------------------

    def create_stream(self, user_id: str, modality, granularity=Granularity.CLASSIFIED, *,
                      stream_filter: Filter | None = None,
                      settings: dict | None = None,
                      mode: StreamMode = StreamMode.CONTINUOUS) -> ServerStream:
        if self._passthrough:
            return self._mono.create_stream(
                user_id, modality, granularity, stream_filter=stream_filter,
                settings=settings, mode=mode)
        device_id = self.database.device_of(user_id)
        if device_id is None:
            raise MiddlewareError(f"user {user_id!r} has no registered device")
        return self.shard_for_device(device_id).create_stream(
            user_id, modality, granularity, stream_filter=stream_filter,
            settings=settings, mode=mode)

    def destroy_stream(self, stream_id: str) -> None:
        if self._passthrough:
            self._mono.destroy_stream(stream_id)
            return
        for shard in self.shard_workers():
            if stream_id in shard.streams:
                shard.destroy_stream(stream_id)
                return

    # -- aggregation and multicast ------------------------------------

    def allocate_multicast_name(self) -> str:
        if self._passthrough:
            return self._mono.allocate_multicast_name()
        return f"mcast-{next(self._multicast_seq)}"

    def create_aggregator(self, name: str,
                          streams: list[ServerStream]) -> Aggregator:
        return Aggregator.wrap(name, streams)

    def create_multicast_stream(self, modality: ModalityType,
                                granularity: Granularity,
                                query: MulticastQuery, *,
                                stream_filter: Filter | None = None,
                                settings: dict | None = None,
                                mode: StreamMode = StreamMode.CONTINUOUS,
                                name: str | None = None) -> MulticastStream:
        if self._passthrough:
            return self._mono.create_multicast_stream(
                modality, granularity, query, stream_filter=stream_filter,
                settings=settings, mode=mode, name=name)
        multicast = MulticastStream(
            self, modality, granularity, query, stream_filter=stream_filter,
            settings=settings, mode=mode, name=name)
        self.multicasts.append(multicast)
        multicast.refresh()
        return multicast

    def on_multicast_destroyed(self, multicast: MulticastStream) -> None:
        if self._passthrough:
            self._mono.on_multicast_destroyed(multicast)
            return
        if multicast in self.multicasts:
            self.multicasts.remove(multicast)

    def select_users(self, query: MulticastQuery) -> list[str]:
        """Monolith membership semantics over the merged database."""
        if self._passthrough:
            return self._mono.select_users(query)
        database = self.database
        candidates = set(database.user_ids())
        if query.user_ids is not None:
            candidates &= set(query.user_ids)
        if query.place is not None:
            candidates &= set(database.users_in_place(query.place))
        if query.near_point is not None:
            candidates &= set(database.users_near(
                list(query.near_point), query.near_km))
        if query.near_user is not None:
            location = database.location_of(query.near_user)
            if location is None:
                candidates = set()
            else:
                nearby = set(database.users_near(
                    location["point"], query.near_user_km))
                nearby.discard(query.near_user)
                candidates &= nearby
        if query.friends_of is not None:
            candidates &= self._friends_within(query.friends_of, query.hops)
        return sorted(candidates)

    def _friends_within(self, user_id: str, hops: int) -> set[str]:
        seen = {user_id}
        frontier = {user_id}
        reached: set[str] = set()
        for _ in range(hops):
            next_frontier: set[str] = set()
            for current in frontier:
                for friend in self.database.friends_of(current):
                    if friend not in seen:
                        seen.add(friend)
                        reached.add(friend)
                        next_frontier.add(friend)
            frontier = next_frontier
        return reached

    # -- OSN action plane ---------------------------------------------

    def _on_osn_action(self, action: OsnAction) -> None:
        """Cluster version of the monolith's action intake: account on
        the owning shard, mark shared filter context, maintain
        cross-shard friendships, then route triggers globally."""
        shard = self.shard_for_user(action.user_id)
        if shard.crashed:
            shard.actions_lost_crashed += 1
            return
        shard.actions_received += 1
        latency = self.world.now - action.created_at
        shard._recent_action_latencies.append(latency)
        if self.obs is not None:
            self.obs.telemetry.timer(
                "osn_action_delay", platform=action.platform).observe(latency)
        shard.database.store_action(action)
        modality = _PLATFORM_MODALITY.get(action.platform)
        if modality is not None:
            self.filters.mark_osn_active(action.user_id, modality)
        self._maintain_friendships(action)
        for listener in list(self._action_listeners):
            listener(action)
        self._route_action_triggers(action)

    def _maintain_friendships(self, action: OsnAction) -> None:
        friend_id = action.payload.get("friend_id")
        if friend_id is None:
            return
        if action.type is ActionType.FRIEND_ADD:
            self.database.add_friend(action.user_id, friend_id)
        elif action.type is ActionType.FRIEND_REMOVE:
            self.database.remove_friend(action.user_id, friend_id)

    def _route_action_triggers(self, action: OsnAction) -> None:
        """Fan one action out to every device it must trigger, in
        global stream-creation order (the shared ``srv-sN`` sequence
        makes per-shard order slots globally comparable)."""
        own_device = self._user_device.get(action.user_id)
        if own_device is None:
            own_device = self.database.device_of(action.user_id)
        if own_device is not None:
            self.shard_for_device(own_device).triggers.send_action_trigger(
                own_device, action)
        entries: list[tuple[int, ShardWorker, ServerStream]] = []
        for shard in self.shard_workers():
            bucket = shard._osn_trigger_index.get(action.user_id)
            if not bucket:
                continue
            for stream in bucket.values():
                if (stream.destroyed or stream.device_id == own_device
                        or shard.streams.get(stream.stream_id) is not stream):
                    continue
                entries.append((shard._stream_order.get(stream.stream_id, 0),
                                shard, stream))
        for _, shard, stream in sorted(entries, key=lambda entry: entry[0]):
            shard.triggers.send_action_trigger(
                stream.device_id, action, stream_ids=[stream.stream_id])

    # -- observability ------------------------------------------------

    def action_latencies(self) -> list[float]:
        if self._passthrough:
            return self._mono.action_latencies()
        merged: list[float] = []
        for shard in self.all_shard_workers():
            merged.extend(shard.action_latencies())
        return merged

    def health(self) -> dict:
        """One cluster document aggregating every shard's health.

        Counters are summed over *all* shards, retired ones included —
        records a dead shard ingested before its crash stay counted, so
        delivery accounting (``ChaosReport.records_lost``) holds across
        a rebalance.
        """
        if self._passthrough:
            return self._mono.health()
        shard_docs = {shard.shard_id: shard.health()
                      for shard in self.all_shard_workers()}
        counters: dict[str, float] = {}
        for doc in shard_docs.values():
            for key, value in doc["counters"].items():
                if isinstance(value, (int, float)):
                    counters[key] = counters.get(key, 0) + value
        active = self.shard_workers()
        down = [shard for shard in active if shard.crashed]
        if active and len(down) == len(active):
            status = STATUS_DOWN
        elif down or len(active) < len(self._order):
            status = STATUS_DEGRADED
        else:
            status = merge_status(doc["status"]
                                  for doc in shard_docs.values())
        detail = (f"cluster {self.address}: "
                  f"{len(active) - len(down)}/{len(self._order)} shards up, "
                  f"{int(counters.get('records_received', 0))} records "
                  f"ingested")
        last_seen = [shard.last_record_at for shard in self.all_shard_workers()
                     if shard.last_record_at is not None]
        extras: dict = {
            "connected": any(shard.mqtt.connected for shard in active),
            "last_seen": max(last_seen) if last_seen else None,
            "database": self.database.health(),
            "ring": self.ring.to_spec(),
            "rebalances": self.rebalances,
            "shards": shard_docs,
        }
        durable = [shard for shard in self.all_shard_workers()
                   if shard.durability is not None]
        if durable:
            extras["durability"] = self._durability_health(durable)
        return Healthcheck.build(status=status, detail=detail,
                                 counters=counters, **extras)

    def _durability_health(self, durable: list[ShardWorker]) -> dict:
        docs = {shard.shard_id: shard.durability.health()
                for shard in durable}
        counters: dict[str, float] = {}
        for doc in docs.values():
            for key, value in doc["counters"].items():
                if isinstance(value, (int, float)):
                    counters[key] = counters.get(key, 0) + value
        return Healthcheck.build(
            status=merge_status(doc["status"] for doc in docs.values()),
            detail=f"cluster durability over {len(docs)} shards",
            counters=counters, shards=docs)

    def verify_replay(self) -> dict:
        """Per-shard replay divergence oracle.

        Runs :meth:`ServerDurability.verify_replay` on every active,
        non-crashed durable shard: each shard's live store is
        fingerprint-compared against an offline re-derivation from its
        own snapshot + journal.  ``match`` is True only when *every*
        shard matches — ``repro replay --verify`` exits nonzero
        otherwise.
        """
        shards: dict[str, dict] = {}
        for shard in self.shard_workers():
            if shard.durability is None or shard.crashed:
                continue
            shards[shard.shard_id] = shard.durability.verify_replay()
        return {
            "match": all(doc["match"] for doc in shards.values()),
            "shards_verified": len(shards),
            "shards": shards,
        }

    def slo_rollup(self) -> dict:
        """Per-shard health rollup for the SLO work-skew probe.

        A crashed (or otherwise unreporting) active shard lands in
        ``missing`` — the evaluator treats a missing shard as burning,
        never as healthy-by-absence.
        """
        statuses: dict[str, str] = {}
        missing: list[str] = []
        for shard in self.shard_workers():
            if shard.crashed:
                missing.append(shard.shard_id)
                continue
            try:
                statuses[shard.shard_id] = shard.health()["status"]
            except Exception:
                missing.append(shard.shard_id)
        advice = self.elasticity_advice()
        return {
            "statuses": statuses,
            "missing": sorted(missing),
            "skew": advice["skew"],
            "hot_shards": advice["hot_shards"],
            "recommend_add_shard": advice["recommend_add_shard"],
        }

    def cluster_report(self) -> dict:
        """Placement + per-shard work snapshot (the ``repro cluster``
        CLI surface and the scaling benchmark's raw material)."""
        return {
            "shards": len(self._order),
            "active": len(self.shard_workers()),
            "ring": self.ring.to_spec(),
            "rebalances": self.rebalances,
            "scale_outs": self.scale_outs,
            "scale_ins": self.scale_ins,
            "rolling_upgrades": self.rolling_upgrades,
            "work": {shard.shard_id: shard.work_done()
                     for shard in self.all_shard_workers()},
            "records": {shard.shard_id: shard.records_received
                        for shard in self.all_shard_workers()},
            "devices": self.ring.assignments(
                sorted(set(self._user_device.values()))),
            "lifecycle": list(self.lifecycle_log),
            "elasticity": self.elasticity_advice(),
            "slo": (self.slo_control.summary()
                    if self.slo_control is not None else None),
        }
