"""Merged database view over every shard's document store.

The monolithic server exposed one :class:`ServerDatabase`; a cluster
has one per shard, each holding only its partition's users, records
and actions.  :class:`ClusterDatabase` re-presents the same typed API
by routing writes to the owning shard and merging reads across all of
them, so server applications (and the testbed's ``befriend`` helper)
run unchanged against a cluster.

Placement rules:

- a *registered* user's documents live on the shard that owns their
  device (consistent-hash ring over device ids);
- documents about users the cluster has never seen registered (e.g.
  OSN actions of a non-participant) are homed by a deterministic
  user-hash over the same ring, so back-to-back runs place them
  identically.
"""

from __future__ import annotations

from typing import Any

from repro.core.common.records import StreamRecord
from repro.obs.health import STATUS_DEGRADED, STATUS_DOWN, STATUS_OK
from repro.osn.actions import OsnAction

_STATUS_RANK = {STATUS_OK: 0, STATUS_DEGRADED: 1, STATUS_DOWN: 2}


def merge_status(statuses) -> str:
    """The least healthy of ``statuses`` (ok < degraded < down)."""
    worst = STATUS_OK
    for status in statuses:
        if _STATUS_RANK.get(status, 1) > _STATUS_RANK[worst]:
            worst = status
    return worst


class ClusterDatabase:
    """Typed facade routing the :class:`ServerDatabase` API by shard."""

    def __init__(self, coordinator):
        self._coordinator = coordinator

    # -- routing helpers ----------------------------------------------

    def _shards(self):
        return self._coordinator.shard_workers()

    def _db_of_user(self, user_id: str):
        """The database holding ``user_id``'s documents."""
        return self._coordinator.shard_for_user(user_id).database

    # -- registration -------------------------------------------------

    def register_device(self, user_id: str, device_id: str,
                        modalities: list[str]) -> None:
        shard = self._coordinator.shard_for_device(device_id)
        shard.database.register_device(user_id, device_id, modalities)

    def device_of(self, user_id: str) -> str | None:
        for shard in self._shards():
            device = shard.database.device_of(user_id)
            if device is not None:
                return device
        return None

    def user_ids(self) -> list[str]:
        users: set[str] = set()
        for shard in self._shards():
            users.update(shard.database.user_ids())
        return sorted(users)

    def is_registered(self, user_id: str) -> bool:
        return any(shard.database.is_registered(user_id)
                   for shard in self._shards())

    # -- social links -------------------------------------------------

    def set_friends(self, user_id: str, friends: list[str]) -> None:
        self._db_of_user(user_id).set_friends(user_id, friends)

    def add_friend(self, user_id: str, friend_id: str) -> None:
        # Friendship is symmetric, but each side's document lives on
        # its own shard — exactly the cross-shard write the monolith's
        # single update pair never had to think about.
        self._db_of_user(user_id).users.update_one(
            {"user_id": user_id}, {"$addToSet": {"friends": friend_id}})
        self._db_of_user(friend_id).users.update_one(
            {"user_id": friend_id}, {"$addToSet": {"friends": user_id}})

    def remove_friend(self, user_id: str, friend_id: str) -> None:
        self._db_of_user(user_id).users.update_one(
            {"user_id": user_id}, {"$pull": {"friends": friend_id}})
        self._db_of_user(friend_id).users.update_one(
            {"user_id": friend_id}, {"$pull": {"friends": user_id}})

    def friends_of(self, user_id: str) -> list[str]:
        return self._db_of_user(user_id).friends_of(user_id)

    # -- geography ----------------------------------------------------

    def update_location(self, user_id: str, lon: float, lat: float,
                        place: str | None, timestamp: float) -> None:
        self._db_of_user(user_id).update_location(user_id, lon, lat,
                                                  place, timestamp)

    def location_of(self, user_id: str) -> dict[str, Any] | None:
        return self._db_of_user(user_id).location_of(user_id)

    def users_in_place(self, place: str) -> list[str]:
        found: set[str] = set()
        for shard in self._shards():
            found.update(shard.database.users_in_place(place))
        return sorted(found)

    def users_near(self, point: list[float], max_km: float) -> list[str]:
        found: set[str] = set()
        for shard in self._shards():
            found.update(shard.database.users_near(point, max_km))
        return sorted(found)

    # -- history ------------------------------------------------------

    def store_action(self, action: OsnAction) -> None:
        self._db_of_user(action.user_id).store_action(action)

    def store_record(self, record: StreamRecord) -> None:
        shard = self._coordinator.shard_for_device(record.device_id)
        shard.database.store_record(record)

    def actions_of(self, user_id: str) -> list[dict]:
        merged: list[dict] = []
        for shard in self._shards():
            merged.extend(shard.database.actions_of(user_id))
        merged.sort(key=lambda doc: doc["created_at"])
        return merged

    def records_of(self, user_id: str, modality: str | None = None) -> list[dict]:
        merged: list[dict] = []
        for shard in self._shards():
            merged.extend(shard.database.records_of(user_id, modality))
        merged.sort(key=lambda doc: doc["timestamp"])
        return merged

    # -- observability ------------------------------------------------

    def health(self) -> dict:
        shard_docs = {shard.shard_id: shard.database.health()
                      for shard in self._shards()}
        counters: dict[str, int] = {}
        for doc in shard_docs.values():
            for key, value in doc.get("counters", {}).items():
                if isinstance(value, (int, float)):
                    counters[key] = counters.get(key, 0) + value
        status = merge_status(doc.get("status", STATUS_OK)
                              for doc in shard_docs.values())
        return {
            "status": status,
            "detail": f"cluster database over {len(shard_docs)} shards",
            "counters": counters,
            "shards": shard_docs,
            **{key: value for key, value in counters.items()
               if key not in ("status", "detail", "counters")},
        }
