"""The shard worker: one partition's slice of the server middleware.

A :class:`ShardWorker` is the shard-agnostic half of the old
monolithic ``ServerSenSocialManager`` split (ISSUE 5): the ingest pump,
dedup window, filter gates and per-shard document store (plus an
optional write-ahead journal) — everything that scales with *this
partition's* devices.  Placement, cross-shard routing and the merged
views live in :class:`repro.cluster.ClusterCoordinator`.

Each worker owns its own network address, MQTT session and database.
Its registration subscription carries a consistent-hash *partition
spec*, so the broker delivers only the retained registrations of
devices the ring places on this shard — re-subscribing with a newer
ring is how a worker inherits devices during a rebalance.
"""

from __future__ import annotations

from repro.core.mobile.mqtt_service import REGISTRATION_FILTER
from repro.core.server.manager import ServerSenSocialManager
from repro.durability.errors import StorageWriteError

#: Topic level carrying the device id in ``sensocial/register/+``.
REGISTRATION_KEY_LEVEL = 2


class ShardWorker(ServerSenSocialManager):
    """One consistent-hash partition of the server tier."""

    def __init__(self, world, network, shard_id: str, *,
                 broker_address: str = "mqtt-broker",
                 address: str | None = None,
                 durability=None, filters=None, stream_seq=None,
                 processing_delay=None, database=None):
        address = address if address is not None else f"sensocial-{shard_id}"
        super().__init__(
            world, network, database=database,
            broker_address=broker_address, address=address,
            processing_delay=processing_delay, durability=durability,
            client_id=address, filters=filters, stream_seq=stream_seq)
        self.shard_id = shard_id
        #: Current partition spec for the registration subscription
        #: (``None`` on a 1-shard cluster: the subscription is then
        #: byte-identical to the monolithic server's).
        self.registration_partition: dict | None = None
        #: True once :meth:`retire` ran — a dead shard whose devices
        #: migrated away never rejoins the ring.
        self.retired = False

    # -- partition management -----------------------------------------

    def start(self, partition: dict | None = None) -> None:
        """Connect and subscribe to this shard's registration slice."""
        self.registration_partition = partition
        self.mqtt.connect(clean_session=False)
        self.mqtt.subscribe(REGISTRATION_FILTER, self._on_registration,
                            partition=partition)

    def update_partition(self, partition: dict) -> None:
        """Re-subscribe with a newer ring.

        The broker replays retained registrations matching the widened
        slice, which is the device-migration mechanism: every device
        this shard inherits re-registers here without the phone sending
        a byte.
        """
        self.registration_partition = partition
        self.mqtt.subscribe(REGISTRATION_FILTER, self._on_registration,
                            partition=partition)

    def resubscribe(self) -> None:
        """Re-issue the registration subscription with the current
        partition — the rejoin step of a rolling upgrade.  The broker
        replays the retained registrations of this shard's slice, so a
        worker that restarted amnesiac (no journal) re-learns its
        devices without any phone resending."""
        self.mqtt.subscribe(REGISTRATION_FILTER, self._on_registration,
                            partition=self.registration_partition)

    def drain(self) -> int:
        """Synchronously flush the durable intake queue.

        Scale-in and rolling upgrades drain a *healthy* shard before
        touching it: every record already admitted (but not yet
        journaled) is applied through the write-ahead journal now, so
        the handoff starts from a settled store and nothing admitted
        dies un-acked with the shard.  Records that keep failing the
        journal append are quarantined exactly as the drain pump would
        have.  Returns the number of records applied.
        """
        if self.durability is None:
            return 0
        admission = self.durability.admission
        drained = 0
        while len(admission):
            item = admission.pop()
            try:
                self._apply_intake(item)
            except StorageWriteError:
                item.attempts += 1
                if item.attempts >= self.durability.config.max_apply_attempts:
                    self.durability._quarantine_item(
                        item, "repeated_write_failure")
                else:
                    admission.requeue(item)
                continue
            drained += 1
        return drained

    def retire(self, *, unsubscribe: bool = False) -> None:
        """Mark this worker permanently out of the cluster.

        A *drained* shard retires cleanly (``unsubscribe=True``): its
        broker session drops the registration subscription and
        disconnects, so no dead subscription lingers to queue offline
        registrations forever.  A *crashed* shard cannot — its network
        endpoints are down — and keeps the session; the broker's
        partition gate already stops routing it anything it no longer
        owns.
        """
        self.retired = True
        if unsubscribe and self.mqtt.connected:
            self.mqtt.unsubscribe(REGISTRATION_FILTER)
            self.mqtt.disconnect()

    # -- scaling metrics ----------------------------------------------

    def work_done(self) -> int:
        """Deterministic per-shard work counter: records this shard
        ingested + replayed duplicates it absorbed + OSN actions it
        stored.  Each unit drives exactly one dedup probe, one filter
        observation and one document-store write, so the counter tracks
        the shard's share of ingest+filter work machine-independently
        (the quantity ``benchmarks/test_cluster_scaling.py`` asserts
        shrinks as shards are added)."""
        return (self.records_received + self.records_duplicate
                + self.actions_received)

    def health(self) -> dict:
        document = super().health()
        document["shard_id"] = self.shard_id
        document["retired"] = self.retired
        document["counters"]["shard_work"] = self.work_done()
        document["shard_work"] = self.work_done()
        return document
